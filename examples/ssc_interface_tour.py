#!/usr/bin/env python3
"""A tour of the SSC's six-operation device interface (§4.2.1).

Uses the SolidStateCache directly — no cache manager — to demonstrate
the semantics of each operation and the three consistency guarantees,
exactly as a cache-manager author would exercise them.

Run:  python examples/ssc_interface_tour.py
"""

from repro.errors import NotPresentError
from repro.flash.geometry import FlashGeometry
from repro.ssc.device import SolidStateCache


def main() -> None:
    ssc = SolidStateCache.ssc(
        FlashGeometry(planes=4, blocks_per_plane=32, pages_per_block=16)
    )
    disk_address = 7_340_032_000 // 4096  # any 4 KB-aligned disk block

    print("== read of an uncached block returns a not-present error ==")
    try:
        ssc.read(disk_address)
    except NotPresentError as error:
        print(f"   read({disk_address}) -> {error}")

    print("\n== write-clean: insert at the *disk* address (unified space) ==")
    cost = ssc.write_clean(disk_address, b"clean contents")
    data, _ = ssc.read(disk_address)
    print(f"   write-clean cost {cost:.0f} us; read back: {data!r}")
    print(f"   dirty? {ssc.is_dirty(disk_address)}")

    print("\n== write-dirty: durable before returning ==")
    cost = ssc.write_dirty(disk_address + 1, b"dirty contents")
    print(f"   write-dirty cost {cost:.0f} us "
          f"(includes the synchronous log flush)")
    print(f"   dirty? {ssc.is_dirty(disk_address + 1)}")

    print("\n== exists: query dirty blocks from device memory ==")
    dirty, cost = ssc.exists(disk_address - 10, disk_address + 10)
    print(f"   dirty blocks in range: {dirty} (cost {cost:.0f} us)")

    print("\n== clean: mark evictable; data stays readable ==")
    ssc.clean(disk_address + 1)
    data, _ = ssc.read(disk_address + 1)
    print(f"   after clean, read still returns {data!r}, "
          f"dirty? {ssc.is_dirty(disk_address + 1)}")

    print("\n== evict: read-after-evict is guaranteed to fail ==")
    ssc.evict(disk_address)
    try:
        ssc.read(disk_address)
    except NotPresentError:
        print(f"   read({disk_address}) -> not-present, as guaranteed")

    print("\n== crash + recover: the mapping is durable ==")
    lost = ssc.crash()
    recovery_us = ssc.recover()
    print(f"   crash dropped {lost} buffered records; "
          f"recovery took {recovery_us:.0f} us (simulated)")
    data, _ = ssc.read(disk_address + 1)
    print(f"   dirty block survived the crash: {data!r}")
    try:
        ssc.read(disk_address)
        print("   ERROR: evicted block resurrected!")
    except NotPresentError:
        print("   evicted block stayed evicted across the crash")


if __name__ == "__main__":
    main()
