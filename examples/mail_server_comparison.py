#!/usr/bin/env python3
"""Mail-server shootout: native SSD cache vs SSC vs SSC-R.

Replays the paper's *mail* workload profile (88.5 % writes, heavy
overwrite skew — a departmental email server) through all three
systems in write-back mode and prints the Figure 3 / Table 5 view:
relative IOPS, write amplification, erases, and miss rate.

Run:  python examples/mail_server_comparison.py
"""

from repro import CacheMode, SystemConfig, SystemKind, build_system
from repro.stats.report import format_table
from repro.traces import MAIL, generate_trace


def run_one(kind: SystemKind, trace, profile):
    config = SystemConfig(
        kind=kind,
        mode=CacheMode.WRITE_BACK,
        cache_blocks=profile.cache_blocks(),
        disk_blocks=profile.address_range_blocks,
    )
    system = build_system(config)
    stats = system.replay(trace.records, warmup_fraction=0.15)
    return system, stats


def main() -> None:
    profile = MAIL.scaled(0.10)
    trace = generate_trace(profile, seed=7)
    print(f"mail workload: {len(trace)} requests, "
          f"{trace.write_fraction():.0%} writes\n")

    results = {}
    for kind in (SystemKind.NATIVE, SystemKind.SSC, SystemKind.SSC_R):
        results[kind] = run_one(kind, trace, profile)

    base_iops = results[SystemKind.NATIVE][1].iops()
    rows = []
    for kind, (system, stats) in results.items():
        rows.append([
            kind.value,
            f"{stats.iops():,.0f}",
            f"{100 * stats.iops() / base_iops:.0f}%",
            f"{system.device_stats.write_amplification():.2f}",
            f"{system.device.chip.total_erases():,}",
            f"{stats.miss_rate():.1f}%",
        ])
    print(format_table(
        ["system", "IOPS", "vs native", "write amp", "erases", "miss rate"],
        rows,
        title="Write-back caching on the mail workload",
    ))
    print("\nThe SSC wins because garbage collection silently evicts "
          "clean blocks\ninstead of copying them, and SSC-R wins more by "
          "deferring merges with a\nlarger log-block pool (paper §4.3).")


if __name__ == "__main__":
    main()
