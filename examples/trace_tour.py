#!/usr/bin/env python3
"""Observability tour: trace a replay, export it, read the numbers.

Replays a small Zipf-distributed synthetic workload through a sharded
write-back FlashTier cache with the trace bus attached, then shows
every export path the observability layer offers:

1. a Chrome ``trace_event`` JSON — open it at https://ui.perfetto.dev
   (or chrome://tracing) to see requests, per-plane flash operations,
   GC merges and log flushes on labeled timeline lanes;
2. the raw event stream as JSON Lines — input for
   ``python -m repro trace report``;
3. a metrics-registry snapshot (every counter documented in
   docs/metrics.md) as JSON;
4. the write-amplification breakdown, computed here from the captured
   events exactly the way ``repro trace report`` does it.

The same capture is available without code from the CLI::

    python -m repro replay --workload homes --scale 0.05 \
        --trace-out tour.json --events-out tour.jsonl --metrics tour-metrics.json

Run:  python examples/trace_tour.py [output-dir]
"""

import json
import sys
from pathlib import Path

from repro import CacheMode, SystemConfig, SystemKind, build_system
from repro.obs import (
    JsonlSink,
    RingBufferSink,
    Tracer,
    collect,
    instrument_system,
    summarize,
    write_chrome_trace,
)
from repro.traces import HOMES, generate_trace


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("trace_tour_out")
    out_dir.mkdir(parents=True, exist_ok=True)
    chrome_path = out_dir / "trace.json"
    events_path = out_dir / "events.jsonl"
    metrics_path = out_dir / "metrics.json"

    # A small Zipf workload (homes at 1% scale: ~80/20 skew over the
    # block address range) against a two-shard write-back cache array.
    profile = HOMES.scaled(0.01)
    trace = generate_trace(profile, seed=42)
    system = build_system(SystemConfig(
        kind=SystemKind.SSC,
        mode=CacheMode.WRITE_BACK,
        cache_blocks=512,
        disk_blocks=profile.address_range_blocks,
        shards=2,
    ))

    # Attach the trace bus: a ring buffer (for the Chrome export) plus
    # a JSONL sink streaming every event to disk as it is emitted.
    tracer = Tracer(RingBufferSink(), JsonlSink(events_path))
    touched = instrument_system(system, tracer)
    names = [type(component).__name__ for component in touched]
    print(f"instrumented {len(touched)} components: "
          f"{', '.join(sorted(set(names)))}")

    print(f"replaying {len(trace.records):,} requests (tracing on)...")
    stats = system.replay(trace.records, warmup_fraction=0.25,
                          keep_latencies=True)
    print(f"  {stats.ops:,} measured requests, "
          f"{stats.iops():,.0f} IOPS, "
          f"mean latency {stats.latency.mean_us:.0f} us")

    # Export 1: Chrome trace for Perfetto / chrome://tracing.
    entries = write_chrome_trace(tracer.ring.events, chrome_path)
    print(f"\nwrote {entries:,} Chrome trace entries -> {chrome_path}")
    print("  open at https://ui.perfetto.dev (per-plane lanes show "
          "flash concurrency; 's<k>:plane:<n>' lanes are shard-local)")

    # Export 2: the JSONL stream (already written by the sink).
    tracer.close()
    print(f"wrote {len(tracer.ring):,} events -> {events_path}")
    print(f"  summarize with: python -m repro trace report {events_path}")

    # Export 3: metrics snapshot from the documented registry.
    snapshot = collect(system, stats)
    metrics_path.write_text(json.dumps(snapshot.to_dict(), indent=2,
                                       sort_keys=True) + "\n")
    print(f"wrote metrics snapshot -> {metrics_path}")

    # Write-amplification breakdown from the captured events — the
    # same arithmetic `repro trace report` prints.
    summary = summarize([event.to_dict() for event in tracer.ring.events])
    breakdown = summary["write_breakdown"]
    user = max(1, breakdown["user_writes"])
    overhead = (breakdown["gc_copies"] + breakdown["log_pages"]
                + breakdown["checkpoint_pages"])
    print("\nwrite-amplification breakdown (from the event stream):")
    print(f"  user writes:        {breakdown['user_writes']:6,}")
    print(f"  gc merge copies:    {breakdown['gc_copies']:6,} "
          f"(+{breakdown['gc_copies'] / user:.2f}/write)")
    print(f"  log pages:          {breakdown['log_pages']:6,}")
    print(f"  checkpoint pages:   {breakdown['checkpoint_pages']:6,}")
    print(f"  silently evicted:   {breakdown['evicted_valid_pages']:6,} "
          f"copies avoided across {breakdown['silent_evictions']} evictions")
    print(f"  total overhead:     {overhead / user:.2f} pages per user write")

    # Detach; subsequent replays on this system run untraced (and at
    # full speed — the guards are `if self.tracer is not None`).
    instrument_system(system, None)


if __name__ == "__main__":
    main()
