#!/usr/bin/env python3
"""Quickstart: cache a write-heavy workload on an SSC.

Builds a complete FlashTier system (write-back cache manager + SSC-R
device + disk), replays a synthetic file-server workload through it,
and prints the numbers the paper's evaluation is built from: IOPS, miss
rate, write amplification, erases, and memory footprints.

Run:  python examples/quickstart.py
"""

from repro import CacheMode, SystemConfig, SystemKind, build_system
from repro.traces import HOMES, generate_trace


def main() -> None:
    # A scaled-down version of the paper's "homes" file-server workload
    # (Table 3): 96 % writes, sparse addresses, hot-file skew.
    profile = HOMES.scaled(0.10)
    trace = generate_trace(profile, seed=42)
    print(f"workload: {profile.name}, {len(trace)} requests, "
          f"{trace.write_fraction():.0%} writes, "
          f"{trace.unique_blocks_touched()} unique blocks")

    # Cache sized for the top 25 % most-accessed blocks (§6.1).
    config = SystemConfig(
        kind=SystemKind.SSC_R,           # SE-Merge silent eviction
        mode=CacheMode.WRITE_BACK,
        cache_blocks=profile.cache_blocks(),
        disk_blocks=profile.address_range_blocks,
    )
    system = build_system(config)

    # Warm the cache on the first 15 % of the trace, then measure.
    stats = system.replay(trace.records, warmup_fraction=0.15)

    device = system.device_stats
    print(f"\n{'IOPS':>24}: {stats.iops():,.0f}")
    print(f"{'read miss rate':>24}: {stats.miss_rate():.1f} %")
    print(f"{'mean latency':>24}: {stats.latency.mean_us:.0f} us")
    print(f"{'write amplification':>24}: {device.write_amplification():.2f} extra writes/write")
    print(f"{'erase operations':>24}: {system.device.chip.total_erases():,}")
    print(f"{'silent evictions':>24}: {device.silent_evictions:,} blocks")
    print(f"{'device memory':>24}: {system.device.device_memory_bytes() / 1024:.0f} KiB")
    print(f"{'host memory':>24}: {system.manager.host_memory_bytes() / 1024:.1f} KiB "
          f"(dirty-block table only)")


if __name__ == "__main__":
    main()
