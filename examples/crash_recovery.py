#!/usr/bin/env python3
"""Crash recovery walkthrough: the cache survives a power failure.

Populates a write-back FlashTier cache with dirty data, yanks the
power, recovers, and verifies the paper's §3.5 guarantees:

1. every dirty block is still readable with its newest contents;
2. no read ever returns stale data;
3. evicted blocks stay evicted.

Also prints the Figure 5 comparison: FlashTier's checkpoint+log replay
vs what the native system would need (manager-metadata reload and a
full SSD OOB scan).

Run:  python examples/crash_recovery.py
"""

import random

from repro import CacheMode, SystemConfig, SystemKind, build_system
from repro.errors import NotPresentError
from repro.traces import HOMES, generate_trace


def main() -> None:
    profile = HOMES.scaled(0.08)
    trace = generate_trace(profile, seed=3)
    config = SystemConfig(
        kind=SystemKind.SSC,
        mode=CacheMode.WRITE_BACK,
        cache_blocks=profile.cache_blocks(),
        disk_blocks=profile.address_range_blocks,
    )
    system = build_system(config)
    ssc, manager = system.ssc, system.manager

    print("replaying workload to populate the cache...")
    system.replay(trace.records)
    dirty_before, _ = ssc.exists(0, profile.address_range_blocks)
    contents = {}
    rng = random.Random(1)
    for lbn in rng.sample(dirty_before, min(200, len(dirty_before))):
        contents[lbn], _ = ssc.read(lbn)
    print(f"cache holds {ssc.cached_blocks():,} blocks, "
          f"{len(dirty_before):,} dirty")

    print("\n*** simulated power failure ***")
    lost = ssc.crash()
    print(f"volatile state lost ({lost} buffered log records)")

    recovery_us = ssc.recover()
    print(f"device recovery (checkpoint + log replay): "
          f"{recovery_us / 1000:.2f} ms of simulated time")

    # Guarantee 1: all dirty data survived with its newest contents.
    for lbn, expected in contents.items():
        data, _ = ssc.read(lbn)
        assert data == expected, f"dirty block {lbn} corrupted!"
    print(f"verified: all {len(contents)} sampled dirty blocks intact")

    # The manager's dirty-block table is rebuilt with exists() and can
    # overlap normal traffic (§4.4).
    scan_us = manager.recover_us(profile.address_range_blocks)
    dirty_after, _ = ssc.exists(0, profile.address_range_blocks)
    assert set(dirty_after) >= set(dirty_before), "dirty blocks lost!"
    print(f"manager dirty-table rebuild via exists(): "
          f"{scan_us / 1000:.3f} ms (overlappable)")

    # Guarantee 3: eviction is durable across crashes.
    victim = dirty_after[0]
    ssc.evict(victim)
    ssc.crash()
    ssc.recover()
    try:
        ssc.read(victim)
        raise AssertionError("evicted block came back from the dead!")
    except NotPresentError:
        print(f"verified: block {victim} evicted before the second crash "
              f"stayed evicted")

    # Figure 5 comparison against the native system's recovery paths.
    native = build_system(SystemConfig(
        kind=SystemKind.NATIVE, mode=CacheMode.WRITE_BACK,
        cache_blocks=profile.cache_blocks(),
        disk_blocks=profile.address_range_blocks,
    ))
    native.replay(trace.records)
    print("\nFigure 5 view (this cache size):")
    print(f"  FlashTier recovery:      {recovery_us / 1000:8.2f} ms")
    print(f"  Native-FC (manager):     {native.manager.recover_manager_us() / 1000:8.2f} ms")
    print(f"  Native-SSD (OOB scan):   {native.manager.recover_device_us() / 1000:8.2f} ms")


if __name__ == "__main__":
    main()
