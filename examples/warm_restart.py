#!/usr/bin/env python3
"""Warm restarts: persistent caching across shutdowns and power cuts.

§2's motivating arithmetic: "filling a 100 GB cache from a 500 IOPS
disk system takes over 14 hours", so a cache that survives restarts is
worth real money.  This example measures three restart paths:

1. cold start — the cache is reset and re-warmed from disk;
2. clean shutdown + warm restart — checkpoint, reload;
3. power failure + crash recovery — checkpoint + log replay;

and shows the NVRAM configuration where consistency costs nothing.

Run:  python examples/warm_restart.py
"""

from repro import CacheMode, SystemConfig, SystemKind, build_system
from repro.ssc.device import SSCConfig, SolidStateCache
from repro.core.flashtier import cache_geometry
from repro.disk.model import Disk
from repro.manager.writethrough import FlashTierWTManager
from repro.traces import USR, generate_trace
from repro.traces.replay import replay_trace


def main() -> None:
    profile = USR.scaled(0.08)
    trace = generate_trace(profile, seed=5)
    config = SystemConfig(
        kind=SystemKind.SSC, mode=CacheMode.WRITE_THROUGH,
        cache_blocks=profile.cache_blocks(),
        disk_blocks=profile.address_range_blocks,
    )
    system = build_system(config)
    ssc, manager = system.ssc, system.manager

    print("warming the cache...")
    warm_stats = system.replay(trace.records)
    print(f"  cold replay: {warm_stats.iops():,.0f} IOPS "
          f"({warm_stats.miss_rate():.1f}% misses), "
          f"{ssc.cached_blocks():,} blocks cached")

    # Re-replay on the warm cache: this is the prize.
    hot_stats = system.replay(trace.records)
    print(f"  warm replay: {hot_stats.iops():,.0f} IOPS "
          f"({hot_stats.miss_rate():.1f}% misses)")

    # Path 2: clean shutdown, then restart.
    shutdown_us = ssc.shutdown()
    ssc.crash()  # power off
    restart_us = ssc.recover()
    print(f"\nclean shutdown cost {shutdown_us / 1000:.2f} ms; "
          f"warm restart in {restart_us / 1000:.2f} ms")
    post = system.replay(trace.records)
    print(f"  post-restart replay: {post.iops():,.0f} IOPS "
          f"({post.miss_rate():.1f}% misses) — still warm")

    # Path 3: power failure mid-operation.
    ssc.crash()
    crash_recovery_us = ssc.recover()
    print(f"\ncrash recovery (no clean shutdown): "
          f"{crash_recovery_us / 1000:.2f} ms")

    # NVRAM variant: consistency without the logging cost (§6.4).
    geometry = cache_geometry(config)
    nvram = SolidStateCache(geometry, config=SSCConfig(nvram=True))
    nvram_manager = FlashTierWTManager(nvram, Disk(config.disk_blocks))
    nvram_stats = replay_trace(nvram_manager, trace.records)
    flash_logged = warm_stats.iops()
    print(f"\nNVRAM-backed log: {nvram_stats.iops():,.0f} IOPS on the cold "
          f"replay vs {flash_logged:,.0f} with flash logging")
    print("(paper §6.4: with non-volatile memory, consistency imposes no "
          "performance cost)")


if __name__ == "__main__":
    main()
