#!/usr/bin/env python3
"""Flash lifetime study: how silent eviction stretches device endurance.

MLC flash endures ~10,000 erase cycles per block (Table 1).  This
example replays the same write-heavy workload on an SSD cache and on an
SSC, converts erase counts into projected device lifetime, and shows
the wear-leveling picture (Table 5's wear differential).

Run:  python examples/wear_lifetime_study.py
"""

from repro import CacheMode, SystemConfig, SystemKind, build_system
from repro.stats.report import format_table
from repro.traces import MAIL, generate_trace

ERASE_ENDURANCE = 10_000  # MLC cycles per block (Table 1)


def main() -> None:
    profile = MAIL.scaled(0.08)
    trace = generate_trace(profile, seed=11)
    writes = sum(1 for record in trace.records if record.is_write)
    print(f"workload: mail x{len(trace)} requests ({writes:,} writes)\n")

    rows = []
    lifetimes = {}
    for kind in (SystemKind.NATIVE, SystemKind.SSC, SystemKind.SSC_R):
        system = build_system(SystemConfig(
            kind=kind, mode=CacheMode.WRITE_THROUGH,
            cache_blocks=profile.cache_blocks(),
            disk_blocks=profile.address_range_blocks,
            consistency=False,
        ))
        system.replay(trace.records, warmup_fraction=0.15)
        chip = system.device.chip
        total_blocks = chip.geometry.total_blocks
        erases = chip.total_erases()
        # Mean erases per block per million user writes -> projected
        # writes until the endurance budget is spent.
        erase_rate = erases / total_blocks / writes
        projected_writes = ERASE_ENDURANCE / erase_rate if erase_rate else float("inf")
        lifetimes[kind] = projected_writes
        rows.append([
            kind.value,
            f"{erases:,}",
            f"{chip.wear_differential()}",
            f"{system.device_stats.write_amplification():.2f}",
            f"{projected_writes / 1e6:,.0f} M writes",
        ])

    print(format_table(
        ["device", "erases", "wear diff", "write amp", "projected lifetime"],
        rows,
        title="Endurance on the mail workload (10k cycles/block budget)",
    ))
    gain = lifetimes[SystemKind.SSC_R] / lifetimes[SystemKind.NATIVE]
    print(f"\nSSC-R stretches projected device lifetime {gain:.1f}x over the "
          f"SSD cache:\nsilent eviction drops clean blocks instead of "
          f"copying them, so garbage\ncollection erases far less "
          f"(paper §6.5: 26-35% fewer erases).")


if __name__ == "__main__":
    main()
