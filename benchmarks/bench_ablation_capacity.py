"""Ablation — raw-capacity slack and the block-mapping density tax.

At equal raw flash, an SSD caches every 4 KB slot of its logical space,
while an SSC's block-mapped region wastes the unpopulated pages of each
sparse 64 KB group.  This sweep varies the SSC's raw capacity and shows
the miss rate converging toward the SSD's as slack compensates for the
density tax — the honest picture behind this reproduction's one notable
deviation from the paper (whose production traces have near-full group
density; see EXPERIMENTS.md).
"""

from repro import CacheMode, SystemConfig, SystemKind, build_system
from repro.stats.report import format_table

from benchmarks.common import WARMUP_FRACTION, get_trace, once

SLACKS = (1.2, 1.6, 2.0, 2.6, 3.2)


def run_sweep():
    trace = get_trace("homes")
    profile = trace.profile
    native = build_system(SystemConfig(
        kind=SystemKind.NATIVE, mode=CacheMode.WRITE_THROUGH,
        cache_blocks=profile.cache_blocks(),
        disk_blocks=profile.address_range_blocks,
        consistency=False, capacity_slack=1.2,
    ))
    native_stats = native.replay(trace.records, warmup_fraction=WARMUP_FRACTION)
    rows = [{
        "system": "SSD (slack 1.2)",
        "miss": native_stats.miss_rate(),
        "iops": native_stats.iops(),
    }]
    for slack in SLACKS:
        system = build_system(SystemConfig(
            kind=SystemKind.SSC, mode=CacheMode.WRITE_THROUGH,
            cache_blocks=profile.cache_blocks(),
            disk_blocks=profile.address_range_blocks,
            consistency=False, capacity_slack=slack,
        ))
        stats = system.replay(trace.records, warmup_fraction=WARMUP_FRACTION)
        rows.append({
            "system": f"SSC (slack {slack})",
            "miss": stats.miss_rate(),
            "iops": stats.iops(),
        })
    return rows


def test_ablation_capacity_slack(benchmark):
    rows = once(benchmark, run_sweep)
    print()
    print(
        format_table(
            ["system", "miss %", "IOPS"],
            [[r["system"], f"{r['miss']:.1f}", f"{r['iops']:.0f}"] for r in rows],
            title="Ablation: SSC raw-capacity slack vs miss rate (homes, WT)",
        )
    )
    # More raw flash must monotonically-ish reduce the SSC's misses.
    ssc_misses = [r["miss"] for r in rows[1:]]
    assert ssc_misses[-1] < ssc_misses[0]
