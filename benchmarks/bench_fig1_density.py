"""Figure 1 — Logical block address distribution.

Paper: "The distribution of unique block accesses across 100,000 4 KB
block regions of the disk address space. ...  Across all four traces,
more than 55 % of the regions get less than 1 % of their blocks
referenced, and only 25 % of the regions get more than 10 %."

This benchmark regenerates the CDF rows for the synthetic traces and
checks the two headline fractions.  (Regions are scaled with the
workloads: 1,000 blocks per region at 1/100 address-space scale.)
"""

from repro.stats.report import format_table

from benchmarks.common import WORKLOADS, get_trace, once


def density_cdf_rows():
    thresholds = (0.001, 0.01, 0.05, 0.10, 0.25, 0.50)
    rows = []
    summary = {}
    for name in WORKLOADS:
        trace = get_trace(name)
        densities = trace.region_densities()
        row = [name, len(densities)]
        for threshold in thresholds:
            below = sum(1 for d in densities if d <= threshold)
            row.append(f"{100.0 * below / len(densities):.0f}%")
        rows.append(row)
        summary[name] = {
            "sparse": sum(1 for d in densities if d < 0.01) / len(densities),
            "dense": sum(1 for d in densities if d > 0.10) / len(densities),
        }
    return thresholds, rows, summary


def test_fig1_region_density(benchmark):
    thresholds, rows, summary = once(benchmark, density_cdf_rows)
    headers = ["workload", "regions"] + [f"<={t:.1%}" for t in thresholds]
    print()
    print(format_table(headers, rows, title="Figure 1: region density CDF"))
    print(
        "\npaper shape: >55% of regions hold <1% of their blocks; "
        "~25% hold >10%"
    )
    for name, stats in summary.items():
        print(
            f"  {name}: {stats['sparse']:.0%} of regions <1% dense, "
            f"{stats['dense']:.0%} of regions >10% dense"
        )
        # The shape constraint, loosely checked (the exact fraction is
        # scale-dependent; the paper reports >55% at full trace scale).
        assert stats["sparse"] > 0.20, name
