"""Table 3 — Workload characteristics.

Paper columns: address range, unique blocks, total ops, % writes.
This regenerates the table for the synthetic traces so every other
benchmark's inputs are on the record.
"""

from repro.stats.report import format_table

from benchmarks.common import WORKLOADS, get_trace, once

# Paper's Table 3 for reference (full-scale production traces).
PAPER = {
    "homes": ("532 GB", "1,684,407", "17,836,701", 95.9),
    "mail": ("277 GB", "15,136,141", "462,082,021", 88.5),
    "usr": ("530 GB", "99,450,142", "116,060,427", 5.9),
    "proj": ("816 GB", "107,509,907", "311,253,714", 14.2),
}


def workload_rows():
    rows = []
    for name in WORKLOADS:
        trace = get_trace(name)
        profile = trace.profile
        range_gb = profile.address_range_blocks * 4096 / 1e9
        rows.append(
            [
                name,
                f"{range_gb:.1f} GB",
                trace.unique_blocks_touched(),
                len(trace),
                f"{100 * trace.write_fraction():.1f}",
                f"{PAPER[name][3]:.1f}",
            ]
        )
    return rows


def test_table3_workload_characteristics(benchmark):
    rows = once(benchmark, workload_rows)
    print()
    print(
        format_table(
            ["workload", "range", "unique blocks", "total ops",
             "% writes", "paper % writes"],
            rows,
            title="Table 3: workload characteristics (synthetic, scaled)",
        )
    )
    for row in rows:
        measured, paper = float(row[4]), float(row[5])
        assert abs(measured - paper) < 5.0, row[0]
