"""Response times under consistency (§6.4's latency analysis).

Paper: "For write-intensive workloads homes and mail, the native system
increases response time by 24-37% because of frequent small metadata
writes.  Both FlashTier configurations increase response time less, by
18-32%, due to logging updates to the map. ...  Overall, the extra cost
of consistency for the request response time is less than 26 µs for all
workloads with FlashTier."

This benchmark reports mean request latency with and without
consistency for the native and FlashTier write-back systems.
"""

from repro import CacheMode, SystemKind
from repro.stats.report import format_table

from benchmarks.common import WORKLOADS, get_trace, once, run_workload


def run_latencies():
    results = {}
    for name in WORKLOADS:
        trace = get_trace(name)
        row = {}
        for label, kind, consistency in (
            ("native", SystemKind.NATIVE, False),
            ("native-D", SystemKind.NATIVE, True),
            ("flashtier", SystemKind.SSC, False),
            ("flashtier-C/D", SystemKind.SSC, True),
        ):
            _system, stats = run_workload(
                trace, kind, CacheMode.WRITE_BACK, consistency=consistency
            )
            row[label] = stats.latency.mean_us
        results[name] = row
    return results


def test_response_time_cost_of_consistency(benchmark):
    results = once(benchmark, run_latencies)
    rows = []
    for name, row in results.items():
        native_delta = 100 * (row["native-D"] / row["native"] - 1)
        flashtier_delta = 100 * (row["flashtier-C/D"] / row["flashtier"] - 1)
        flashtier_us = row["flashtier-C/D"] - row["flashtier"]
        rows.append([
            name,
            f"{row['native']:.0f}",
            f"{native_delta:+.0f}%",
            f"{row['flashtier']:.0f}",
            f"{flashtier_delta:+.0f}%",
            f"{flashtier_us:+.0f} us",
        ])
    print()
    print(
        format_table(
            ["workload", "native us", "native-D delta",
             "flashtier us", "C/D delta", "C/D extra us"],
            rows,
            title="Mean response time: the cost of consistency (WB)",
        )
    )
    print(
        "\npaper shape: native +24-37% on write-heavy; FlashTier +18-32%; "
        "FlashTier extra <26 us on all workloads"
    )
    for name in ("homes", "mail"):
        row = results[name]
        # FlashTier's consistency must not cost meaningfully more latency
        # than native's.  (Tolerance for the same reason as Fig. 4: the
        # synthetic mail profile lets the native manager batch sequential
        # metadata updates harder than the production trace did.)
        native_delta = row["native-D"] / row["native"]
        flashtier_delta = row["flashtier-C/D"] / row["flashtier"]
        assert flashtier_delta <= native_delta + 0.12, name
