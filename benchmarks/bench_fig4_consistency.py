"""Figure 4 — Consistency cost.

Paper: write-back throughput normalized to a no-consistency system
(mapping never persisted).  Lines: Native-D (persists metadata for
dirty blocks), FlashTier-D (buffers write-clean records), and
FlashTier-C/D (synchronous logging for clean and dirty).

Expected shape: on write-heavy homes/mail the native system loses
18-29 %; FlashTier-D loses 8-15 % and FlashTier-C/D 11-16 %.  On
read-heavy usr/proj every system loses <= ~7 %.
"""

from repro import CacheMode, SystemKind
from repro.ssc.device import SSCConfig, SolidStateCache
from repro.ssc.engine import EvictionPolicy
from repro.core.flashtier import cache_geometry
from repro.disk.model import Disk
from repro.manager.writeback import FlashTierWBManager
from repro.stats.report import format_table
from repro.traces.replay import replay_trace

from benchmarks.common import (
    WARMUP_FRACTION,
    WORKLOADS,
    get_trace,
    once,
    run_workload,
    system_config,
)


def flashtier_variant(trace, clean_durability, consistency=True):
    """A write-back FlashTier system with a specific durability mode."""
    config = system_config(trace, SystemKind.SSC, CacheMode.WRITE_BACK)
    geometry = cache_geometry(config)
    ssc = SolidStateCache(
        geometry,
        config=SSCConfig(
            policy=EvictionPolicy.UTIL,
            consistency=consistency,
            clean_durability=clean_durability,
        ),
    )
    disk = Disk(config.disk_blocks)
    manager = FlashTierWBManager(ssc, disk)
    return replay_trace(
        manager, trace.records, warmup_fraction=WARMUP_FRACTION
    ).iops()


def run_figure4():
    results = {}
    for name in WORKLOADS:
        trace = get_trace(name)
        _sys, native_nc = run_workload(
            trace, SystemKind.NATIVE, CacheMode.WRITE_BACK, consistency=False
        )
        _sys, native_d = run_workload(
            trace, SystemKind.NATIVE, CacheMode.WRITE_BACK, consistency=True
        )
        flashtier_nc = flashtier_variant(trace, "buffered", consistency=False)
        flashtier_d = flashtier_variant(trace, "buffered")
        flashtier_cd = flashtier_variant(trace, "sync")
        results[name] = {
            "Native-D": 100 * native_d.iops() / native_nc.iops(),
            "FlashTier-D": 100 * flashtier_d / flashtier_nc,
            "FlashTier-C/D": 100 * flashtier_cd / flashtier_nc,
        }
    return results


def test_fig4_consistency_cost(benchmark):
    results = once(benchmark, run_figure4)
    rows = [
        [name, f"{v['Native-D']:.0f}%", f"{v['FlashTier-D']:.0f}%",
         f"{v['FlashTier-C/D']:.0f}%"]
        for name, v in results.items()
    ]
    print()
    print(
        format_table(
            ["workload", "Native-D", "FlashTier-D", "FlashTier-C/D"],
            rows,
            title="Figure 4: throughput vs no-consistency baseline",
        )
    )
    print(
        "\npaper shape: homes/mail Native-D 71-82%, FlashTier-D 85-92%, "
        "FlashTier-C/D 84-89%; usr/proj all >=93%"
    )
    for name in ("homes", "mail"):
        v = results[name]
        # FlashTier's consistency must not cost meaningfully more than
        # the native system's.  (Tolerance: our synthetic mail is more
        # write-sequential than the production trace, which lets the
        # native manager batch its metadata updates harder than the
        # paper's baseline could — see EXPERIMENTS.md.)
        assert v["FlashTier-D"] > v["Native-D"] - 8.0, name
        # Relaxing clean-block durability must not cost more than full sync.
        assert v["FlashTier-D"] >= v["FlashTier-C/D"] - 3.0, name
    for name in ("usr", "proj"):
        # Read-heavy: consistency is cheap for every system (paper: >=93%).
        v = results[name]
        assert min(v.values()) > 85.0, name
