"""Ablation — write-back dirty threshold.

§6.3 configures the FlashTier write-back manager "with a dirty
percentage threshold of 20 % of the cache size (above this threshold
the cache manager will clean blocks)".  This sweep shows the trade the
threshold controls: a low threshold cleans eagerly (more disk
write-back traffic, smaller dirty table, more evictable cache), a high
one absorbs more overwrites in flash but risks device back-pressure.
"""

from repro import CacheMode, SystemKind
from repro.core.flashtier import cache_geometry
from repro.disk.model import Disk
from repro.manager.writeback import FlashTierWBManager, WriteBackConfig
from repro.ssc.device import SolidStateCache, SSCConfig
from repro.ssc.engine import EvictionPolicy
from repro.stats.report import format_table
from repro.traces.replay import replay_trace

from benchmarks.common import WARMUP_FRACTION, get_trace, once, system_config

THRESHOLDS = (0.05, 0.10, 0.20, 0.40)


def run_sweep():
    trace = get_trace("homes")
    config = system_config(trace, SystemKind.SSC, CacheMode.WRITE_BACK)
    geometry = cache_geometry(config)
    rows = []
    for threshold in THRESHOLDS:
        ssc = SolidStateCache(
            geometry, config=SSCConfig(policy=EvictionPolicy.UTIL)
        )
        disk = Disk(config.disk_blocks)
        manager = FlashTierWBManager(
            ssc, disk, WriteBackConfig(dirty_threshold=threshold)
        )
        stats = replay_trace(manager, trace.records,
                             warmup_fraction=WARMUP_FRACTION)
        rows.append({
            "threshold": threshold,
            "iops": stats.iops(),
            "writebacks": manager.stats.writebacks,
            "disk_writes": disk.stats.writes,
            "host_kib": manager.host_memory_bytes() / 1024,
            "dirty": len(manager.dirty_table),
        })
    return rows


def test_ablation_dirty_threshold(benchmark):
    rows = once(benchmark, run_sweep)
    print()
    print(
        format_table(
            ["dirty threshold", "IOPS", "writebacks", "disk writes",
             "host KiB", "dirty blocks"],
            [
                [f"{r['threshold']:.0%}", f"{r['iops']:.0f}",
                 r["writebacks"], r["disk_writes"],
                 f"{r['host_kib']:.1f}", r["dirty"]]
                for r in rows
            ],
            title="Ablation: write-back dirty threshold (homes)",
        )
    )
    # Eager cleaning writes back more and keeps the dirty table smaller.
    assert rows[0]["writebacks"] >= rows[-1]["writebacks"]
    assert rows[0]["dirty"] <= rows[-1]["dirty"] or rows[-1]["dirty"] <= 64
