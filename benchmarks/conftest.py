"""Benchmark-session configuration."""

import sys
from pathlib import Path

import pytest

# Allow `from common import ...` style imports within benchmark modules
# regardless of how pytest resolves rootdir.
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(autouse=True)
def show_result_tables(capfd):
    """Re-emit each benchmark's printed tables to the real stdout.

    The tables these benchmarks print *are* the experiment results;
    pytest's default capture would swallow them unless the user
    remembers ``-s``.  This drains the captured stream after each test
    and writes it through uncaptured.
    """
    yield
    out, _err = capfd.readouterr()
    if out.strip():
        with capfd.disabled():
            sys.stdout.write(out)
            sys.stdout.flush()
