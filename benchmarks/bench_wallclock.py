"""Wall-clock throughput of the replay pipeline (host-performance bench).

Unlike the other benchmarks — which report *simulated* metrics and are
bit-reproducible anywhere — this one measures how fast the host executes
the simulator itself: records/sec through trace dispatch, the cache
manager, the FTL, the sparse map, completion tracing and the event
engine.  The scenario matrix is fixed-seed, so the work performed is
identical across commits; only the wall-clock changes.

The same harness backs ``repro bench`` (see
:mod:`repro.perf.wallclock`); the repo-root ``BENCH_wallclock.json``
baseline and the CI perf-smoke gate are described in
``docs/benchmarking.md``.  Pass ``--benchmark-only`` to skip the rest of
the suite, and set ``REPRO_BENCH_FULL=1`` to run the full committed
matrix instead of the CI-sized quick one.
"""

import json
import os
from pathlib import Path

from repro.perf.wallclock import (
    BENCH_FILENAME,
    compare_reports,
    default_matrix,
    quick_matrix,
    run_bench,
    validate_report,
)
from repro.stats.report import format_table

from benchmarks.common import once

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_wallclock_matrix():
    matrix = default_matrix() if os.environ.get("REPRO_BENCH_FULL") else quick_matrix()
    return run_bench(**matrix)


def test_wallclock_throughput(benchmark):
    report = once(benchmark, run_wallclock_matrix)
    validate_report(report)

    rows = [
        [
            entry["workload"],
            entry["system"],
            entry["mode"],
            str(entry["queue_depth"]),
            f"{entry['records_per_sec']:,.0f}",
            f"{entry['sim']['iops']:,.0f}",
        ]
        for entry in report["results"]
    ]
    print()
    print(
        format_table(
            ["workload", "system", "mode", "QD", "rec/s (wall)", "IOPS (sim)"],
            rows,
            title="Wall-clock replay throughput",
        )
    )

    baseline_path = REPO_ROOT / BENCH_FILENAME
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        failures, warnings = compare_reports(report, baseline)
        for line in warnings:
            print(f"warning: {line}")
        # Scenarios absent from the quick matrix only produce warnings;
        # wall-clock regressions on shared scenarios would be failures,
        # but pytest-benchmark runs are too noisy to gate on here — the
        # CI perf-smoke job owns the hard gate.
        print(f"\n{len(failures)} regression(s) vs committed baseline "
              f"(informational; CI gates separately)")
