"""Table 4 — Memory consumption.

Paper columns: cached-data size; device memory for SSD / SSC / SSC-R;
host memory for the native manager and the FlashTier write-back cache
manager (FTCM).  Expected shape:

* SSC device memory within ~5-17 % of the SSD's; SSC-R roughly 2x;
* FlashTier cache manager ~11 % of the native manager's host memory;
* combined savings >= 60 % (SSC-R) / ~78 % (SSC).

The paper also reports *proj-50*: the proj workload with a cache sized
for the top 50 % of blocks instead of 25 %.
"""

from repro import CacheMode, SystemKind
from repro.stats.report import format_table

from benchmarks.common import WORKLOADS, get_trace, once, run_workload


def measure_memory(trace, cache_fraction):
    """Replay under each device type; return memory numbers in KiB."""
    out = {}
    for kind in (SystemKind.NATIVE, SystemKind.SSC, SystemKind.SSC_R):
        system, _stats = run_workload(
            trace, kind, CacheMode.WRITE_BACK, cache_fraction=cache_fraction
        )
        out[kind] = {
            "device": system.device.device_memory_bytes() / 1024,
            "host": system.manager.host_memory_bytes() / 1024,
            "cached": (
                system.manager.cached_blocks()
                if kind is SystemKind.NATIVE
                else system.ssc.cached_blocks()
            ),
        }
    return out


def run_table4():
    cases = [(name, 0.25) for name in WORKLOADS]
    cases.append(("proj", 0.50))  # the paper's proj-50 row
    results = {}
    for name, fraction in cases:
        label = f"{name}-50" if fraction == 0.50 else name
        results[label] = measure_memory(get_trace(name), fraction)
    return results


def test_table4_memory_consumption(benchmark):
    results = once(benchmark, run_table4)
    rows = []
    for label, memory in results.items():
        ssd = memory[SystemKind.NATIVE]
        ssc = memory[SystemKind.SSC]
        ssc_r = memory[SystemKind.SSC_R]
        rows.append(
            [
                label,
                f"{ssd['device']:.0f}",
                f"{ssc['device']:.0f}",
                f"{ssc_r['device']:.0f}",
                f"{ssd['host']:.0f}",
                f"{ssc['host']:.0f}",
            ]
        )
    print()
    print(
        format_table(
            ["workload", "SSD dev KiB", "SSC dev KiB", "SSC-R dev KiB",
             "Native host KiB", "FTCM host KiB"],
            rows,
            title="Table 4: memory consumption",
        )
    )
    print(
        "\npaper shape: SSC device ~1.05-1.2x SSD; SSC-R ~2-2.6x SSD; "
        "FTCM host ~11% of native; combined savings >=60%"
    )
    for label, memory in results.items():
        ssd = memory[SystemKind.NATIVE]
        ssc = memory[SystemKind.SSC]
        ssc_r = memory[SystemKind.SSC_R]
        # Host memory: FlashTier tracks dirty blocks only.
        assert ssc["host"] < 0.5 * ssd["host"], label
        # Device memory: SSC-R pays for its larger page-mapped region.
        assert ssc_r["device"] > ssc["device"], label
        # Combined: FlashTier must save memory overall.
        native_total = ssd["device"] + ssd["host"]
        ssc_total = ssc["device"] + ssc["host"]
        assert ssc_total < native_total, label
