"""Table 5 — Wear distribution.

Paper columns, per workload and device (SSD / SSC / SSC-R): total erase
operations, maximum wear difference between any two blocks, write
amplification, and cache miss rate.  Methodology as Figure 6
(write-through, logging disabled, 15 % warm-up).

Expected shape (write-heavy homes/mail): erases SSD > SSC > SSC-R
(SSC ~26 % and SSC-R ~35 % fewer on average); write amplification
SSD > SSC > SSC-R; miss rate rises by only a few points for SSC/SSC-R.
Read-heavy usr/proj: all three close.
"""

from repro import CacheMode, SystemKind
from repro.stats.report import format_table

from benchmarks.common import WORKLOADS, get_trace, once, run_workload

DEVICES = (SystemKind.NATIVE, SystemKind.SSC, SystemKind.SSC_R)
LABELS = {SystemKind.NATIVE: "SSD", SystemKind.SSC: "SSC", SystemKind.SSC_R: "SSC-R"}


def run_table5():
    results = {}
    for name in WORKLOADS:
        trace = get_trace(name)
        per_device = {}
        for kind in DEVICES:
            system, stats = run_workload(
                trace, kind, CacheMode.WRITE_THROUGH, consistency=False
            )
            chip = system.device.chip
            per_device[kind] = {
                "erases": chip.total_erases(),
                "wear_diff": chip.wear_differential(),
                "write_amp": system.device_stats.write_amplification(),
                "miss_rate": stats.miss_rate(),
            }
        results[name] = per_device
    return results


def test_table5_wear_distribution(benchmark):
    results = once(benchmark, run_table5)
    rows = []
    for name, per_device in results.items():
        for kind in DEVICES:
            entry = per_device[kind]
            rows.append(
                [
                    name,
                    LABELS[kind],
                    entry["erases"],
                    entry["wear_diff"],
                    f"{entry['write_amp']:.2f}",
                    f"{entry['miss_rate']:.1f}",
                ]
            )
    print()
    print(
        format_table(
            ["workload", "device", "erases", "wear diff", "write amp", "miss %"],
            rows,
            title="Table 5: wear distribution (WT, no logging)",
        )
    )
    print(
        "\npaper shape: on homes/mail, erases and write amp fall "
        "SSD > SSC > SSC-R; miss rate rises only a few points"
    )
    for name in ("homes", "mail"):
        ssd = results[name][SystemKind.NATIVE]
        ssc = results[name][SystemKind.SSC]
        ssc_r = results[name][SystemKind.SSC_R]
        assert ssc["write_amp"] < ssd["write_amp"], name
        assert ssc_r["write_amp"] < ssc["write_amp"] + 0.05, name
        assert ssc_r["erases"] < ssd["erases"], name
