"""Ablation — the sequential log block and switch merges.

§4.3 credits SE-Merge's gains partly to switch merges, "which convert a
sequentially written log block into a data block without copying data".
This ablation disables the dedicated sequential log block and measures
what streams through the cache lose.
"""

from repro import CacheMode, SystemKind
from repro.core.flashtier import cache_geometry
from repro.disk.model import Disk
from repro.manager.writethrough import FlashTierWTManager
from repro.ssc.device import SolidStateCache, SSCConfig
from repro.ssc.engine import EvictionPolicy
from repro.stats.report import format_table
from repro.traces.replay import replay_trace

from benchmarks.common import WARMUP_FRACTION, get_trace, once, system_config


def run_sweep():
    trace = get_trace("homes")  # file streams: plenty of sequential runs
    config = system_config(trace, SystemKind.SSC_R, CacheMode.WRITE_THROUGH,
                           consistency=False)
    geometry = cache_geometry(config)
    rows = []
    for sequential_log in (True, False):
        ssc = SolidStateCache(
            geometry,
            config=SSCConfig(policy=EvictionPolicy.MERGE, consistency=False,
                             sequential_log=sequential_log),
        )
        manager = FlashTierWTManager(ssc, Disk(config.disk_blocks))
        stats = replay_trace(manager, trace.records,
                             warmup_fraction=WARMUP_FRACTION)
        rows.append({
            "seq_log": "on" if sequential_log else "off",
            "switch": ssc.stats.switch_merges,
            "partial": ssc.stats.partial_merges,
            "full": ssc.stats.full_merges,
            "write_amp": ssc.stats.write_amplification(),
            "iops": stats.iops(),
        })
    return rows


def test_ablation_sequential_log(benchmark):
    rows = once(benchmark, run_sweep)
    print()
    print(
        format_table(
            ["seq log", "switch", "partial", "full merges", "write amp", "IOPS"],
            [
                [r["seq_log"], r["switch"], r["partial"], r["full"],
                 f"{r['write_amp']:.2f}", f"{r['iops']:.0f}"]
                for r in rows
            ],
            title="Ablation: sequential log block (homes, SSC-R, WT)",
        )
    )
    with_seq, without_seq = rows
    # The dedicated block multiplies cheap merges (random log blocks can
    # still switch organically when a run happens to fill one exactly).
    assert with_seq["switch"] + with_seq["partial"] > (
        without_seq["switch"] + without_seq["partial"]
    )
    assert without_seq["partial"] == 0  # partial merges need the seq block
