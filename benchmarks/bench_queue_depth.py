"""Queue-depth scaling — the event-driven engine's headline result.

The legacy serial replay loop keeps one request in flight, so IOPS is
capped at 1/mean-latency regardless of device parallelism.  The
event-driven :class:`~repro.engine.ReplayEngine` overlaps requests on
distinct flash planes while same-plane requests (and the single disk
spindle) queue.  Expected shape on a read-heavy, cache-resident
workload: IOPS grows with queue depth until the planes (or the disk,
for the miss traffic) saturate, then flattens — with queueing delay
rising to absorb the extra concurrency.
"""

from repro import CacheMode, SystemKind
from repro.stats.report import format_table

from benchmarks.common import get_trace, once, run_workload

QUEUE_DEPTHS = (1, 2, 4, 8, 16, 32)

#: usr is the paper's read-heavy workload (5.9 % writes); a generous
#: cache fraction keeps the measured interval hit-dominated so flash
#: parallelism, not the disk spindle, is the binding resource.
WORKLOAD = "usr"
CACHE_FRACTION = 0.9


def run_queue_depth_sweep():
    trace = get_trace(WORKLOAD)
    results = []
    for depth in QUEUE_DEPTHS:
        _system, stats = run_workload(
            trace,
            SystemKind.SSC_R,
            CacheMode.WRITE_BACK,
            cache_fraction=CACHE_FRACTION,
            queue_depth=depth,
        )
        results.append((depth, stats))
    return results


def test_queue_depth_scaling(benchmark):
    results = once(benchmark, run_queue_depth_sweep)
    rows = []
    for depth, stats in results:
        utilization = stats.utilization()
        plane_utils = [
            value for key, value in utilization.items() if key.startswith("plane:")
        ]
        mean_plane = sum(plane_utils) / len(plane_utils) if plane_utils else 0.0
        rows.append([
            str(depth),
            f"{stats.iops():,.0f}",
            f"{stats.service.mean_us:.0f}",
            f"{stats.queue_wait.mean_us:.0f}",
            f"{100 * mean_plane:.0f}%",
            f"{100 * utilization.get('disk', 0.0):.0f}%",
        ])
    print()
    print(
        format_table(
            ["QD", "IOPS", "service us", "queue us", "plane util", "disk util"],
            rows,
            title=f"Queue-depth scaling ({WORKLOAD}, SSC-R write-back)",
        )
    )
    print("\nexpected shape: IOPS rises with queue depth until the "
          "device saturates, queueing delay absorbs the remainder")

    by_depth = dict(results)
    # Concurrency must pay: deeper queues strictly beat serial replay
    # until saturation.
    assert by_depth[4].iops() > by_depth[1].iops()
    assert by_depth[16].iops() > by_depth[4].iops()
    # Saturation: the last doubling buys little; IOPS never regresses
    # below the serial baseline anywhere in the sweep.
    assert by_depth[32].iops() >= by_depth[16].iops() * 0.95
    for depth, stats in results:
        assert stats.iops() >= by_depth[1].iops() * 0.99, depth
    # Queueing delay only exists under concurrency.
    assert by_depth[1].queue_wait.mean_us == 0.0
    assert by_depth[32].queue_wait.mean_us > 0.0
