"""Figure 5 — Recovery time.

Paper: time to recover after a crash, per workload.  Three bars:

* FlashTier — reload the mapping into device memory by reading the
  latest checkpoint and replaying the log tail (34 ms ... 2.4 s);
* Native-FC — reload only the FlashCache manager's metadata from the
  SSD (133 ms ... 9.4 s);
* Native-SSD — rebuild the SSD's own mapping by scanning OOB areas
  (468 ms ... 30 s).

Expected shape: FlashTier < Native-FC < Native-SSD, roughly an order
of magnitude between FlashTier and the full native recovery.
"""

from repro import CacheMode, SystemKind
from repro.stats.report import format_table

from benchmarks.common import WORKLOADS, get_trace, once, run_workload


def run_figure5():
    results = {}
    for name in WORKLOADS:
        trace = get_trace(name)

        flashtier, _stats = run_workload(trace, SystemKind.SSC, CacheMode.WRITE_BACK)
        flashtier.ssc.crash()
        flashtier_us = flashtier.ssc.recover()
        exists_us = flashtier.manager.recover_us(trace.profile.address_range_blocks)

        native, _stats = run_workload(trace, SystemKind.NATIVE, CacheMode.WRITE_BACK)
        native_fc_us = native.manager.recover_manager_us()
        native_ssd_us = native.manager.recover_device_us()

        results[name] = {
            "flashtier_ms": flashtier_us / 1000,
            "exists_scan_ms": exists_us / 1000,
            "native_fc_ms": native_fc_us / 1000,
            "native_ssd_ms": native_ssd_us / 1000,
        }
    return results


def test_fig5_recovery_time(benchmark):
    results = once(benchmark, run_figure5)
    rows = [
        [
            name,
            f"{v['flashtier_ms']:.2f}",
            f"{v['native_fc_ms']:.2f}",
            f"{v['native_ssd_ms']:.2f}",
        ]
        for name, v in results.items()
    ]
    print()
    print(
        format_table(
            ["workload", "FlashTier ms", "Native-FC ms", "Native-SSD ms"],
            rows,
            title="Figure 5: crash recovery time",
        )
    )
    print(
        "\npaper shape (full scale): FlashTier 0.034-2.4 s; Native-FC "
        "0.133-9.4 s; Native-SSD 0.468-30 s"
    )
    for name, v in results.items():
        assert v["flashtier_ms"] < v["native_ssd_ms"], name
        assert v["native_fc_ms"] < v["native_ssd_ms"], name
