"""Ablation — mapping granularity: hybrid vs page-mapped SSD.

The hybrid FTL exists because a full page map costs too much device
memory (the argument behind §4.1 and Table 4); a page map exists
because hybrid merges cost performance.  This ablation quantifies both
sides on the write-heavy homes workload, framing where the SSC lands:
SSC performance beats both (eviction instead of copying) at hybrid-like
memory cost.
"""

from repro import CacheMode, SystemKind
from repro.core.flashtier import cache_geometry
from repro.disk.model import Disk
from repro.ftl.ssd import SSD
from repro.manager.native import NativeCacheManager, NativeConfig
from repro.stats.report import format_table
from repro.traces.replay import replay_trace

from benchmarks.common import (
    WARMUP_FRACTION,
    get_trace,
    once,
    run_workload,
    system_config,
)


def run_ablation():
    trace = get_trace("homes")
    config = system_config(trace, SystemKind.NATIVE, CacheMode.WRITE_BACK,
                           consistency=False)
    geometry = cache_geometry(config)
    rows = []
    for mapping in ("hybrid", "page"):
        ssd = SSD(geometry=geometry, mapping=mapping)
        manager = NativeCacheManager(
            ssd, Disk(config.disk_blocks), NativeConfig(consistency=False)
        )
        stats = replay_trace(manager, trace.records, warmup_fraction=WARMUP_FRACTION)
        rows.append({
            "mapping": mapping,
            "iops": stats.iops(),
            "write_amp": ssd.stats.write_amplification(),
            "erases": ssd.chip.total_erases(),
            "memory_kib": ssd.device_memory_bytes() / 1024,
        })
    ssc_system, ssc_stats = run_workload(
        trace, SystemKind.SSC, CacheMode.WRITE_BACK, consistency=False
    )
    rows.append({
        "mapping": "ssc (sparse hybrid + eviction)",
        "iops": ssc_stats.iops(),
        "write_amp": ssc_system.device_stats.write_amplification(),
        "erases": ssc_system.device.chip.total_erases(),
        "memory_kib": ssc_system.device.device_memory_bytes() / 1024,
    })
    return rows


def test_ablation_mapping_granularity(benchmark):
    rows = once(benchmark, run_ablation)
    print()
    print(
        format_table(
            ["FTL mapping", "IOPS", "write amp", "erases", "device KiB"],
            [
                [r["mapping"], f"{r['iops']:.0f}", f"{r['write_amp']:.2f}",
                 r["erases"], f"{r['memory_kib']:.0f}"]
                for r in rows
            ],
            title="Ablation: mapping granularity (homes, WB, no consistency)",
        )
    )
    hybrid, page, ssc = rows
    # The page map buys lower write amplification with much more memory.
    assert page["write_amp"] <= hybrid["write_amp"] + 0.05
    assert page["memory_kib"] > 3 * hybrid["memory_kib"]
    # The SSC beats the hybrid SSD without the page map's memory bill.
    assert ssc["iops"] > hybrid["iops"]
    assert ssc["memory_kib"] < page["memory_kib"]
