"""Microbenchmarks — per-operation simulator throughput.

These measure the *simulator's* wall-clock cost per device operation
(how many simulated I/Os per second the library sustains), which bounds
how large an experiment is practical.  They also print each operation's
simulated service time for comparison against Table 2.
"""

import itertools
import random

import pytest

from repro.disk.model import Disk
from repro.flash.geometry import FlashGeometry
from repro.ftl.ssd import SSD
from repro.ssc.device import SolidStateCache


GEOMETRY = FlashGeometry(planes=4, blocks_per_plane=64, pages_per_block=16)


@pytest.fixture
def ssd():
    return SSD(geometry=GEOMETRY)


@pytest.fixture
def ssc():
    device = SolidStateCache.ssc(GEOMETRY)
    for lbn in range(0, 4096, 2):
        device.write_clean(lbn, lbn)
    return device


def test_micro_ssd_random_write(benchmark, ssd):
    rng = random.Random(1)
    capacity = ssd.capacity_pages

    def writes():
        for _ in range(100):
            ssd.write(rng.randrange(capacity), 1)

    benchmark(writes)


def test_micro_ssc_write_clean(benchmark, ssc):
    rng = random.Random(2)

    def writes():
        for _ in range(100):
            ssc.write_clean(rng.randrange(100_000), 1)

    benchmark(writes)


def test_micro_ssc_write_dirty(benchmark, ssc):
    counter = itertools.count()

    def writes():
        for _ in range(100):
            lbn = next(counter) % 2048
            ssc.write_dirty(lbn, 1)
            ssc.clean(lbn)  # keep the device evictable

    benchmark(writes)


def test_micro_ssc_read_hit(benchmark, ssc):
    def reads():
        for lbn in range(0, 200, 2):
            ssc.read(lbn)

    benchmark(reads)


def test_micro_disk_random_read(benchmark):
    disk = Disk(1_000_000)
    rng = random.Random(3)

    def reads():
        for _ in range(100):
            disk.read(rng.randrange(1_000_000))

    benchmark(reads)
