"""Ablation — sparse hash map group size.

§4.1: "We set M to 32 buckets per group, which reduces the overhead of
bitmap to just 3.5 bits per key."  This sweep varies M and measures the
modeled memory overhead per entry and the probe behaviour, plus real
wall-clock microbenchmarks of insert/lookup (a legitimate use of
pytest-benchmark's statistics, unlike the simulated experiments).
"""

import random

import pytest

from repro.ftl.mapping import ENTRY_BYTES
from repro.ssc.sparse_map import SparseHashMap
from repro.stats.report import format_table

from benchmarks.common import once

GROUP_SIZES = (8, 16, 32, 64)
KEYS = 20_000


def run_sweep():
    rng = random.Random(1)
    keys = rng.sample(range(10**12), KEYS)
    rows = []
    for group_size in GROUP_SIZES:
        table = SparseHashMap(group_size=group_size)
        for index, key in enumerate(keys):
            table.insert(key, index)
        table.total_probes = table.total_lookups = 0
        for key in keys:
            table.lookup(key)
        overhead = table.memory_bytes() - len(table) * ENTRY_BYTES
        rows.append(
            {
                "group_size": group_size,
                "overhead_per_entry": overhead / len(table),
                "mean_probes": table.mean_probes(),
            }
        )
    return rows


def test_ablation_sparse_map_group_size(benchmark):
    rows = once(benchmark, run_sweep)
    print()
    print(
        format_table(
            ["M (buckets/group)", "overhead B/entry", "mean probes"],
            [
                [r["group_size"], f"{r['overhead_per_entry']:.2f}",
                 f"{r['mean_probes']:.2f}"]
                for r in rows
            ],
            title="Ablation: sparse hash map group size",
        )
    )
    # Larger groups amortize the group pointer: overhead must shrink.
    overheads = [r["overhead_per_entry"] for r in rows]
    assert overheads == sorted(overheads, reverse=True)
    # Paper: "typically no more than 4-5 probes per lookup".
    assert all(r["mean_probes"] < 5 for r in rows)


@pytest.fixture(scope="module")
def loaded_map():
    table = SparseHashMap()
    rng = random.Random(2)
    keys = rng.sample(range(10**12), 50_000)
    for index, key in enumerate(keys):
        table.insert(key, index)
    return table, keys


def test_micro_sparse_map_lookup(benchmark, loaded_map):
    table, keys = loaded_map
    probe_keys = keys[:1000]

    def lookups():
        for key in probe_keys:
            table.lookup(key)

    benchmark(lookups)


def test_micro_sparse_map_insert(benchmark):
    rng = random.Random(3)
    keys = iter(rng.sample(range(10**15), 2_000_000))

    def inserts():
        table = SparseHashMap()
        for _ in range(1000):
            table.insert(next(keys), 1)

    benchmark(inserts)
