"""Shared plumbing for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures.  The
workloads replay at a configurable scale: set ``REPRO_BENCH_SCALE``
(default 0.2) to trade fidelity for wall-clock time; 1.0 replays the
full synthetic profiles.

Traces are generated once per (profile, seed) and memoized, so a
``pytest benchmarks/`` session does not regenerate them per test.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Optional, Tuple

from repro import CacheMode, SystemConfig, SystemKind, build_system
from repro.core.flashtier import FlashTierSystem
from repro.stats.counters import ReplayStats
from repro.traces.synthetic import PROFILES, SyntheticTrace, WorkloadProfile

#: Fraction of the full profile each benchmark replays.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))

#: §6.5: replay the first 15 % of each trace to warm the cache.
WARMUP_FRACTION = 0.15

WORKLOADS = ("homes", "mail", "usr", "proj")


def scaled_profile(name: str, scale: Optional[float] = None) -> WorkloadProfile:
    profile = PROFILES[name]
    return profile.scaled(scale if scale is not None else BENCH_SCALE)


@lru_cache(maxsize=None)
def get_trace(name: str, seed: int = 1, scale: Optional[float] = None) -> SyntheticTrace:
    """Memoized synthetic trace for ``name`` at the benchmark scale."""
    from repro.traces.synthetic import generate_trace

    return generate_trace(scaled_profile(name, scale), seed=seed)


def system_config(
    trace: SyntheticTrace,
    kind: SystemKind,
    mode: CacheMode,
    consistency: bool = True,
    cache_fraction: float = 0.25,
) -> SystemConfig:
    """The paper's sizing rule: cache the top ``cache_fraction`` blocks."""
    profile = trace.profile
    return SystemConfig(
        kind=kind,
        mode=mode,
        cache_blocks=profile.cache_blocks(cache_fraction),
        disk_blocks=profile.address_range_blocks,
        consistency=consistency,
    )


def run_workload(
    trace: SyntheticTrace,
    kind: SystemKind,
    mode: CacheMode,
    consistency: bool = True,
    cache_fraction: float = 0.25,
    queue_depth: int = 1,
) -> Tuple[FlashTierSystem, ReplayStats]:
    """Build a system, replay the trace with warm-up, return both.

    ``queue_depth`` > 1 replays through the event-driven engine with
    that many requests outstanding (closed loop).
    """
    system = build_system(
        system_config(trace, kind, mode, consistency, cache_fraction)
    )
    stats = system.replay(
        trace.records,
        warmup_fraction=WARMUP_FRACTION,
        queue_depth=queue_depth,
    )
    return system, stats


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark.

    The experiments are deterministic simulations measured in *simulated*
    time; re-running them for statistical wall-clock confidence would
    only waste the session.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
