"""Ablation — wear-leveling policies.

Table 5 reports the wear differential between blocks; this sweep shows
what the leveling machinery buys: dynamic (least-worn allocation) and
static (cold-block relocation) leveling versus none, with the write
overhead each adds.
"""

from repro import CacheMode, SystemKind
from repro.core.flashtier import cache_geometry
from repro.disk.model import Disk
from repro.ftl.wear import WearConfig
from repro.manager.writethrough import FlashTierWTManager
from repro.ssc.device import SolidStateCache, SSCConfig
from repro.ssc.engine import EvictionPolicy
from repro.stats.report import format_table
from repro.traces.replay import replay_trace

from benchmarks.common import WARMUP_FRACTION, get_trace, once, system_config

POLICIES = (
    ("none", WearConfig(dynamic=False, static_threshold=None)),
    ("dynamic", WearConfig(dynamic=True, static_threshold=None)),
    ("dynamic+static", WearConfig(dynamic=True, static_threshold=16,
                                  check_interval=8)),
)


def run_sweep():
    trace = get_trace("mail")
    config = system_config(trace, SystemKind.SSC, CacheMode.WRITE_THROUGH,
                           consistency=False)
    geometry = cache_geometry(config)
    rows = []
    for label, wear in POLICIES:
        ssc = SolidStateCache(
            geometry,
            config=SSCConfig(policy=EvictionPolicy.UTIL, consistency=False,
                             wear=wear),
        )
        manager = FlashTierWTManager(ssc, Disk(config.disk_blocks))
        stats = replay_trace(manager, trace.records,
                             warmup_fraction=WARMUP_FRACTION)
        rows.append({
            "policy": label,
            "wear_diff": ssc.chip.wear_differential(),
            "erases": ssc.chip.total_erases(),
            "relocations": ssc.engine.wear.static_relocations,
            "iops": stats.iops(),
        })
    return rows


def test_ablation_wear_leveling(benchmark):
    rows = once(benchmark, run_sweep)
    print()
    print(
        format_table(
            ["policy", "wear diff", "erases", "relocations", "IOPS"],
            [
                [r["policy"], r["wear_diff"], r["erases"], r["relocations"],
                 f"{r['iops']:.0f}"]
                for r in rows
            ],
            title="Ablation: wear leveling (mail, WT)",
        )
    )
    none, dynamic, full = rows
    # Static relocation must engage and not leave wear more skewed than
    # dynamic allocation alone.  (Under caching churn, FIFO allocation
    # already rotates blocks well — an honest negative result this
    # ablation documents.)
    assert full["relocations"] > 0
    assert full["wear_diff"] <= dynamic["wear_diff"] + 16
