"""Figure 6 — Garbage collection performance.

Paper methodology (§6.5): write-through caching only (the SSC is
entirely responsible for replacement), logging and checkpointing
disabled, 15 % warm-up.  Reported: caching IOPS on SSD vs SSC vs SSC-R.

Expected shape: on write-intensive homes/mail the SSC beats the SSD by
34-52 % and SSC-R by 71-83 %; read-heavy usr/proj are close to parity.
"""

from repro import CacheMode, SystemKind
from repro.stats.report import format_table

from benchmarks.common import WORKLOADS, get_trace, once, run_workload

DEVICES = (SystemKind.NATIVE, SystemKind.SSC, SystemKind.SSC_R)


def run_figure6():
    results = {}
    for name in WORKLOADS:
        trace = get_trace(name)
        per_device = {}
        for kind in DEVICES:
            _system, stats = run_workload(
                trace, kind, CacheMode.WRITE_THROUGH, consistency=False
            )
            per_device[kind] = stats.iops()
        results[name] = per_device
    return results


def test_fig6_garbage_collection(benchmark):
    results = once(benchmark, run_figure6)
    rows = []
    for name, per_device in results.items():
        base = per_device[SystemKind.NATIVE]
        rows.append(
            [
                name,
                f"{base:.0f}",
                f"{100 * per_device[SystemKind.SSC] / base:.0f}%",
                f"{100 * per_device[SystemKind.SSC_R] / base:.0f}%",
            ]
        )
    print()
    print(
        format_table(
            ["workload", "SSD IOPS", "SSC", "SSC-R"],
            rows,
            title="Figure 6: GC performance relative to SSD (WT, no logging)",
        )
    )
    print(
        "\npaper shape: homes/mail SSC 134-152%, SSC-R 171-183%; "
        "usr/proj near parity"
    )
    for name in ("homes", "mail"):
        per_device = results[name]
        assert per_device[SystemKind.SSC] > per_device[SystemKind.NATIVE], name
        assert per_device[SystemKind.SSC_R] > per_device[SystemKind.NATIVE], name
