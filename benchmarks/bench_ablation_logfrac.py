"""Ablation — SE-Merge log-block fraction sweep.

§5: "we fix log blocks at 7 % of capacity for SSC and allow the
fraction to range from 0-20 % for SSC-R."  This sweep quantifies the
design choice: more log blocks defer merges (higher performance, lower
write amplification) but cost provisioned device memory for page-level
mappings (the Table 4 trade-off).
"""

from repro import CacheMode, SystemKind
from repro.core.flashtier import cache_geometry
from repro.disk.model import Disk
from repro.manager.writethrough import FlashTierWTManager
from repro.ssc.device import SolidStateCache, SSCConfig
from repro.ssc.engine import EvictionPolicy
from repro.stats.report import format_table
from repro.traces.replay import replay_trace

from benchmarks.common import WARMUP_FRACTION, get_trace, once, system_config

FRACTIONS = (0.07, 0.10, 0.15, 0.20, 0.30)


def run_sweep():
    trace = get_trace("homes")
    config = system_config(
        trace, SystemKind.SSC_R, CacheMode.WRITE_THROUGH, consistency=False
    )
    geometry = cache_geometry(config)
    rows = []
    for fraction in FRACTIONS:
        ssc = SolidStateCache(
            geometry,
            config=SSCConfig(
                policy=EvictionPolicy.MERGE,
                consistency=False,
                max_log_fraction=fraction,
            ),
        )
        manager = FlashTierWTManager(ssc, Disk(config.disk_blocks))
        stats = replay_trace(manager, trace.records, warmup_fraction=WARMUP_FRACTION)
        rows.append(
            {
                "fraction": fraction,
                "iops": stats.iops(),
                "write_amp": ssc.stats.write_amplification(),
                "erases": ssc.chip.total_erases(),
                "memory_kib": ssc.device_memory_bytes() / 1024,
                "miss": stats.miss_rate(),
            }
        )
    return rows


def test_ablation_log_fraction(benchmark):
    rows = once(benchmark, run_sweep)
    print()
    print(
        format_table(
            ["max log frac", "IOPS", "write amp", "erases", "dev KiB", "miss %"],
            [
                [f"{r['fraction']:.0%}", f"{r['iops']:.0f}",
                 f"{r['write_amp']:.2f}", r["erases"],
                 f"{r['memory_kib']:.0f}", f"{r['miss']:.1f}"]
                for r in rows
            ],
            title="Ablation: SE-Merge log-block fraction (homes, WT)",
        )
    )
    # Memory must grow monotonically with provisioned log fraction.
    memories = [r["memory_kib"] for r in rows]
    assert memories == sorted(memories)
    # Write amplification should not increase with more log blocks.
    assert rows[-1]["write_amp"] <= rows[0]["write_amp"] + 0.05
