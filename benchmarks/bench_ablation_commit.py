"""Ablation — group-commit threshold sweep.

§6.4 configures "group commit to flush the log buffer every 10,000
write operations or when a synchronous operation occurs".  This sweep
varies the threshold on the write-heavy mail workload and reports the
throughput cost and the crash-recovery time, exposing the
durability-granularity / performance trade-off.
"""

from repro import CacheMode, SystemKind
from repro.core.flashtier import cache_geometry
from repro.disk.model import Disk
from repro.manager.writeback import FlashTierWBManager
from repro.ssc.device import SolidStateCache, SSCConfig
from repro.ssc.engine import EvictionPolicy
from repro.stats.report import format_table
from repro.traces.replay import replay_trace

from benchmarks.common import WARMUP_FRACTION, get_trace, once, system_config

THRESHOLDS = (1, 10, 100, 1000, 10_000)


def run_sweep():
    trace = get_trace("mail")
    config = system_config(trace, SystemKind.SSC, CacheMode.WRITE_BACK)
    geometry = cache_geometry(config)
    rows = []
    for threshold in THRESHOLDS:
        ssc = SolidStateCache(
            geometry,
            config=SSCConfig(
                policy=EvictionPolicy.UTIL, group_commit_ops=threshold
            ),
        )
        manager = FlashTierWBManager(ssc, Disk(config.disk_blocks))
        stats = replay_trace(manager, trace.records, warmup_fraction=WARMUP_FRACTION)
        ssc.crash()
        recovery_us = ssc.recover()
        rows.append(
            {
                "threshold": threshold,
                "iops": stats.iops(),
                "sync_flushes": ssc.oplog.sync_flushes,
                "async_flushes": ssc.oplog.async_flushes,
                "log_pages": ssc.oplog.pages_written,
                "recovery_ms": recovery_us / 1000,
            }
        )
    return rows


def test_ablation_group_commit(benchmark):
    rows = once(benchmark, run_sweep)
    print()
    print(
        format_table(
            ["commit every", "IOPS", "sync flushes", "group flushes",
             "log pages", "recovery ms"],
            [
                [r["threshold"], f"{r['iops']:.0f}", r["sync_flushes"],
                 r["async_flushes"], r["log_pages"], f"{r['recovery_ms']:.2f}"]
                for r in rows
            ],
            title="Ablation: group-commit threshold (mail, WB)",
        )
    )
    # Aggressive flushing writes at least as many log pages.
    assert rows[0]["log_pages"] >= rows[-1]["log_pages"]
