"""Figure 3 — Application performance.

Paper: "The performance of write-through and write-back FlashTier
systems normalized to native write-back performance."  Expected shape:

* homes/mail (write-heavy): SSC WB +59-128 %, SSC-R WB +101-167 %,
  write-through variants +38-102 %;
* usr/proj (read-heavy): all systems roughly at parity.
"""

from repro import CacheMode, SystemKind
from repro.stats.report import format_table

from benchmarks.common import WORKLOADS, get_trace, once, run_workload

VARIANTS = (
    ("Native WB", SystemKind.NATIVE, CacheMode.WRITE_BACK),
    ("SSC WT", SystemKind.SSC, CacheMode.WRITE_THROUGH),
    ("SSC-R WT", SystemKind.SSC_R, CacheMode.WRITE_THROUGH),
    ("SSC WB", SystemKind.SSC, CacheMode.WRITE_BACK),
    ("SSC-R WB", SystemKind.SSC_R, CacheMode.WRITE_BACK),
)


def run_figure3():
    results = {}
    for name in WORKLOADS:
        trace = get_trace(name)
        per_variant = {}
        for label, kind, mode in VARIANTS:
            _system, stats = run_workload(trace, kind, mode)
            per_variant[label] = stats.iops()
        results[name] = per_variant
    return results


def test_fig3_application_performance(benchmark):
    results = once(benchmark, run_figure3)
    rows = []
    for name, per_variant in results.items():
        base = per_variant["Native WB"]
        row = [name, f"{base:.0f}"]
        for label, _kind, _mode in VARIANTS[1:]:
            row.append(f"{100 * per_variant[label] / base:.0f}%")
        rows.append(row)
    print()
    print(
        format_table(
            ["workload", "native IOPS"] + [v[0] for v in VARIANTS[1:]],
            rows,
            title="Figure 3: IOPS relative to native write-back",
        )
    )
    print(
        "\npaper shape: homes/mail SSC WB 159-228%, SSC-R WB 201-267%, "
        "WT variants lower; usr/proj near 100%"
    )
    for name in ("homes", "mail"):
        per_variant = results[name]
        base = per_variant["Native WB"]
        # Write-heavy: both SSC systems must beat native, SSC-R most.
        assert per_variant["SSC WB"] > base, name
        assert per_variant["SSC-R WB"] > per_variant["SSC WB"] * 0.95, name
    for name in ("usr", "proj"):
        per_variant = results[name]
        base = per_variant["Native WB"]
        # Read-heavy: parity band (generous at reduced scale).
        assert per_variant["SSC WB"] > 0.5 * base, name
