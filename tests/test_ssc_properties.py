"""Property-based tests of the SSC's consistency contract (§3.5).

A stateful hypothesis machine drives random interleavings of the six
operations plus crash/recover against a shadow model, checking:

1. dirty data is never lost (even across crashes);
2. reads never return stale data — the value is always the newest write
   or a not-present error;
3. reads after evict fail;
4. clean data may vanish only at a crash (buffered write-clean) or via
   silent eviction — and then reads fail rather than reading old bytes.
"""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors import CacheFullError, NotPresentError
from repro.flash.geometry import FlashGeometry
from repro.ssc.device import SolidStateCache, SSCConfig
from repro.ssc.engine import EvictionPolicy

# A compact address space so operations collide and GC triggers.
ADDRESSES = st.integers(min_value=0, max_value=400)


class SSCMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        geometry = FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8)
        self.ssc = SolidStateCache(
            geometry,
            config=SSCConfig(policy=EvictionPolicy.UTIL, group_commit_ops=20),
        )
        self.newest = {}       # lbn -> last value written
        self.dirty = set()     # lbns whose newest write was dirty & not evicted
        self.version = 0
        self.crashed = False

    # ---- operations ----------------------------------------------------

    @precondition(lambda self: not self.crashed)
    @rule(lbn=ADDRESSES)
    def write_dirty(self, lbn):
        self.version += 1
        value = ("v", lbn, self.version)
        try:
            self.ssc.write_dirty(lbn, value)
        except CacheFullError:
            # Legal back-pressure; model a manager cleaning everything.
            for dirty_lbn in list(self.dirty):
                self.ssc.clean(dirty_lbn)
            self.dirty.clear()
            self.ssc.write_dirty(lbn, value)
        self.newest[lbn] = value
        self.dirty.add(lbn)

    @precondition(lambda self: not self.crashed)
    @rule(lbn=ADDRESSES)
    def write_clean(self, lbn):
        self.version += 1
        value = ("v", lbn, self.version)
        try:
            self.ssc.write_clean(lbn, value)
        except CacheFullError:
            for dirty_lbn in list(self.dirty):
                self.ssc.clean(dirty_lbn)
            self.dirty.clear()
            self.ssc.write_clean(lbn, value)
        self.newest[lbn] = value
        self.dirty.discard(lbn)

    @precondition(lambda self: not self.crashed)
    @rule(lbn=ADDRESSES)
    def evict(self, lbn):
        self.ssc.evict(lbn)
        self.newest.pop(lbn, None)
        self.dirty.discard(lbn)

    @precondition(lambda self: not self.crashed)
    @rule(lbn=ADDRESSES)
    def clean(self, lbn):
        self.ssc.clean(lbn)
        self.dirty.discard(lbn)

    @precondition(lambda self: not self.crashed)
    @rule(lbn=ADDRESSES)
    def read(self, lbn):
        try:
            data, _cost = self.ssc.read(lbn)
        except NotPresentError:
            # Guarantee 1: dirty data must be present.
            assert lbn not in self.dirty, f"dirty block {lbn} went missing"
            return
        # Guarantee 2: never stale.  If the model says the block was
        # evicted, the device must not still return data for it... but
        # the device may only return the NEWEST value ever written.
        assert lbn in self.newest, f"read of evicted block {lbn} returned data"
        assert data == self.newest[lbn], (
            f"stale read of {lbn}: got {data}, newest {self.newest[lbn]}"
        )

    @precondition(lambda self: not self.crashed)
    @rule()
    def checkpoint(self):
        self.ssc.checkpoint_now()

    @precondition(lambda self: not self.crashed)
    @rule()
    def crash(self):
        self.ssc.crash()
        self.crashed = True

    @precondition(lambda self: self.crashed)
    @rule()
    def recover(self):
        self.ssc.recover()
        self.crashed = False
        # Clean blocks with buffered mappings may have vanished; dirty
        # blocks may have reverted from a buffered `clean` to dirty.
        # Neither changes `newest`, which is what reads are checked
        # against.  Blocks the model no longer tracks as dirty might be
        # dirty again on-device; resync so future CacheFullError
        # handling cleans them too.
        dirty_on_device, _ = self.ssc.exists(0, 10**6)
        self.dirty = {lbn for lbn in dirty_on_device if lbn in self.newest}

    # ---- invariants -----------------------------------------------------

    @invariant()
    def dirty_blocks_always_readable(self):
        if self.crashed:
            return
        # exists() must be a superset of the model's dirty set.
        reported, _ = self.ssc.exists(0, 10**6)
        missing = self.dirty - set(reported)
        assert not missing, f"exists() lost dirty blocks {missing}"


SSCMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=60, deadline=None
)
TestSSCGuarantees = SSCMachine.TestCase


class SSCRMachine(SSCMachine):
    """The same contract must hold under the SE-Merge (SSC-R) policy."""

    def __init__(self):
        super().__init__()
        geometry = FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8)
        self.ssc = SolidStateCache(
            geometry,
            config=SSCConfig(policy=EvictionPolicy.MERGE, group_commit_ops=20),
        )


SSCRMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=60, deadline=None
)
TestSSCRGuarantees = SSCRMachine.TestCase


class TestCrashMatrix:
    """Deterministic crash-point sweep: crash after every prefix of a
    mixed operation sequence, recover, and check the guarantees."""

    def build_script(self):
        script = []
        for i in range(60):
            lbn = (i * 37) % 300
            kind = i % 4
            if kind == 0:
                script.append(("dirty", lbn))
            elif kind == 1:
                script.append(("clean-write", lbn))
            elif kind == 2:
                script.append(("clean-cmd", lbn))
            else:
                script.append(("evict", lbn))
        return script

    @pytest.mark.parametrize("crash_after", [1, 5, 13, 27, 41, 59])
    def test_crash_at_prefix(self, crash_after):
        geometry = FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8)
        ssc = SolidStateCache.ssc(geometry)
        newest, dirty = {}, set()
        for index, (op, lbn) in enumerate(self.build_script()):
            if op == "dirty":
                ssc.write_dirty(lbn, ("v", index))
                newest[lbn] = ("v", index)
                dirty.add(lbn)
            elif op == "clean-write":
                ssc.write_clean(lbn, ("v", index))
                newest[lbn] = ("v", index)
                dirty.discard(lbn)
            elif op == "clean-cmd":
                ssc.clean(lbn)
                dirty.discard(lbn)
            else:
                ssc.evict(lbn)
                newest.pop(lbn, None)
                dirty.discard(lbn)
            if index == crash_after:
                break
        ssc.crash()
        ssc.recover()
        for lbn, expected in newest.items():
            try:
                data, _ = ssc.read(lbn)
            except NotPresentError:
                assert lbn not in dirty, f"dirty {lbn} lost at crash {crash_after}"
                continue
            assert data == expected
