"""Unit tests for the FAST-style hybrid FTL (the SSD's internals)."""

import random

import pytest

from repro.errors import ConfigError, InvalidAddressError
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.ftl.hybrid import HybridFTL, HybridFTLConfig


def make_ftl(planes=4, blocks=16, pages=8, **config):
    chip = FlashChip(FlashGeometry(planes=planes, blocks_per_plane=blocks,
                                   pages_per_block=pages))
    return HybridFTL(chip, HybridFTLConfig(**config))


class TestLayout:
    def test_capacity_excludes_overprovisioning(self):
        ftl = make_ftl()
        total = ftl.chip.geometry.total_blocks
        assert ftl.logical_groups == total - ftl.log_blocks_target - ftl.config.spare_blocks
        assert ftl.logical_pages == ftl.logical_groups * 8

    def test_log_fraction(self):
        ftl = make_ftl(log_fraction=0.10)
        assert ftl.log_blocks_target == int(64 * 0.10)

    def test_too_small_chip_rejected(self):
        with pytest.raises(ConfigError):
            make_ftl(planes=1, blocks=4, pages=8)

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            HybridFTLConfig(log_fraction=0.0)
        with pytest.raises(ConfigError):
            HybridFTLConfig(spare_blocks=1)


class TestReadWrite:
    def test_unwritten_reads_none(self):
        ftl = make_ftl()
        data, cost = ftl.read(0)
        assert data is None
        assert cost == pytest.approx(ftl.chip.timing.control_delay_us)

    def test_write_read_round_trip(self):
        ftl = make_ftl()
        ftl.write(10, "hello")
        data, _cost = ftl.read(10)
        assert data == "hello"

    def test_overwrite_returns_newest(self):
        ftl = make_ftl()
        for version in range(20):
            ftl.write(10, ("v", version))
        data, _ = ftl.read(10)
        assert data == ("v", 19)

    def test_out_of_range_rejected(self):
        ftl = make_ftl()
        with pytest.raises(InvalidAddressError):
            ftl.write(ftl.logical_pages, "x")
        with pytest.raises(InvalidAddressError):
            ftl.read(-1)

    def test_is_mapped(self):
        ftl = make_ftl()
        assert not ftl.is_mapped(3)
        ftl.write(3, "x")
        assert ftl.is_mapped(3)

    def test_trim_unmaps(self):
        ftl = make_ftl()
        ftl.write(3, "x")
        ftl.trim(3)
        assert not ftl.is_mapped(3)
        data, _ = ftl.read(3)
        assert data is None

    def test_dirty_flag_round_trip(self):
        ftl = make_ftl()
        ftl.write(3, "x", dirty=True)
        location = ftl.log_map.lookup(3)
        assert ftl.chip.page(location).oob.dirty
        ftl.set_page_dirty(3, False)
        assert not ftl.chip.page(location).oob.dirty


class TestGarbageCollection:
    def test_sustained_random_writes_never_corrupt(self):
        ftl = make_ftl()
        rng = random.Random(99)
        shadow = {}
        for i in range(6000):
            lpn = rng.randrange(ftl.logical_pages)
            shadow[lpn] = ("w", lpn, i)
            ftl.write(lpn, shadow[lpn])
        for lpn, expected in shadow.items():
            data, _ = ftl.read(lpn)
            assert data == expected

    def test_merges_happen_and_are_counted(self):
        ftl = make_ftl()
        rng = random.Random(4)
        for i in range(3000):
            ftl.write(rng.randrange(ftl.logical_pages), i)
        assert ftl.stats.full_merges > 0
        assert ftl.chip.total_erases() > 0
        assert ftl.stats.write_amplification() > 0

    def test_free_pool_never_exhausted(self):
        ftl = make_ftl()
        rng = random.Random(5)
        for i in range(5000):
            ftl.write(rng.randrange(ftl.logical_pages), i)
            assert ftl.free_blocks() >= 1

    def test_sequential_writes_use_switch_merges(self):
        ftl = make_ftl()
        span = ftl.pages_per_block * 8
        for _round in range(3):
            for lpn in range(span):
                ftl.write(lpn, ("s", _round, lpn))
        assert ftl.stats.switch_merges > 0
        for lpn in range(span):
            data, _ = ftl.read(lpn)
            assert data == ("s", 2, lpn)

    def test_switch_merge_cheaper_than_full(self):
        """Sequential overwrites must amplify less than random ones."""
        seq = make_ftl()
        span = seq.pages_per_block * 8
        for _round in range(4):
            for lpn in range(span):
                seq.write(lpn, 1)
        rnd = make_ftl()
        rng = random.Random(6)
        for _ in range(4 * span):
            rnd.write(rng.randrange(span), 1)
        assert seq.stats.write_amplification() < rnd.stats.write_amplification()

    def test_gc_preserves_dirty_flags(self):
        ftl = make_ftl()
        rng = random.Random(7)
        dirty_set = set()
        for i in range(3000):
            lpn = rng.randrange(ftl.logical_pages // 4)  # force overwrites
            dirty = bool(rng.getrandbits(1))
            ftl.write(lpn, i, dirty=dirty)
            if dirty:
                dirty_set.add(lpn)
            else:
                dirty_set.discard(lpn)
        for lpn in list(dirty_set)[:200]:
            pbn_offset = None
            ppn = ftl.log_map.lookup(lpn)
            if ppn is None:
                pbn = ftl.data_map.lookup(lpn // ftl.pages_per_block)
                ppn = ftl.chip.geometry.make_ppn(pbn, lpn % ftl.pages_per_block)
            assert ftl.chip.page(ppn).oob.dirty, lpn

    def test_device_memory_accounting(self):
        ftl = make_ftl()
        expected = (
            ftl.data_map.memory_bytes() + ftl.log_map.memory_bytes()
        )
        assert ftl.device_memory_bytes() == expected
        assert expected > 0
