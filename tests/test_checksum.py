"""Checksum tests: the CRC primitives, the per-page OOB payload binding,
and the write-back manager's dirty-block verification (all the places a
checksum guards data integrity)."""

import pytest

from repro.disk.model import Disk
from repro.errors import ChecksumError
from repro.flash.geometry import FlashGeometry
from repro.manager.dirty_table import DirtyBlockTable
from repro.manager.writeback import FlashTierWBManager, WriteBackConfig
from repro.ssc.device import SolidStateCache
from repro.util.checksum import crc32_of, crc32_of_pairs, crc32_of_payload


class TestCrc32Of:
    def test_deterministic(self):
        assert crc32_of(1, "a", b"x") == crc32_of(1, "a", b"x")

    def test_order_sensitive(self):
        assert crc32_of(1, 2) != crc32_of(2, 1)

    def test_type_tagged(self):
        # The int 1 and the string "1" must not collide.
        assert crc32_of(1) != crc32_of("1")

    def test_none_distinct_from_empty(self):
        assert crc32_of(None) != crc32_of("")
        assert crc32_of(None) != crc32_of(b"")

    def test_fits_32_bits(self):
        assert 0 <= crc32_of("anything", 42) < 2**32


class TestCrc32OfPairs:
    def test_deterministic(self):
        pairs = [(1, 2), (3, 4)]
        assert crc32_of_pairs(pairs) == crc32_of_pairs(pairs)

    def test_sensitive_to_values(self):
        assert crc32_of_pairs([(1, 2)]) != crc32_of_pairs([(1, 3)])

    def test_sensitive_to_order(self):
        assert crc32_of_pairs([(1, 2), (3, 4)]) != crc32_of_pairs([(3, 4), (1, 2)])

    def test_empty(self):
        assert crc32_of_pairs([]) == 0


class TestCrc32OfPayload:
    def test_deterministic(self):
        assert crc32_of_payload(5, ("data", 1)) == crc32_of_payload(5, ("data", 1))

    def test_binds_lbn_to_payload(self):
        # The same payload under a different logical address must differ,
        # so a misdirected write is detectable at recovery.
        assert crc32_of_payload(5, "x") != crc32_of_payload(6, "x")

    def test_sensitive_to_payload(self):
        assert crc32_of_payload(5, "x") != crc32_of_payload(5, "y")

    def test_none_lbn_supported(self):
        assert 0 <= crc32_of_payload(None, "x") < 2**32


class TestOOBChecksumStamping:
    """Every programmed page carries a verifiable payload checksum."""

    def test_program_stamps_checksum(self, small_geometry):
        ssc = SolidStateCache.ssc(small_geometry)
        ssc.write_dirty(7, ("payload", 7))
        location = ssc.engine.current_location(7)
        page = ssc.chip.page(location[2])
        assert page.oob.checksum == crc32_of_payload(7, ("payload", 7))

    def test_corruption_breaks_checksum(self, small_geometry):
        ssc = SolidStateCache.ssc(small_geometry)
        ssc.write_dirty(7, ("payload", 7))
        location = ssc.engine.current_location(7)
        page = ssc.chip.page(location[2])
        page.data = ("CORRUPT",)
        assert page.oob.checksum != crc32_of_payload(page.oob.lbn, page.data)


def make_manager(verify=True):
    ssc = SolidStateCache.ssc(
        FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8)
    )
    disk = Disk(10_000)
    manager = FlashTierWBManager(
        ssc, disk, WriteBackConfig(verify_checksums=verify)
    )
    return manager, ssc, disk


class TestDirtyTableChecksums:
    def test_matching_data_passes(self):
        table = DirtyBlockTable()
        table.add(5, ("payload", 1))
        assert table.checksum_matches(5, ("payload", 1))

    def test_mismatch_detected(self):
        table = DirtyBlockTable()
        table.add(5, ("payload", 1))
        assert not table.checksum_matches(5, ("payload", 2))

    def test_untracked_block_passes(self):
        table = DirtyBlockTable()
        assert table.checksum_matches(99, "anything")

    def test_disabled_checksums_always_pass(self):
        table = DirtyBlockTable(with_checksums=False)
        table.add(5, "a")
        assert table.checksum_matches(5, "b")


class TestWritebackVerification:
    def test_clean_path_verifies_ok(self):
        manager, _ssc, disk = make_manager(verify=True)
        manager.write(5, ("good", 5))
        manager.flush_dirty()
        assert disk.peek(5) == ("good", 5)

    def test_corruption_blocks_writeback(self):
        manager, ssc, disk = make_manager(verify=True)
        manager.write(5, ("good", 5))
        # Simulate device-side corruption of the cached page.
        location = ssc.engine.current_location(5)
        ssc.chip.page(location[2]).data = ("CORRUPT",)
        with pytest.raises(ChecksumError) as exc:
            manager.flush_dirty()
        assert exc.value.lbn == 5
        assert disk.peek(5) is None  # corruption never reached disk

    def test_verification_off_by_default(self):
        manager, ssc, disk = make_manager(verify=False)
        manager.write(5, ("good", 5))
        location = ssc.engine.current_location(5)
        ssc.chip.page(location[2]).data = ("CORRUPT",)
        manager.flush_dirty()  # no verification: propagates silently
        assert disk.peek(5) == ("CORRUPT",)
