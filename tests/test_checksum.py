"""Unit tests for repro.util.checksum."""

from repro.util.checksum import crc32_of, crc32_of_pairs


class TestCrc32Of:
    def test_deterministic(self):
        assert crc32_of(1, "a", b"x") == crc32_of(1, "a", b"x")

    def test_order_sensitive(self):
        assert crc32_of(1, 2) != crc32_of(2, 1)

    def test_type_tagged(self):
        # The int 1 and the string "1" must not collide.
        assert crc32_of(1) != crc32_of("1")

    def test_none_distinct_from_empty(self):
        assert crc32_of(None) != crc32_of("")
        assert crc32_of(None) != crc32_of(b"")

    def test_fits_32_bits(self):
        assert 0 <= crc32_of("anything", 42) < 2**32


class TestCrc32OfPairs:
    def test_deterministic(self):
        pairs = [(1, 2), (3, 4)]
        assert crc32_of_pairs(pairs) == crc32_of_pairs(pairs)

    def test_sensitive_to_values(self):
        assert crc32_of_pairs([(1, 2)]) != crc32_of_pairs([(1, 3)])

    def test_sensitive_to_order(self):
        assert crc32_of_pairs([(1, 2), (3, 4)]) != crc32_of_pairs([(3, 4), (1, 2)])

    def test_empty(self):
        assert crc32_of_pairs([]) == 0
