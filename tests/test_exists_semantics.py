"""Focused tests for exists() across the block/page mapping split.

The dirty-block report must stay exact while blocks migrate between the
page-mapped log region and block-mapped data blocks (merges), get
cleaned, or get evicted — it is what write-back recovery rebuilds the
dirty table from, so an error here silently loses dirty data on disk.
"""

import random

import pytest

from repro.flash.geometry import FlashGeometry
from repro.ssc.device import SolidStateCache


@pytest.fixture
def ssc():
    return SolidStateCache.ssc(
        FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8)
    )


class TestExistsExactness:
    def test_exists_matches_model_through_merges(self, ssc):
        """Force heavy merging and check exists() against a shadow dirty
        set after every phase."""
        rng = random.Random(1)
        dirty = set()
        span = 150
        # Phase 1: mixed dirty/clean writes (log-resident).
        for i in range(500):
            lbn = rng.randrange(span)
            if rng.random() < 0.3:
                ssc.write_dirty(lbn, i)
                dirty.add(lbn)
            else:
                ssc.write_clean(lbn, i)
                dirty.discard(lbn)
        reported, _ = ssc.exists(0, span)
        assert set(reported) == dirty

        # Phase 2: churn forces merges into block-mapped data blocks.
        for i in range(1500):
            lbn = span + rng.randrange(3000)
            ssc.write_clean(lbn, i)
        reported, _ = ssc.exists(0, span)
        assert set(reported) == dirty

        # Phase 3: clean half, evict a quarter.
        for lbn in list(dirty)[: len(dirty) // 2]:
            ssc.clean(lbn)
            dirty.discard(lbn)
        for lbn in list(dirty)[: len(dirty) // 4]:
            ssc.evict(lbn)
            dirty.discard(lbn)
        reported, _ = ssc.exists(0, span)
        assert set(reported) == dirty

    def test_exists_matches_exists_detailed(self, ssc):
        rng = random.Random(2)
        for i in range(400):
            lbn = rng.randrange(150)
            if rng.random() < 0.3:
                ssc.write_dirty(lbn, i)
            else:
                ssc.write_clean(lbn, i)
        dirty, _ = ssc.exists(0, 1000)
        detailed, _ = ssc.exists_detailed(0, 1000)
        dirty_from_detailed = [lbn for lbn, is_dirty, _seq in detailed if is_dirty]
        assert dirty == dirty_from_detailed

    def test_exists_survives_crash_recovery_cycle(self, ssc):
        rng = random.Random(3)
        dirty = set()
        for i in range(500):
            lbn = rng.randrange(150)
            if rng.random() < 0.3:
                ssc.write_dirty(lbn, i)
                dirty.add(lbn)
            else:
                ssc.write_clean(lbn, i)
                dirty.discard(lbn)
        ssc.crash()
        ssc.recover()
        reported, _ = ssc.exists(0, 1000)
        # Dirty blocks can never be lost; async cleans may revert, so
        # the report may be a superset of the model but never a subset.
        assert dirty <= set(reported)
