"""Unit and property tests for the sparse hash map (paper §4.1)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.ftl.mapping import ENTRY_BYTES
from repro.ssc.sparse_map import SparseHashMap


class TestBasics:
    def test_empty_lookup(self):
        table = SparseHashMap()
        assert table.lookup(42) is None
        assert 42 not in table
        assert len(table) == 0

    def test_insert_lookup(self):
        table = SparseHashMap()
        assert table.insert(42, 7) is None
        assert table.lookup(42) == 7
        assert 42 in table
        assert len(table) == 1

    def test_insert_replace_returns_previous(self):
        table = SparseHashMap()
        table.insert(42, 7)
        assert table.insert(42, 8) == 7
        assert table.lookup(42) == 8
        assert len(table) == 1

    def test_remove(self):
        table = SparseHashMap()
        table.insert(42, 7)
        assert table.remove(42) == 7
        assert table.lookup(42) is None
        assert table.remove(42) is None
        assert len(table) == 0

    def test_sparse_keys(self):
        """Keys spanning a huge sparse space (the SSC's whole point)."""
        table = SparseHashMap()
        keys = [0, 10**6, 10**12, 10**15 + 3]
        for index, key in enumerate(keys):
            table.insert(key, index)
        for index, key in enumerate(keys):
            assert table.lookup(key) == index

    def test_items_and_keys(self):
        table = SparseHashMap()
        expected = {i * 1000: i for i in range(50)}
        for key, value in expected.items():
            table.insert(key, value)
        assert dict(table.items()) == expected
        assert set(table.keys()) == set(expected)

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            SparseHashMap(group_size=0)
        with pytest.raises(ConfigError):
            SparseHashMap(group_size=65)
        with pytest.raises(ConfigError):
            SparseHashMap(max_load=1.0)


class TestGrowth:
    def test_grows_past_initial_capacity(self):
        table = SparseHashMap(initial_buckets=64)
        for key in range(1000):
            table.insert(key, key * 2)
        assert len(table) == 1000
        assert table.buckets >= 1000
        for key in range(1000):
            assert table.lookup(key) == key * 2

    def test_load_factor_respected(self):
        table = SparseHashMap(initial_buckets=64, max_load=0.5)
        for key in range(100):
            table.insert(key, key)
        assert len(table) / table.buckets <= 0.5


class TestDeletionRepair:
    def test_interleaved_insert_remove(self):
        """Heavy insert/remove churn (silent eviction's access pattern)."""
        table = SparseHashMap(initial_buckets=64)
        rng = random.Random(3)
        shadow = {}
        for step in range(20000):
            key = rng.randrange(500)
            if rng.random() < 0.5:
                expected = shadow.get(key)
                assert table.insert(key, step) == expected
                shadow[key] = step
            else:
                assert table.remove(key) == shadow.pop(key, None)
        assert len(table) == len(shadow)
        for key, value in shadow.items():
            assert table.lookup(key) == value

    def test_remove_then_lookup_collision_chain(self):
        """Entries behind a removed bucket must stay reachable."""
        table = SparseHashMap(initial_buckets=64, max_load=0.9)
        # Insert enough keys to force collision runs.
        for key in range(50):
            table.insert(key, key)
        for key in range(0, 50, 2):
            table.remove(key)
        for key in range(1, 50, 2):
            assert table.lookup(key) == key


class TestProbeStats:
    def test_mean_probes_small(self):
        table = SparseHashMap()
        for key in range(5000):
            table.insert(key * 7919, key)
        table.total_probes = table.total_lookups = 0
        for key in range(5000):
            table.lookup(key * 7919)
        # Paper: "typically there are no more than 4-5 probes per lookup".
        assert table.mean_probes() < 5.0


class TestMemoryAccounting:
    def test_grows_with_occupancy_not_capacity(self):
        """The defining contrast with the dense SSD tables (§4.1): "the
        size of the sparse hash map grows with the actual number of
        entries, unlike a linear table indexed by an address"."""
        table = SparseHashMap(initial_buckets=1 << 16)
        empty = table.memory_bytes()
        for key in range(100):
            table.insert(key * 997, key)
        assert table.memory_bytes() > empty
        assert table.memory_bytes() <= 100 * (ENTRY_BYTES + 12) + empty

    def test_per_entry_overhead_near_paper_figure(self):
        """Bitmap + pointer overhead should be a few bytes per entry
        (the paper quotes ~8.4 B/entry including the 8 B value)."""
        table = SparseHashMap()
        for key in range(10000):
            table.insert(key * 31, key)
        overhead = table.memory_bytes() - len(table) * ENTRY_BYTES
        per_entry = overhead / len(table)
        assert 0.0 < per_entry < 13.0

    def test_allocated_groups_counted(self):
        table = SparseHashMap(initial_buckets=1024)
        assert table.allocated_groups == 0
        table.insert(1, 1)
        assert table.allocated_groups == 1


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove"]),
            st.integers(min_value=0, max_value=200),
            st.integers(min_value=0, max_value=10**9),
        ),
        max_size=400,
    )
)
def test_property_behaves_like_dict(operations):
    """The sparse map must be observationally equal to a Python dict."""
    table = SparseHashMap(initial_buckets=64)
    shadow = {}
    for action, key, value in operations:
        if action == "insert":
            assert table.insert(key, value) == shadow.get(key)
            shadow[key] = value
        else:
            assert table.remove(key) == shadow.pop(key, None)
    assert len(table) == len(shadow)
    assert dict(table.items()) == shadow
    for key, value in shadow.items():
        assert table.lookup(key) == value
