"""Unit tests for pages and erase blocks (NAND constraints)."""

import pytest

from repro.errors import WriteToNonErasedPageError
from repro.flash.block import BlockKind, EraseBlock
from repro.flash.page import OOBData, Page, PageState


class TestPage:
    def test_fresh_page_is_free(self):
        page = Page()
        assert page.state is PageState.FREE
        assert page.data is None
        assert page.oob is None

    def test_reset(self):
        page = Page()
        page.state = PageState.VALID
        page.data = "x"
        page.oob = OOBData(lbn=1)
        page.reset()
        assert page.state is PageState.FREE
        assert page.data is None
        assert page.oob is None


class TestProgram:
    def make_block(self, pages=8):
        return EraseBlock(pbn=0, pages_per_block=pages)

    def test_sequential_program(self):
        block = self.make_block()
        for offset in range(8):
            block.program(offset, ("d", offset), OOBData(lbn=offset))
        assert block.is_full
        assert block.valid_count == 8

    def test_program_below_write_pointer_rejected(self):
        block = self.make_block()
        block.program(0, "a", OOBData(lbn=0))
        with pytest.raises(WriteToNonErasedPageError):
            block.program(0, "b", OOBData(lbn=0))

    def test_skip_forward_allowed_leaves_holes(self):
        block = self.make_block()
        block.program(0, "a", OOBData(lbn=0))
        block.program(3, "b", OOBData(lbn=3))
        assert block.write_pointer == 4
        assert block.pages[1].state is PageState.FREE
        assert block.pages[2].state is PageState.FREE
        assert block.valid_count == 2

    def test_skip_breaks_sequentiality(self):
        block = self.make_block()
        block.program(0, "a", OOBData(lbn=0))
        block.program(2, "b", OOBData(lbn=2))
        assert not block.sequential

    def test_free_pages(self):
        block = self.make_block()
        assert block.free_pages == 8
        block.program(0, "a", OOBData(lbn=0))
        assert block.free_pages == 7


class TestSequentialDetection:
    def test_sequential_run_detected(self):
        block = EraseBlock(0, 4)
        for offset in range(4):
            block.program(offset, "d", OOBData(lbn=100 + offset))
        assert block.sequential
        assert block.first_lbn == 100

    def test_non_sequential_lbns(self):
        block = EraseBlock(0, 4)
        block.program(0, "d", OOBData(lbn=100))
        block.program(1, "d", OOBData(lbn=50))
        assert not block.sequential

    def test_missing_lbn_breaks_sequentiality(self):
        block = EraseBlock(0, 4)
        block.program(0, "d", OOBData(lbn=None))
        assert not block.sequential


class TestInvalidateAndDirty:
    def test_invalidate_decrements_counts(self):
        block = EraseBlock(0, 4)
        block.program(0, "d", OOBData(lbn=0, dirty=True))
        assert block.dirty_count == 1
        block.invalidate(0)
        assert block.valid_count == 0
        assert block.dirty_count == 0
        assert block.pages[0].state is PageState.INVALID

    def test_invalidate_idempotent(self):
        block = EraseBlock(0, 4)
        block.program(0, "d", OOBData(lbn=0))
        block.invalidate(0)
        block.invalidate(0)
        assert block.valid_count == 0

    def test_mark_clean_and_dirty(self):
        block = EraseBlock(0, 4)
        block.program(0, "d", OOBData(lbn=0, dirty=True))
        block.mark_clean(0)
        assert block.dirty_count == 0
        assert not block.pages[0].oob.dirty
        block.mark_dirty(0)
        assert block.dirty_count == 1

    def test_mark_clean_idempotent(self):
        block = EraseBlock(0, 4)
        block.program(0, "d", OOBData(lbn=0, dirty=False))
        block.mark_clean(0)
        assert block.dirty_count == 0

    def test_utilization(self):
        block = EraseBlock(0, 4)
        assert block.utilization() == 0.0
        block.program(0, "d", OOBData(lbn=0))
        block.program(1, "d", OOBData(lbn=1))
        assert block.utilization() == pytest.approx(0.5)

    def test_valid_offsets(self):
        block = EraseBlock(0, 4)
        block.program(0, "d", OOBData(lbn=0))
        block.program(1, "d", OOBData(lbn=1))
        block.invalidate(0)
        assert block.valid_offsets() == [1]


class TestErase:
    def test_erase_resets_everything(self):
        block = EraseBlock(0, 4)
        block.kind = BlockKind.LOG
        for offset in range(4):
            block.program(offset, "d", OOBData(lbn=offset, dirty=True))
        block.erase()
        assert block.erase_count == 1
        assert block.write_pointer == 0
        assert block.valid_count == 0
        assert block.dirty_count == 0
        assert block.kind is BlockKind.FREE
        assert block.sequential
        assert all(page.state is PageState.FREE for page in block.pages)

    def test_wear_accumulates(self):
        block = EraseBlock(0, 4)
        for _ in range(5):
            block.erase()
        assert block.erase_count == 5

    def test_programmable_after_erase(self):
        block = EraseBlock(0, 4)
        block.program(0, "a", OOBData(lbn=0))
        block.erase()
        block.program(0, "b", OOBData(lbn=1))
        assert block.pages[0].data == "b"
