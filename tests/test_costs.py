"""Cost-model sanity: simulated latencies must decompose correctly.

These tests pin the timing semantics the IOPS results rest on — if a
path forgets to charge (or double-charges) flash work, every figure
shifts silently.
"""

import pytest

from repro.disk.model import Disk
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import TimingModel
from repro.manager.writethrough import FlashTierWTManager
from repro.ssc.device import SolidStateCache, SSCConfig


@pytest.fixture
def geometry():
    return FlashGeometry(planes=4, blocks_per_plane=32, pages_per_block=16)


@pytest.fixture
def timing():
    return TimingModel()


class TestDeviceCosts:
    def test_read_hit_costs_one_page_read(self, geometry, timing):
        ssc = SolidStateCache.ssc(geometry)
        ssc.write_clean(5, "x")
        _data, cost = ssc.read(5)
        assert cost == pytest.approx(timing.read_cost())

    def test_first_write_clean_is_buffered_and_cheap(self, geometry, timing):
        ssc = SolidStateCache.ssc(geometry)
        cost = ssc.write_clean(5, "x")
        # One page program plus (at most) the first log-block setup; no
        # synchronous log flush for a fresh address.
        assert cost >= timing.write_cost()
        assert ssc.oplog.sync_flushes == 0

    def test_write_dirty_charges_log_flush(self, geometry, timing):
        ssc = SolidStateCache.ssc(geometry)
        dirty_cost = ssc.write_dirty(6, "x")
        # data program + >=1 log page program.
        assert dirty_cost >= 2 * timing.write_cost()

    def test_nvram_write_dirty_drops_flush_cost(self, geometry, timing):
        flash = SolidStateCache.ssc(geometry)
        nvram = SolidStateCache(geometry, config=SSCConfig(nvram=True))
        assert nvram.write_dirty(6, "x") < flash.write_dirty(6, "x")

    def test_exists_and_clean_cost_control_delay_only(self, geometry, timing):
        ssc = SolidStateCache.ssc(geometry)
        ssc.write_dirty(5, "x")
        _dirty, cost = ssc.exists(0, 10)
        assert cost == pytest.approx(timing.control_delay_us)

    def test_chip_busy_time_tracks_all_operations(self, geometry):
        ssc = SolidStateCache.ssc(geometry)
        for i in range(200):
            ssc.write_clean(i, i)
        stats = ssc.chip.stats
        expected = (
            stats.page_reads * ssc.chip.timing.read_cost()
            + stats.page_writes * ssc.chip.timing.write_cost()
            + stats.block_erases * ssc.chip.timing.erase_cost()
            + stats.oob_scans * ssc.chip.timing.oob_read_cost()
        )
        assert stats.busy_us == pytest.approx(expected)


class TestManagerCosts:
    def test_miss_charges_disk_plus_fill(self, geometry, timing):
        ssc = SolidStateCache.ssc(geometry)
        disk = Disk(10_000)
        manager = FlashTierWTManager(ssc, disk)
        disk.write(77, "cold")
        _data, cost = manager.read(77)
        # Disk random access dominates; the SSC fill adds flash time.
        assert cost > disk.timing.random_cost()

    def test_hit_avoids_disk_entirely(self, geometry):
        ssc = SolidStateCache.ssc(geometry)
        disk = Disk(10_000)
        manager = FlashTierWTManager(ssc, disk)
        manager.write(5, "x")
        reads_before = disk.stats.reads
        _data, cost = manager.read(5)
        assert disk.stats.reads == reads_before
        assert cost < disk.timing.random_cost()

    def test_wt_write_pays_disk_and_flash(self, geometry):
        ssc = SolidStateCache.ssc(geometry)
        disk = Disk(10_000)
        manager = FlashTierWTManager(ssc, disk)
        cost = manager.write(9, "x")
        assert cost > disk.timing.random_cost()


class TestCustomTiming:
    def test_timing_parameters_propagate(self, geometry):
        slow = TimingModel(page_read_us=650.0, page_write_us=850.0)
        fast = TimingModel()
        slow_ssc = SolidStateCache(geometry, timing=slow)
        fast_ssc = SolidStateCache(geometry, timing=fast)
        slow_cost = slow_ssc.write_clean(1, "x")
        fast_cost = fast_ssc.write_clean(1, "x")
        assert slow_cost > 5 * fast_cost
