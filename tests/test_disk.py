"""Unit tests for the disk model."""

import pytest

from repro.disk.model import Disk, DiskTimingModel
from repro.errors import ConfigError, InvalidAddressError


class TestBasics:
    def test_unwritten_reads_none(self):
        disk = Disk(100)
        data, _cost = disk.read(5)
        assert data is None

    def test_write_read_round_trip(self):
        disk = Disk(100)
        disk.write(7, "payload")
        data, _cost = disk.read(7)
        assert data == "payload"

    def test_overwrite(self):
        disk = Disk(100)
        disk.write(7, "old")
        disk.write(7, "new")
        assert disk.peek(7) == "new"

    def test_capacity_enforced(self):
        disk = Disk(10)
        with pytest.raises(InvalidAddressError):
            disk.read(10)
        with pytest.raises(InvalidAddressError):
            disk.write(-1, "x")

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            Disk(0)

    def test_occupied_blocks(self):
        disk = Disk(100)
        disk.write(1, "a")
        disk.write(2, "b")
        disk.write(1, "c")
        assert disk.occupied_blocks() == 2


class TestTiming:
    def test_random_access_pays_seek(self):
        disk = Disk(1000)
        _, cost = disk.read(500)
        assert cost == pytest.approx(disk.timing.random_cost())

    def test_sequential_run_is_cheap(self):
        disk = Disk(1000)
        disk.write(100, "a")  # position the head
        cost = disk.write(101, "b")
        assert cost == pytest.approx(disk.timing.sequential_cost())
        assert disk.stats.sequential_hits == 1

    def test_backward_access_is_random(self):
        disk = Disk(1000)
        disk.write(100, "a")
        cost = disk.write(99, "b")
        assert cost == pytest.approx(disk.timing.random_cost())

    def test_stats_accumulate(self):
        disk = Disk(1000)
        disk.write(1, "a")
        disk.read(1)
        assert disk.stats.writes == 1
        assert disk.stats.reads == 1
        assert disk.stats.busy_us > 0

    def test_custom_timing(self):
        timing = DiskTimingModel(seek_us=10, rotation_us=5, transfer_us=1)
        disk = Disk(10, timing=timing)
        _, cost = disk.read(3)
        assert cost == pytest.approx(16)
