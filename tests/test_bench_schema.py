"""Golden-file tests pinning the benchmark JSON schemas.

Two external contracts live here:

* ``ReplayStats.to_dict()`` — the ``sim`` block every ``BENCH_*.json``
  entry embeds.  The golden file pins keys, nesting, *and values* for a
  fixed-seed replay: the simulation is deterministic, so any value
  drift means device semantics changed (and must also show up in the
  differential layer); any key change breaks downstream report readers
  and requires a schema-version bump.
* The ``repro bench`` report — schema-versioned, validated by
  :func:`repro.perf.wallclock.validate_report`, and compared across
  commits by the CI perf gate.  Wall-clock fields are
  machine-dependent, so the CLI test checks structure, not values.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.config import CacheMode, SystemConfig, SystemKind
from repro.core.flashtier import build_system
from repro.perf.wallclock import (
    BENCH_FILENAME,
    SCHEMA_VERSION,
    compare_reports,
    run_bench,
    validate_report,
)
from repro.traces.synthetic import PROFILES, generate_trace

GOLDEN_DIR = Path(__file__).parent / "golden"
REPO_ROOT = Path(__file__).resolve().parent.parent


def golden_replay_stats():
    system = build_system(
        SystemConfig(
            kind=SystemKind.SSC_R,
            mode=CacheMode.WRITE_BACK,
            cache_blocks=512,
            disk_blocks=20_000,
        )
    )
    records = generate_trace(PROFILES["homes"].scaled(0.01), seed=42).records
    return system.replay(records, warmup_fraction=0.25, queue_depth=4)


class TestReplayStatsGolden:
    def test_to_dict_matches_golden_file(self):
        golden = json.loads(
            (GOLDEN_DIR / "replay_stats_ssc_r_wb_qd4.json").read_text()
        )
        current = golden_replay_stats().to_dict()
        # Compare via JSON round-trip so tuples/ints normalize exactly
        # as they would inside a written BENCH file.
        assert json.loads(json.dumps(current)) == golden

    def test_key_order_is_stable(self):
        golden = json.loads(
            (GOLDEN_DIR / "replay_stats_ssc_r_wb_qd4.json").read_text()
        )
        current = golden_replay_stats().to_dict()
        assert list(current) == list(golden)
        for dist in ("latency", "service", "queue_wait"):
            assert list(current[dist]) == list(golden[dist])

    def test_json_serializable(self):
        json.dumps(golden_replay_stats().to_dict())


class TestBenchReportSchema:
    @pytest.fixture(scope="class")
    def report(self):
        # 0.05 is the committed-baseline scale; smaller homes traces
        # leave the SSC too few blocks for its log pool.
        return run_bench(
            workloads=("homes",), queue_depths=(1,), scale=0.05, seed=1
        )

    def test_validates(self, report):
        validate_report(report)
        assert report["schema_version"] == SCHEMA_VERSION

    def test_scenarios_cover_matrix(self, report):
        keys = {
            (e["workload"], e["system"], e["mode"], e["queue_depth"])
            for e in report["results"]
        }
        assert keys == {
            ("homes", "native", "wb", 1),
            ("homes", "ssc", "wt", 1),
            ("homes", "ssc-r", "wb", 1),
        }

    def test_self_comparison_is_clean(self, report):
        failures, warnings = compare_reports(report, report)
        assert failures == []
        assert warnings == []

    def test_validation_rejects_damage(self, report):
        broken = json.loads(json.dumps(report))
        broken["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            validate_report(broken)
        broken = json.loads(json.dumps(report))
        del broken["results"][0]["sim"]["iops"]
        with pytest.raises(ValueError, match="iops"):
            validate_report(broken)
        broken = json.loads(json.dumps(report))
        broken["results"].append(broken["results"][0])
        with pytest.raises(ValueError, match="duplicate"):
            validate_report(broken)


class TestBenchCli:
    def test_bench_emits_valid_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--quick", "--scale", "0.02",
            "--queue-depths", "1", "-o", str(out),
        ]) == 0
        capsys.readouterr()
        report = json.loads(out.read_text())
        validate_report(report)

    def test_bench_compare_gate_passes_against_self(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--quick", "--scale", "0.02",
            "--queue-depths", "1", "-o", str(out),
        ]) == 0
        assert main([
            "bench", "--quick", "--scale", "0.02",
            "--queue-depths", "1", "--compare", str(out),
            "--max-regress", "0.99",
        ]) == 0
        capsys.readouterr()


class TestCommittedBaseline:
    def test_repo_baseline_is_valid(self):
        baseline = json.loads((REPO_ROOT / BENCH_FILENAME).read_text())
        validate_report(baseline)
        assert baseline["schema_version"] == SCHEMA_VERSION
