"""Model-based tests: SparseHashMap vs a plain dict.

The sparse hash map is the SSC's hottest data structure — every read,
write and eviction probes it — which makes it the prime target for
optimization and therefore for silent corruption.  These tests pin its
observable behaviour to the obviously-correct model (a ``dict``) under
randomized operation sequences, with dedicated coverage for the two
hardest regions:

* tombstone-free deletion (``_rehash_cluster_after``), including runs
  that wrap around the table boundary, and
* the probe-length invariant behind the paper's "typically no more than
  4-5 probes" claim (we assert a looser ceiling of 8 at ``max_load``).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.ssc.sparse_map import SparseHashMap, _hash_key

# Small key pools force collisions and long probe runs; mixing in huge
# sparse keys exercises the 64-bit hash path.
_keys = st.one_of(
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0, max_value=10**15),
)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), _keys, st.integers(0, 2**32)),
        st.tuples(st.just("remove"), _keys, st.just(0)),
        st.tuples(st.just("lookup"), _keys, st.just(0)),
    ),
    max_size=200,
)


def _assert_matches_model(table: SparseHashMap, model: dict) -> None:
    assert len(table) == len(model)
    assert dict(table.items()) == model
    for key, value in model.items():
        assert table.lookup(key) == value
        assert key in table


class TestAgainstDictModel:
    @given(ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_random_sequences(self, ops):
        # A tiny initial table guarantees several doublings per run.
        table = SparseHashMap(initial_buckets=8, group_size=8)
        model = {}
        for op, key, value in ops:
            if op == "insert":
                assert table.insert(key, value) == model.get(key)
                model[key] = value
            elif op == "remove":
                assert table.remove(key) == model.pop(key, None)
            else:
                assert table.lookup(key) == model.get(key)
        _assert_matches_model(table, model)

    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=10**12), min_size=1, unique=True
        ),
        group_size=st.sampled_from([1, 4, 8, 32, 64]),
    )
    @settings(max_examples=100, deadline=None)
    def test_insert_all_remove_all(self, keys, group_size):
        table = SparseHashMap(
            initial_buckets=max(8, group_size), group_size=group_size
        )
        model = {}
        for index, key in enumerate(keys):
            table.insert(key, index)
            model[key] = index
        _assert_matches_model(table, model)
        for key in keys:
            assert table.remove(key) == model.pop(key)
            _assert_matches_model(table, model)
        assert len(table) == 0

    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=50, deadline=None)
    def test_grow_preserves_contents(self, seed):
        rng = random.Random(seed)
        table = SparseHashMap(initial_buckets=8, group_size=8, max_load=0.5)
        model = {}
        buckets_seen = {table.buckets}
        for _ in range(300):
            key = rng.randrange(10**9)
            value = rng.randrange(10**9)
            table.insert(key, value)
            model[key] = value
            buckets_seen.add(table.buckets)
        assert len(buckets_seen) > 1, "table never grew"
        _assert_matches_model(table, model)


class TestBoundaryWrap:
    """Deletion runs that wrap the table boundary."""

    @staticmethod
    def _keys_hashing_to(table: SparseHashMap, wanted_buckets, limit=200_000):
        """Find distinct keys whose home bucket is in ``wanted_buckets``."""
        mask = table.buckets - 1
        found = {}
        for key in range(limit):
            bucket = _hash_key(key) & mask
            if bucket in wanted_buckets and bucket not in found:
                found[bucket] = key
            if len(found) == len(wanted_buckets):
                break
        assert len(found) == len(wanted_buckets), "key search exhausted"
        return found

    def test_cluster_wraps_table_end(self):
        table = SparseHashMap(initial_buckets=64, group_size=8, max_load=0.9)
        last = table.buckets - 1
        # Build an occupied run ... 62, 63, 0, 1 ... by homing one key at
        # each of the last two buckets and then forcing two collisions
        # onto bucket 63 (they overflow past the wrap into buckets 0, 1).
        homes = self._keys_hashing_to(table, {last - 1, last})
        collisions = []
        mask = table.buckets - 1
        key = max(homes.values()) + 1
        while len(collisions) < 2:
            if (_hash_key(key) & mask) == last:
                collisions.append(key)
            key += 1
        model = {}
        for value, insert_key in enumerate(
            [homes[last - 1], homes[last], *collisions]
        ):
            table.insert(insert_key, value)
            model[insert_key] = value
        # Deleting the entry AT the boundary forces _rehash_cluster_after
        # to collect a displaced run that wraps from 63 to 0.
        assert table.remove(homes[last]) == model.pop(homes[last])
        _assert_matches_model(table, model)
        # The wrapped entries must still be reachable from their homes.
        for insert_key in collisions:
            assert table.lookup(insert_key) == model[insert_key]

    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=50, deadline=None)
    def test_dense_small_table_churn(self, seed):
        # A nearly-full tiny table makes wrap-around runs routine; churn
        # insert/remove at high load and re-verify against the model.
        rng = random.Random(seed)
        table = SparseHashMap(initial_buckets=16, group_size=16, max_load=0.9)
        model = {}
        universe = list(range(48))
        for _ in range(400):
            key = rng.choice(universe)
            if rng.random() < 0.6:
                value = rng.randrange(1000)
                assert table.insert(key, value) == model.get(key)
                model[key] = value
            else:
                assert table.remove(key) == model.pop(key, None)
        _assert_matches_model(table, model)


class TestProbeInvariant:
    def test_mean_probes_bounded_at_max_load(self):
        # Fill to the growth threshold (the worst sustained load the map
        # ever serves) and measure the probe statistics over a full
        # lookup sweep: present and absent keys alike.
        table = SparseHashMap(initial_buckets=1024, max_load=0.75)
        rng = random.Random(42)
        keys = rng.sample(range(10**12), 6 * 1024)
        for key in keys:
            if (len(table) + 1) / table.buckets > table.max_load - 1e-9:
                break
            table.insert(key, key & 0xFFFF)
        assert len(table) / table.buckets > 0.70, "table not near max_load"

        table.total_probes = 0
        table.total_lookups = 0
        for key in keys[: len(table)]:
            table.lookup(key)
        for key in rng.sample(range(10**12, 2 * 10**12), 2048):
            table.lookup(key)
        assert table.mean_probes() <= 8.0
        # And the paper's own claim holds for present keys on average.
        assert table.total_lookups > 0
