"""Unit tests for SSC checkpoints."""


from repro.flash.timing import TimingModel
from repro.ssc.checkpoint import (
    BLOCK_ENTRY_BYTES,
    Checkpoint,
    CheckpointStore,
    HEADER_BYTES,
    PAGE_ENTRY_BYTES,
)


def make_checkpoint(seq=10, pages=3, blocks=2):
    return Checkpoint(
        seq=seq,
        page_entries=[(i, i + 100, bool(i % 2)) for i in range(pages)],
        block_entries=[(i, i + 50, 0b101, 0b111) for i in range(blocks)],
    )


class TestCheckpoint:
    def test_checksum_computed_on_creation(self):
        checkpoint = make_checkpoint()
        assert checkpoint.checksum != 0
        assert checkpoint.is_intact()

    def test_tamper_detected(self):
        checkpoint = make_checkpoint()
        checkpoint.page_entries.append((99, 999, False))
        assert not checkpoint.is_intact()

    def test_bitmap_tamper_detected(self):
        checkpoint = make_checkpoint()
        group, pbn, dirty, valid = checkpoint.block_entries[0]
        checkpoint.block_entries[0] = (group, pbn, dirty ^ 1, valid)
        assert not checkpoint.is_intact()

    def test_size_formula(self):
        checkpoint = make_checkpoint(pages=3, blocks=2)
        assert checkpoint.size_bytes() == (
            HEADER_BYTES + 3 * PAGE_ENTRY_BYTES + 2 * BLOCK_ENTRY_BYTES
        )


class TestCheckpointStore:
    def make_store(self):
        return CheckpointStore(TimingModel())

    def test_empty_store(self):
        assert self.make_store().latest() is None

    def test_write_and_read_back(self):
        store = self.make_store()
        checkpoint = make_checkpoint(seq=5)
        cost = store.write(checkpoint)
        assert cost > 0
        assert store.latest() is checkpoint

    def test_alternating_slots_keep_previous(self):
        store = self.make_store()
        first = make_checkpoint(seq=5)
        second = make_checkpoint(seq=9)
        store.write(first)
        store.write(second)
        assert store.latest() is second
        # Corrupt the newest: the store must fall back to the older one.
        # In-place entry mutation must drop the memoized entry CRC (the
        # contract every fault injector follows).
        second.page_entries.append((1, 2, True))
        second.invalidate_checksum_memo()
        assert store.latest() is first

    def test_torn_checksum_detected_without_memo_invalidation(self):
        # The torn-write path flips only the STORED checksum field; the
        # memoized entry CRC stays valid and the mismatch is detected
        # with no invalidation call.
        store = self.make_store()
        checkpoint = make_checkpoint(seq=5)
        store.write(checkpoint)
        assert store.latest() is checkpoint
        checkpoint.checksum ^= 0x1
        assert store.latest() is None

    def test_latest_picks_highest_seq(self):
        store = self.make_store()
        store.write(make_checkpoint(seq=9))
        store.write(make_checkpoint(seq=5))
        assert store.latest().seq == 9

    def test_read_cost_scales_with_size(self):
        store = self.make_store()
        small = make_checkpoint(pages=10)
        large = make_checkpoint(pages=10_000)
        assert store.read_cost(large) > store.read_cost(small)

    def test_write_cost_scales_with_size(self):
        store = self.make_store()
        assert store.write(make_checkpoint(pages=10_000)) > store.write(
            make_checkpoint(pages=10)
        )
