"""Unit and property tests for the page-mapped (DFTL-style) FTL."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, InvalidAddressError
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.ftl.pagemap import PageMapFTL, PageMapFTLConfig
from repro.ftl.ssd import SSD
from repro.ftl.mapping import ENTRY_BYTES


def make_ftl(planes=2, blocks=16, pages=8, **config):
    chip = FlashChip(FlashGeometry(planes=planes, blocks_per_plane=blocks,
                                   pages_per_block=pages))
    return PageMapFTL(chip, PageMapFTLConfig(**config))


class TestLayout:
    def test_overprovisioning_reserved(self):
        ftl = make_ftl()
        total_pages = ftl.chip.geometry.total_pages
        assert ftl.logical_pages < total_pages

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            PageMapFTLConfig(overprovision=0.0)
        with pytest.raises(ConfigError):
            PageMapFTLConfig(gc_threshold=1)

    def test_out_of_range(self):
        ftl = make_ftl()
        with pytest.raises(InvalidAddressError):
            ftl.write(ftl.logical_pages, "x")


class TestReadWrite:
    def test_round_trip(self):
        ftl = make_ftl()
        ftl.write(5, "data")
        assert ftl.read(5)[0] == "data"
        assert ftl.is_mapped(5)

    def test_unwritten_is_none(self):
        ftl = make_ftl()
        assert ftl.read(5)[0] is None

    def test_trim(self):
        ftl = make_ftl()
        ftl.write(5, "data")
        ftl.trim(5)
        assert not ftl.is_mapped(5)

    def test_overwrite_chain(self):
        ftl = make_ftl()
        for version in range(50):
            ftl.write(3, version)
        assert ftl.read(3)[0] == 49

    def test_dirty_flag(self):
        ftl = make_ftl()
        ftl.write(3, "x", dirty=True)
        ppn = ftl.page_map.lookup(3)
        assert ftl.chip.page(ppn).oob.dirty
        ftl.set_page_dirty(3, False)
        assert not ftl.chip.page(ppn).oob.dirty


class TestGarbageCollection:
    def test_sustained_writes_never_corrupt(self):
        ftl = make_ftl()
        rng = random.Random(1)
        shadow = {}
        for i in range(8000):
            lpn = rng.randrange(ftl.logical_pages)
            shadow[lpn] = ("v", i)
            ftl.write(lpn, shadow[lpn])
        for lpn, expected in shadow.items():
            assert ftl.read(lpn)[0] == expected

    def test_no_merges_only_copies(self):
        """Page mapping needs no merges: GC is pure copy-forward."""
        ftl = make_ftl()
        rng = random.Random(2)
        for i in range(5000):
            ftl.write(rng.randrange(ftl.logical_pages), i)
        assert ftl.stats.full_merges == 0
        assert ftl.stats.switch_merges == 0
        assert ftl.stats.gc_page_writes > 0

    def test_free_pool_never_exhausted(self):
        ftl = make_ftl()
        rng = random.Random(3)
        for i in range(6000):
            ftl.write(rng.randrange(ftl.logical_pages), i)
            assert ftl.free_blocks() >= 1

    def test_hot_cold_amplification_lower_than_hybrid(self):
        """On skewed random overwrites, page mapping amplifies less than
        the hybrid layout (DFTL's headline result, which the SSC's
        page-mapped log region inherits)."""
        from repro.ftl.hybrid import HybridFTL, HybridFTLConfig

        geometry = FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8)
        page = PageMapFTL(FlashChip(geometry))
        hybrid = HybridFTL(FlashChip(geometry), HybridFTLConfig())
        span = min(page.logical_pages, hybrid.logical_pages) // 2
        rng = random.Random(4)
        sequence = [rng.randrange(span) for _ in range(6000)]
        for lpn in sequence:
            page.write(lpn, 1)
        for lpn in sequence:
            hybrid.write(lpn, 1)
        assert page.stats.write_amplification() < hybrid.stats.write_amplification()


class TestMemory:
    def test_page_table_dominates(self):
        """The full page table costs far more than the hybrid mapping —
        the memory argument behind hybrid FTLs and the SSC (Table 4)."""
        geometry = FlashGeometry(planes=2, blocks_per_plane=32, pages_per_block=16)
        page_ssd = SSD(geometry=geometry, mapping="page")
        hybrid_ssd = SSD(geometry=geometry, mapping="hybrid")
        assert page_ssd.device_memory_bytes() > 3 * hybrid_ssd.device_memory_bytes()

    def test_memory_formula(self):
        ftl = make_ftl()
        assert ftl.device_memory_bytes() == ftl.logical_pages * ENTRY_BYTES


class TestSSDIntegration:
    def test_ssd_accepts_page_mapping(self):
        ssd = SSD(mapping="page",
                  geometry=FlashGeometry(planes=2, blocks_per_plane=8,
                                         pages_per_block=8))
        ssd.write(3, "x")
        assert ssd.read(3)[0] == "x"

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ConfigError):
            SSD(mapping="magic")


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 10**6)), max_size=250))
def test_property_dict_equivalence(operations):
    ftl = make_ftl()
    shadow = {}
    for index, (is_trim, seed) in enumerate(operations):
        lpn = seed % ftl.logical_pages
        if is_trim:
            ftl.trim(lpn)
            shadow.pop(lpn, None)
        else:
            ftl.write(lpn, index)
            shadow[lpn] = index
    for lpn in {seed % ftl.logical_pages for _t, seed in operations}:
        assert ftl.read(lpn)[0] == shadow.get(lpn)
