"""Unit tests for the native (FlashCache-style) cache manager."""

import random

import pytest

from repro.disk.model import Disk
from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.ftl.ssd import SSD
from repro.manager.native import HOST_ENTRY_BYTES, NativeCacheManager, NativeConfig


def make_native(mode="wb", consistency=True, disk_blocks=100_000, **kwargs):
    geometry = FlashGeometry(planes=4, blocks_per_plane=32, pages_per_block=16)
    ssd = SSD(geometry=geometry)
    disk = Disk(disk_blocks)
    config = NativeConfig(mode=mode, consistency=consistency, **kwargs)
    return NativeCacheManager(ssd, disk, config), ssd, disk


class TestConfig:
    def test_bad_mode(self):
        with pytest.raises(ConfigError):
            NativeConfig(mode="weird")

    def test_bad_thresholds(self):
        with pytest.raises(ConfigError):
            NativeConfig(dirty_threshold=0.0)
        with pytest.raises(ConfigError):
            NativeConfig(meta_fraction=0.9)


class TestWriteBack:
    def test_read_miss_populates_cache(self):
        manager, ssd, disk = make_native()
        disk.write(42, "on-disk")
        data, _ = manager.read(42)
        assert data == "on-disk"
        assert manager.stats.read_misses == 1
        data, _ = manager.read(42)
        assert data == "on-disk"
        assert manager.stats.read_hits == 1

    def test_write_goes_to_ssd_only(self):
        manager, ssd, disk = make_native()
        manager.write(42, "dirty")
        assert disk.peek(42) is None  # not written back yet
        data, _ = manager.read(42)
        assert data == "dirty"

    def test_dirty_block_written_back_on_eviction(self):
        manager, ssd, disk = make_native(set_size=4)
        rng = random.Random(1)
        shadow = {}
        for i in range(5000):
            lbn = rng.randrange(50_000)
            shadow[lbn] = ("w", lbn, i)
            manager.write(lbn, shadow[lbn])
        # Every block must be readable with its newest value, from
        # wherever it now lives.
        for lbn, expected in list(shadow.items())[:500]:
            data, _ = manager.read(lbn)
            assert data == expected

    def test_dirty_threshold_enforced(self):
        manager, ssd, disk = make_native(dirty_threshold=0.05)
        rng = random.Random(2)
        for i in range(3000):
            manager.write(rng.randrange(20_000), i)
        limit = int(0.05 * manager.data_pages)
        assert manager.dirty_blocks() <= limit + 64  # cleaning is batched
        assert manager.stats.writebacks > 0

    def test_flush_dirty_writes_everything_back(self):
        manager, ssd, disk = make_native()
        for lbn in range(20):
            manager.write(lbn, ("d", lbn))
        manager.flush_dirty()
        assert manager.dirty_blocks() == 0
        for lbn in range(20):
            assert disk.peek(lbn) == ("d", lbn)

    def test_metadata_writes_happen_with_consistency(self):
        manager, _ssd, _disk = make_native(consistency=True)
        for lbn in range(50):
            manager.write(lbn, lbn)
        assert manager.stats.metadata_writes > 0

    def test_no_metadata_without_consistency(self):
        manager, _ssd, _disk = make_native(consistency=False)
        for lbn in range(50):
            manager.write(lbn, lbn)
        assert manager.stats.metadata_writes == 0

    def test_consistency_costs_time(self):
        with_c, _, _ = make_native(consistency=True)
        without_c, _, _ = make_native(consistency=False)
        rng = random.Random(3)
        sequence = [rng.randrange(10_000) for _ in range(1500)]
        cost_with = sum(with_c.write(lbn, 1) for lbn in sequence)
        cost_without = sum(without_c.write(lbn, 1) for lbn in sequence)
        assert cost_with > cost_without


class TestWriteThrough:
    def test_write_hits_disk_and_cache(self):
        manager, ssd, disk = make_native(mode="wt")
        manager.write(42, "both")
        assert disk.peek(42) == "both"
        data, _ = manager.read(42)
        assert data == "both"
        assert manager.stats.read_hits == 1

    def test_wt_never_persists_metadata(self):
        manager, _ssd, _disk = make_native(mode="wt")
        for lbn in range(100):
            manager.write(lbn, lbn)
        assert manager.stats.metadata_writes == 0

    def test_wt_has_no_dirty_blocks(self):
        manager, _ssd, _disk = make_native(mode="wt")
        for lbn in range(100):
            manager.write(lbn, lbn)
        assert manager.dirty_blocks() == 0


class TestMemoryAndRecovery:
    def test_host_memory_formula(self):
        manager, _ssd, _disk = make_native()
        for lbn in range(100):
            manager.write(lbn, lbn)
        assert manager.host_memory_bytes() == manager.cached_blocks() * HOST_ENTRY_BYTES

    def test_recover_manager_scales_with_cache(self):
        small, _, _ = make_native()
        for lbn in range(50):
            small.write(lbn, lbn)
        large, _, _ = make_native()
        for lbn in range(1500):
            large.write(lbn, lbn)
        assert large.recover_manager_us() > small.recover_manager_us()

    def test_device_oob_scan_slowest(self):
        """Fig. 5's ordering: OOB device scan >> manager metadata read."""
        manager, _ssd, _disk = make_native()
        for lbn in range(500):
            manager.write(lbn, lbn)
        assert manager.recover_device_us() > manager.recover_manager_us()


class TestIntegrity:
    def test_mixed_workload_integrity(self):
        manager, _ssd, disk = make_native(set_size=8)
        rng = random.Random(4)
        shadow = {}
        for i in range(6000):
            lbn = rng.randrange(30_000)
            if rng.random() < 0.7:
                shadow[lbn] = ("v", i)
                manager.write(lbn, shadow[lbn])
            else:
                data, _ = manager.read(lbn)
                assert data == shadow.get(lbn)
