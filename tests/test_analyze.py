"""Unit tests for the trace analyzer."""

import pytest

from repro.traces.analyze import analyze
from repro.traces.record import OpKind, TraceRecord
from repro.traces.synthetic import HOMES, generate_trace


def R(lbn):
    return TraceRecord(OpKind.READ, lbn)


def W(lbn):
    return TraceRecord(OpKind.WRITE, lbn)


class TestBasics:
    def test_empty_trace(self):
        stats = analyze([])
        assert stats.ops == 0
        assert stats.write_fraction == 0.0
        assert stats.address_range_blocks == 0
        assert stats.sparse_region_fraction() == 0.0

    def test_counts(self):
        stats = analyze([R(1), W(2), W(2), R(3)])
        assert stats.ops == 4
        assert stats.reads == 2
        assert stats.writes == 2
        assert stats.unique_blocks == 3
        assert stats.unique_written == 1
        assert stats.write_fraction == pytest.approx(0.5)

    def test_overwrite_ratio(self):
        stats = analyze([W(1), W(1), W(1), W(2)])
        assert stats.overwrite_ratio == pytest.approx(2.0)  # 4 writes / 2 blocks

    def test_address_range(self):
        stats = analyze([R(100), R(5000), R(42)])
        assert stats.min_lbn == 42
        assert stats.max_lbn == 5000
        assert stats.address_range_blocks == 4959

    def test_sequential_fraction(self):
        stats = analyze([R(10), R(11), R(12), R(50)])
        assert stats.sequential_fraction == pytest.approx(2 / 4)

    def test_footprint(self):
        stats = analyze([W(0), W(1)])
        assert stats.footprint_bytes == 2 * 4096

    def test_region_densities(self):
        records = [R(lbn) for lbn in range(10)] + [R(5000)]
        stats = analyze(records, region_blocks=1000)
        assert sorted(stats.region_densities) == pytest.approx([0.001, 0.01])

    def test_summary_mentions_key_numbers(self):
        stats = analyze([W(1), R(2)])
        text = stats.summary()
        assert "2" in text and "50.0%" in text


class TestOnSyntheticTrace:
    def test_matches_trace_self_reports(self):
        trace = generate_trace(HOMES.scaled(0.05), seed=9)
        stats = analyze(trace.records, region_blocks=trace.profile.region_blocks)
        assert stats.ops == len(trace)
        assert stats.unique_blocks == trace.unique_blocks_touched()
        assert stats.write_fraction == pytest.approx(trace.write_fraction())
        assert sorted(stats.region_densities) == pytest.approx(
            sorted(trace.region_densities())
        )

    def test_hot_quarter_concentration(self):
        trace = generate_trace(HOMES.scaled(0.05), seed=9)
        stats = analyze(trace.records)
        assert stats.hot_quarter_share > 0.4
