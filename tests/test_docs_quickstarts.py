"""The quickstart snippets in README.md and the package docstring must
actually run — documentation that drifts from the API is worse than no
documentation."""

import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


def extract_python_blocks(text: str):
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeSnippets:
    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO_ROOT / "README.md").read_text()

    def test_quickstart_block_runs(self, readme):
        blocks = extract_python_blocks(readme)
        assert blocks, "README lost its python quickstart"
        # Shrink the workload so the docs test stays fast.
        code = blocks[0].replace(".scaled(0.1)", ".scaled(0.05)")
        namespace: dict = {}
        exec(compile(code, "README.md", "exec"), namespace)

    def test_device_block_runs(self, readme):
        blocks = extract_python_blocks(readme)
        assert len(blocks) >= 2
        code = blocks[1]
        # The snippet uses a bare `...` inside except; it must compile
        # and run as-is.
        namespace: dict = {}
        exec(compile(code, "README.md#2", "exec"), namespace)


class TestPackageDocstring:
    def test_docstring_example_runs(self):
        match = re.search(r"Quickstart::\n\n(.*?)\n\"{0,3}$",
                          repro.__doc__, flags=re.DOTALL)
        assert match, "package docstring lost its quickstart"
        code = "\n".join(
            line[4:] if line.startswith("    ") else line
            for line in match.group(1).splitlines()
        )
        code = code.replace(".scaled(0.1)", ".scaled(0.05)")
        namespace: dict = {}
        exec(compile(code, "repro.__doc__", "exec"), namespace)
