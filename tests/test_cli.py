"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.traces.filefmt import read_trace


class TestWorkloads:
    def test_lists_all_profiles(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("homes", "mail", "usr", "proj"):
            assert name in out


class TestGenerateAnalyze:
    def test_generate_writes_file(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        assert main([
            "generate", "--workload", "usr", "--scale", "0.02",
            "--seed", "3", "-o", str(path),
        ]) == 0
        records = read_trace(path)
        assert len(records) > 0
        assert "wrote" in capsys.readouterr().out

    def test_analyze_synthetic(self, capsys):
        assert main(["analyze", "--workload", "homes", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "requests:" in out
        assert "unique blocks:" in out

    def test_analyze_trace_file(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        main(["generate", "--workload", "mail", "--scale", "0.02", "-o", str(path)])
        capsys.readouterr()
        assert main(["analyze", "--trace", str(path)]) == 0
        assert "overwrite ratio" in capsys.readouterr().out

    def test_analyze_msr_file(self, tmp_path, capsys):
        path = tmp_path / "msr.csv"
        path.write_text("1,hm,0,Read,0,8192,10\n2,hm,0,Write,0,4096,10\n")
        assert main(["analyze", "--trace", str(path), "--msr"]) == 0
        out = capsys.readouterr().out
        assert "requests:            3" in out

    def test_analyze_fiu_file(self, tmp_path, capsys):
        path = tmp_path / "fiu.blkparse"
        path.write_text("100 1 smtpd 0 16 W 8 1 aa\n101 1 imapd 16 8 R 8 1 bb\n")
        assert main(["analyze", "--trace", str(path), "--fiu"]) == 0
        out = capsys.readouterr().out
        assert "requests:            3" in out

    def test_replay_fiu_file(self, tmp_path, capsys):
        path = tmp_path / "fiu.blkparse"
        lines = [f"{i} 1 smtpd {i * 8 % 4096} 8 W 8 1 x" for i in range(400)]
        path.write_text("\n".join(lines) + "\n")
        assert main([
            "replay", "--trace", str(path), "--fiu",
            "--system", "ssc", "--mode", "wb", "--warmup", "0",
        ]) == 0
        assert "IOPS:" in capsys.readouterr().out


class TestReplayCompare:
    def test_replay_ssc(self, capsys):
        assert main([
            "replay", "--workload", "homes", "--scale", "0.02",
            "--system", "ssc", "--mode", "wb",
        ]) == 0
        out = capsys.readouterr().out
        assert "IOPS:" in out
        assert "write amplification" in out

    def test_replay_native_wt_no_consistency(self, capsys):
        assert main([
            "replay", "--workload", "usr", "--scale", "0.02",
            "--system", "native", "--mode", "wt", "--no-consistency",
        ]) == 0
        assert "IOPS:" in capsys.readouterr().out

    def test_replay_trace_file(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        main(["generate", "--workload", "homes", "--scale", "0.02", "-o", str(path)])
        capsys.readouterr()
        assert main([
            "replay", "--trace", str(path), "--system", "ssc-r",
            "--mode", "wb", "--limit", "500",
        ]) == 0
        assert "requests measured:" in capsys.readouterr().out

    def test_compare_prints_three_systems(self, capsys):
        assert main(["compare", "--workload", "mail", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        for name in ("native", "ssc", "ssc-r"):
            assert name in out

    def test_recover(self, capsys):
        assert main(["recover", "--workload", "homes", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "FlashTier recovery" in out
        assert "OOB scan" in out


class TestErrors:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_analyze_empty_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.trace"
        path.write_text("# nothing\n")
        assert main(["analyze", "--trace", str(path)]) == 1


class TestObservabilityCli:
    def test_replay_writes_all_three_outputs(self, tmp_path, capsys):
        trace_out = tmp_path / "trace.json"
        events_out = tmp_path / "events.jsonl"
        metrics_out = tmp_path / "metrics.json"
        assert main([
            "replay", "--workload", "homes", "--scale", "0.02",
            "--system", "ssc", "--mode", "wb",
            "--trace-out", str(trace_out),
            "--events-out", str(events_out),
            "--metrics", str(metrics_out),
        ]) == 0
        out = capsys.readouterr().out
        assert "Chrome trace entries" in out

        import json
        doc = json.loads(trace_out.read_text())
        assert doc["traceEvents"]
        assert {e["ph"] for e in doc["traceEvents"]} <= {"X", "i", "M"}

        lines = events_out.read_text().splitlines()
        assert lines and all(json.loads(line)["name"] for line in lines)

        metrics = json.loads(metrics_out.read_text())
        assert metrics["counters"]["replay.ops"] > 0
        assert metrics["histograms"]["replay.latency_us"]["count"] > 0

    def test_trace_report_summarizes_capture(self, tmp_path, capsys):
        events_out = tmp_path / "events.jsonl"
        main([
            "replay", "--workload", "homes", "--scale", "0.02",
            "--system", "ssc", "--mode", "wb",
            "--events-out", str(events_out),
        ])
        capsys.readouterr()
        assert main(["trace", "report", str(events_out), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Captured events" in out
        assert "Write-amplification breakdown" in out
        assert "user writes" in out

    def test_trace_report_missing_file(self, tmp_path, capsys):
        assert main(["trace", "report", str(tmp_path / "absent.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_report_empty_capture(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", "report", str(path)]) == 1
        assert "empty" in capsys.readouterr().err

    def test_untraced_replay_unchanged(self, capsys):
        # The observability flags default off; a plain replay must not
        # mention any trace outputs.
        assert main([
            "replay", "--workload", "homes", "--scale", "0.02",
            "--system", "ssc", "--mode", "wb",
        ]) == 0
        out = capsys.readouterr().out
        assert "Chrome trace" not in out
        assert "events" not in out
