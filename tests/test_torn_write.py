"""Torn-write and bit-flip fault injection.

A power cut can interrupt a page program, a log flush or a checkpoint
mid-write; flash cells can also rot after a successful program.  In
every case the damage is checksum-detectable, and recovery must
*discard* the damaged state — never surface it as data or replay it as
a mapping.
"""

import random

import pytest

from repro.check import faults
from repro.errors import CrashError, NotPresentError
from repro.flash.block import TORN_PAGE
from repro.flash.page import PageState
from repro.sim.crash import CrashInjector, CrashPoint
from repro.ssc.device import SolidStateCache, SSCConfig
from repro.ssc.engine import EvictionPolicy


def make_ssc(small_geometry, **overrides):
    config = SSCConfig(policy=EvictionPolicy.UTIL, **overrides)
    ssc = SolidStateCache(small_geometry, config=config)
    injector = CrashInjector()
    ssc.attach_injector(injector)
    return ssc, injector


class TestTornDataPage:
    def test_torn_page_left_on_flash_but_never_surfaced(self, small_geometry):
        ssc, injector = make_ssc(small_geometry)
        injector.arm(at=CrashPoint.BEFORE_DATA_WRITE, torn=True)
        with pytest.raises(CrashError):
            ssc.write_dirty(3, "v1")
        # The partial program left detectable garbage on flash...
        torn_pages = [
            page
            for plane in ssc.chip.planes
            for block in plane.blocks.values()
            for page in block.pages
            if page.data == TORN_PAGE
        ]
        assert len(torn_pages) == 1
        assert torn_pages[0].oob.checksum == 0  # can never verify
        # ...but recovery discards it: the block is absent and the torn
        # page is not part of any mapping.
        ssc.recover()
        with pytest.raises(NotPresentError):
            ssc.read(3)
        assert torn_pages[0].state is PageState.INVALID

    def test_torn_page_advances_write_pointer(self, small_geometry):
        """NAND cannot reprogram a torn page without an erase; the device
        must keep working after recovery without tripping over it."""
        ssc, injector = make_ssc(small_geometry)
        injector.arm(at=CrashPoint.BEFORE_DATA_WRITE, torn=True)
        with pytest.raises(CrashError):
            ssc.write_dirty(3, "v1")
        ssc.recover()
        for lbn in range(8):
            ssc.write_dirty(lbn, f"after{lbn}")
        for lbn in range(8):
            value, _completion = ssc.read(lbn)
            assert value == f"after{lbn}"


class TestTornLogFlush:
    def test_damaged_tail_discarded_not_replayed(self, small_geometry):
        ssc, injector = make_ssc(small_geometry, clean_durability="buffered")
        for lbn in range(3):
            ssc.write_clean(lbn, f"c{lbn}")  # buffered, volatile
        injector.arm(at=CrashPoint.AFTER_LOG_FLUSH, torn=True)
        with pytest.raises(CrashError):
            ssc.write_dirty(9, "d9")  # sync commit tears mid-flush
        # The sub-page flush tore: its only durable remnant is a record
        # that fails its CRC, which recovery must count and discard.
        assert len(ssc.oplog.flushed) == 1
        assert not ssc.oplog.flushed[0].is_intact()
        ssc.recover()
        assert ssc.last_recovery_discarded == 1
        # Nothing from the torn flush may have been replayed.
        for lbn in (0, 1, 2, 9):
            with pytest.raises(NotPresentError):
                ssc.read(lbn)

    def test_sub_page_flush_is_atomic(self, small_geometry):
        """A torn flush smaller than one log page is all-or-nothing, so a
        replace can never persist its removal without its insert."""
        ssc, injector = make_ssc(small_geometry)
        ssc.write_dirty(3, "old")  # durably committed
        injector.arm(at=CrashPoint.AFTER_LOG_FLUSH, torn=True)
        with pytest.raises(CrashError):
            ssc.write_dirty(3, "new")  # replace tears mid-commit
        ssc.recover()
        # Either version is legal; losing the block entirely is not.
        value, _completion = ssc.read(3)
        assert value in ("old", "new")
        assert ssc.is_dirty(3)


class TestTornCheckpoint:
    def test_falls_back_to_previous_slot(self, small_geometry):
        ssc, injector = make_ssc(small_geometry)
        ssc.write_dirty(3, "v1")
        ssc.checkpoint_now()  # intact checkpoint in slot A
        first = ssc.checkpoints.latest()
        ssc.write_dirty(4, "v2")
        injector.arm(at=CrashPoint.AFTER_CHECKPOINT, torn=True)
        with pytest.raises(CrashError):
            ssc.checkpoint_now()  # slot B torn mid-write
        assert ssc.checkpoints.latest() is first  # B cannot verify
        ssc.recover()
        for lbn, expected in ((3, "v1"), (4, "v2")):
            value, _completion = ssc.read(lbn)
            assert value == expected
            assert ssc.is_dirty(lbn)

    def test_torn_first_checkpoint_recovers_from_log_alone(self, small_geometry):
        ssc, injector = make_ssc(small_geometry)
        ssc.write_dirty(3, "v1")
        injector.arm(at=CrashPoint.AFTER_CHECKPOINT, torn=True)
        with pytest.raises(CrashError):
            ssc.checkpoint_now()
        assert ssc.checkpoints.latest() is None
        ssc.recover()
        value, _completion = ssc.read(3)
        assert value == "v1"


class TestBitFlips:
    """Damage to already-durable state: detected, discarded, never served."""

    def test_flipped_log_record_truncates_tail(self, small_geometry):
        # Slacken the log-ratio checkpoint policy so the flushed records
        # are still in the log (not folded into a checkpoint) at rot time.
        ssc, _injector = make_ssc(small_geometry, checkpoint_log_ratio=10.0)
        ssc.write_dirty(3, "v1")
        ssc.write_dirty(4, "v2")
        ssc.crash()
        # Rot the first flushed record; everything after it is untrusted.
        record = ssc.oplog.flushed[0]
        assert faults.flip_log_record(ssc, random.Random(0))
        ssc.recover()
        assert ssc.last_recovery_discarded >= 1
        # No read may return garbage; blocks are either gone or exact.
        for lbn, expected in ((3, "v1"), (4, "v2")):
            try:
                value, _completion = ssc.read(lbn)
            except NotPresentError:
                continue
            assert value == expected
        assert record.is_intact()  # original untouched (replaced copy rotted)

    def test_flipped_page_payload_not_served(self, small_geometry):
        ssc, _injector = make_ssc(small_geometry)
        ssc.write_dirty(3, "v1")
        ssc.crash()
        location = ssc.engine.current_location(3)
        page = ssc.chip.page(location[2])
        page.data = ("<bitrot>", page.data)  # checksum now stale
        ssc.recover()
        # The damaged page must not be mapped; absence is the only
        # correct answer (the cache has no redundant copy).
        with pytest.raises(NotPresentError):
            ssc.read(3)

    def test_flipped_checkpoint_falls_back(self, small_geometry):
        ssc, _injector = make_ssc(small_geometry)
        ssc.write_dirty(3, "v1")
        ssc.checkpoint_now()
        ssc.write_dirty(4, "v2")
        ssc.crash()
        assert faults.flip_checkpoint(ssc, random.Random(0))
        assert ssc.checkpoints.latest() is None  # only slot is damaged
        ssc.recover()
        # Post-checkpoint records are still intact in the log; anything
        # readable must be a value the host actually wrote.
        for lbn, expected in ((3, "v1"), (4, "v2")):
            try:
                value, _completion = ssc.read(lbn)
            except NotPresentError:
                continue
            assert value == expected
