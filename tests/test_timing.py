"""Unit tests for the flash and disk timing models."""

import pytest

from repro.disk.model import DiskTimingModel
from repro.errors import ConfigError
from repro.flash.timing import TimingModel


class TestFlashTiming:
    def test_paper_parameters(self):
        timing = TimingModel()
        assert timing.page_read_us == 65.0
        assert timing.page_write_us == 85.0
        assert timing.block_erase_us == 1000.0
        assert timing.bus_delay_us == 2.0
        assert timing.control_delay_us == 10.0

    def test_read_cost_includes_overheads(self):
        timing = TimingModel()
        assert timing.read_cost() == pytest.approx(65 + 2 + 10)

    def test_write_cost_includes_overheads(self):
        timing = TimingModel()
        assert timing.write_cost() == pytest.approx(85 + 2 + 10)

    def test_erase_cost(self):
        timing = TimingModel()
        assert timing.erase_cost() == pytest.approx(1010)

    def test_oob_read_costs_full_page_read(self):
        timing = TimingModel()
        assert timing.oob_read_cost() == timing.read_cost()

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            TimingModel(page_read_us=-1)


class TestDiskTiming:
    def test_random_slower_than_sequential(self):
        timing = DiskTimingModel()
        assert timing.random_cost() > 10 * timing.sequential_cost()

    def test_random_cost_in_paper_band(self):
        # Table 1 puts disk latency at 500-5000 us.
        timing = DiskTimingModel()
        assert 500 <= timing.random_cost() <= 5000

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            DiskTimingModel(seek_us=-1)
