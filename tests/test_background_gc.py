"""Tests for background garbage collection (idle-time cleaning)."""

import random

import pytest

from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.ftl.ssd import SSD
from repro.ssc.device import SolidStateCache


@pytest.fixture
def geometry():
    return FlashGeometry(planes=4, blocks_per_plane=32, pages_per_block=16)


def pressure(device_write, rng, count=3000, span=60_000):
    for i in range(count):
        device_write(rng.randrange(span), i)


class TestSSCBackground:
    def test_idle_collection_frees_blocks(self, geometry):
        ssc = SolidStateCache.ssc(geometry)
        rng = random.Random(1)
        pressure(ssc.write_clean, rng)
        free_before = ssc.engine.free_blocks()
        spent = ssc.background_collect(budget_us=500_000)
        assert spent > 0
        assert ssc.engine.free_blocks() > free_before

    def test_budget_respected(self, geometry):
        ssc = SolidStateCache.ssc(geometry)
        rng = random.Random(2)
        pressure(ssc.write_clean, rng)
        budget = 5_000.0
        spent = ssc.background_collect(budget_us=budget)
        # One in-flight step may overshoot, bounded by a merge's cost.
        assert spent < budget + 50_000

    def test_idle_device_stops_immediately(self, geometry):
        ssc = SolidStateCache.ssc(geometry)
        ssc.write_clean(1, "x")
        spent = ssc.background_collect(budget_us=1_000_000)
        assert spent < 50_000  # nothing useful to do

    def test_negative_budget_rejected(self, geometry):
        ssc = SolidStateCache.ssc(geometry)
        with pytest.raises(ConfigError):
            ssc.background_collect(-1.0)

    def test_data_intact_after_background_gc(self, geometry):
        ssc = SolidStateCache.ssc(geometry)
        rng = random.Random(3)
        shadow = {}
        for i in range(2500):
            lbn = rng.randrange(40_000)
            shadow[lbn] = ("v", i)
            ssc.write_clean(lbn, shadow[lbn])
        ssc.background_collect(budget_us=10**6)
        from repro.errors import NotPresentError

        for lbn, expected in shadow.items():
            try:
                data, _ = ssc.read(lbn)
            except NotPresentError:
                continue
            assert data == expected

    def test_background_gc_durable_across_crash(self, geometry):
        """Background mutations must be journaled like foreground ones."""
        ssc = SolidStateCache.ssc(geometry)
        rng = random.Random(4)
        dirty = {}
        for i in range(600):
            lbn = rng.randrange(900)
            dirty[lbn] = ("d", i)
            ssc.write_dirty(lbn, dirty[lbn])
        for i in range(2000):
            ssc.write_clean(5000 + rng.randrange(50_000), i)
        ssc.background_collect(budget_us=10**6)
        ssc.crash()
        ssc.recover()
        for lbn, expected in dirty.items():
            data, _ = ssc.read(lbn)
            assert data == expected

    def test_background_shifts_gc_work_off_foreground(self, geometry):
        """Idle collection must reduce the garbage-collection work the
        *next* burst of foreground writes has to perform."""
        def run(with_background):
            ssc = SolidStateCache.ssc(geometry)
            rng = random.Random(5)
            pressure(ssc.write_clean, rng, count=2500)
            if with_background:
                ssc.background_collect(budget_us=10**7)
            gc_before = (
                ssc.stats.gc_page_writes + ssc.stats.silent_evictions
            )
            for i in range(200):
                ssc.write_clean(rng.randrange(60_000), i)
            return (
                ssc.stats.gc_page_writes + ssc.stats.silent_evictions
            ) - gc_before

        assert run(True) <= run(False)


class TestSSDBackground:
    def test_recycles_log_blocks(self, geometry):
        ssd = SSD(geometry=geometry)
        rng = random.Random(6)
        for i in range(2000):
            ssd.write(rng.randrange(ssd.capacity_pages), i)
        logs_before = len(ssd.ftl._log_blocks)
        spent = ssd.background_collect(budget_us=10**6)
        assert spent > 0
        assert len(ssd.ftl._log_blocks) < logs_before

    def test_data_intact(self, geometry):
        ssd = SSD(geometry=geometry)
        rng = random.Random(7)
        shadow = {}
        for i in range(2000):
            lpn = rng.randrange(ssd.capacity_pages)
            shadow[lpn] = ("s", i)
            ssd.write(lpn, shadow[lpn])
        ssd.background_collect(budget_us=10**6)
        for lpn, expected in shadow.items():
            assert ssd.read(lpn)[0] == expected
