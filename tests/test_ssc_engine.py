"""Unit tests for the SSC engine: silent eviction and space management."""

import random

import pytest

from repro.errors import CacheFullError, ConfigError, InvalidAddressError
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import TimingModel
from repro.ssc.device import SolidStateCache
from repro.ssc.engine import CacheFTL, CacheFTLConfig, EvictionPolicy
from repro.ssc.log import NullOperationLog


def make_engine(policy=EvictionPolicy.UTIL, planes=4, blocks=16, pages=8):
    chip = FlashChip(FlashGeometry(planes=planes, blocks_per_plane=blocks,
                                   pages_per_block=pages))
    oplog = NullOperationLog(TimingModel())
    return CacheFTL(chip, oplog, CacheFTLConfig(policy=policy))


class TestConfig:
    def test_bad_fractions(self):
        with pytest.raises(ConfigError):
            CacheFTLConfig(log_fraction=0.3, max_log_fraction=0.2)
        with pytest.raises(ConfigError):
            CacheFTLConfig(evict_batch=0)

    def test_negative_lbn_rejected(self):
        engine = make_engine()
        with pytest.raises(InvalidAddressError):
            engine.write(-1, "x")


class TestSilentEviction:
    def test_clean_data_evicted_under_pressure(self):
        engine = make_engine()
        rng = random.Random(1)
        for i in range(4000):
            engine.write(rng.randrange(100_000), i, dirty=False)
        assert engine.stats.silent_evictions > 0
        assert engine.stats.evicted_valid_pages > 0
        assert engine.free_blocks() >= 1

    def test_eviction_never_touches_dirty_blocks(self):
        """Silent eviction must only reclaim clean blocks (§4.3)."""
        engine = make_engine()
        rng = random.Random(2)
        dirty = {}
        # Dirty working set small enough to fit; clean churn around it.
        for i in range(4000):
            if rng.random() < 0.1:
                lbn = rng.randrange(256)
                dirty[lbn] = ("d", i)
                engine.write(lbn, dirty[lbn], dirty=True)
            else:
                engine.write(1000 + rng.randrange(100_000), i, dirty=False)
        for lbn, expected in dirty.items():
            location = engine.current_location(lbn)
            assert location is not None, f"dirty block {lbn} was evicted"
            data, _oob, _cost = engine.chip.read_page(location[2])
            assert data == expected

    def test_eviction_prefers_low_utilization(self):
        engine = make_engine()
        # Build two data blocks via the device path: one dense group,
        # one sparse group, then force eviction pressure.
        rng = random.Random(3)
        for i in range(4000):
            engine.write(rng.randrange(50_000), i, dirty=False)
        victims = engine._pick_eviction_victims(4)
        if len(victims) >= 2:
            utils = [victim.valid_count for victim in victims]
            assert utils == sorted(utils)

    def test_cache_full_of_dirty_raises(self):
        engine = make_engine(planes=2, blocks=8, pages=8)
        with pytest.raises(CacheFullError):
            for i in range(10_000):
                engine.write(i * 64, ("d", i), dirty=True)  # sparse + dirty

    def test_cleaning_relieves_cache_full(self):
        engine = make_engine(planes=2, blocks=8, pages=8)
        written = []
        with pytest.raises(CacheFullError):
            for i in range(10_000):
                engine.write(i * 64, ("d", i), dirty=True)
                written.append(i * 64)
        for lbn in written:
            engine.set_clean(lbn)
        # Now clean blocks exist; writes must succeed again.
        engine.write(10**9, "after", dirty=False)
        assert engine.current_location(10**9) is not None


class TestPolicyDifferences:
    def test_ssc_r_grows_log_pool(self):
        util = make_engine(EvictionPolicy.UTIL)
        merge = make_engine(EvictionPolicy.MERGE)
        rng = random.Random(4)
        sequence = [rng.randrange(100_000) for _ in range(4000)]
        for lbn in sequence:
            util.write(lbn, 1, dirty=False)
        for lbn in sequence:
            merge.write(lbn, 1, dirty=False)
        assert merge.log_blocks_target > util.log_blocks_target
        assert merge.max_log_blocks > util.max_log_blocks

    def test_ssc_r_amplifies_less(self):
        util = make_engine(EvictionPolicy.UTIL)
        merge = make_engine(EvictionPolicy.MERGE)
        rng = random.Random(5)
        sequence = [rng.randrange(5000) for _ in range(6000)]
        for lbn in sequence:
            util.write(lbn, 1, dirty=False)
        for lbn in sequence:
            merge.write(lbn, 1, dirty=False)
        assert merge.stats.gc_page_writes <= util.stats.gc_page_writes

    def test_ssc_r_provisions_more_memory(self, medium_geometry):
        util = SolidStateCache.ssc(medium_geometry)
        merge = SolidStateCache.ssc_r(medium_geometry)
        assert merge.device_memory_bytes() > util.device_memory_bytes()


class TestHelpers:
    def test_current_location_none_for_absent(self):
        engine = make_engine()
        assert engine.current_location(5) is None

    def test_set_clean_missing_returns_false(self):
        engine = make_engine()
        assert not engine.set_clean(5)

    def test_cached_blocks_counts_both_levels(self):
        engine = make_engine()
        rng = random.Random(6)
        shadow = set()
        for i in range(2000):
            lbn = rng.randrange(3000)
            engine.write(lbn, i, dirty=False)
            shadow.add(lbn)
        # Some were silently evicted; cached must equal live mappings.
        live = sum(1 for lbn in shadow if engine.current_location(lbn) is not None)
        assert engine.cached_blocks() == live

    def test_iter_cached_lbns_matches_reads(self):
        engine = make_engine()
        rng = random.Random(7)
        for i in range(1500):
            engine.write(rng.randrange(2000), i, dirty=False)
        for lbn in engine.iter_cached_lbns():
            assert engine.current_location(lbn) is not None

    def test_data_integrity_under_churn(self):
        engine = make_engine()
        rng = random.Random(8)
        shadow = {}
        for i in range(8000):
            lbn = rng.randrange(10_000)
            shadow[lbn] = ("v", lbn, i)
            engine.write(lbn, shadow[lbn], dirty=False)
        checked = 0
        for lbn, expected in shadow.items():
            location = engine.current_location(lbn)
            if location is not None:
                data, _oob, _cost = engine.chip.read_page(location[2])
                assert data == expected
                checked += 1
        assert checked > 0
