"""The metrics registry: declaration semantics, bucket edges, and the
snapshot monoid.

The snapshot laws matter operationally: ``merge`` is how per-shard
metrics roll up into array totals (the same contract the sharded stat
views rely on) and ``diff`` is how a measurement window is isolated
from a running system.  The hypothesis layer pins commutativity,
associativity, the empty identity, and diff-as-merge-inverse over
integer-valued snapshots (integers keep float addition exact, which
is also why real collections count pages and events, not fractions).
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import CacheMode, SystemConfig, SystemKind
from repro.core.flashtier import build_system
from repro.obs import (
    LATENCY_BUCKETS_US,
    METRICS,
    MetricsRegistry,
    MetricsSnapshot,
    build_registry,
    collect,
)
from repro.obs.metrics import Histogram, histogram_rows
from repro.traces.synthetic import PROFILES, generate_trace


class TestRegistryDeclaration:
    def test_declaration_order_preserved(self):
        registry = MetricsRegistry()
        registry.counter("b.second", "desc")
        registry.counter("a.first", "desc")
        assert [m.name for m in registry] == ["b.second", "a.first"]

    def test_redeclaration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", "desc")
        with pytest.raises(ValueError, match="already declared"):
            registry.gauge("x", "other desc")

    def test_empty_description_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="needs a description"):
            registry.counter("undocumented", "")

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "desc")
        counter.inc(3)
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)
        assert counter.value == 3

    def test_contains_get_len(self):
        registry = MetricsRegistry()
        registry.gauge("g", "desc")
        assert "g" in registry and "h" not in registry
        assert registry.get("g").kind == "gauge"
        assert len(registry) == 1

    def test_catalog_builds_every_metric(self):
        registry = build_registry()
        assert len(registry) == len(METRICS)
        for entry in METRICS:
            assert entry[0] in registry
            assert registry.get(entry[0]).kind == entry[1]
            assert registry.get(entry[0]).description


class TestHistogramBuckets:
    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "desc", (1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "desc", (2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", "desc", ())

    def test_le_semantics_on_exact_bounds(self):
        # A sample exactly on a bound lands in that bound's bucket
        # (Prometheus ``le``), not the next one.
        hist = Histogram("h", "desc", (10.0, 20.0, 30.0))
        for value in (10.0, 20.0, 30.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 0]

    def test_open_intervals_between_bounds(self):
        hist = Histogram("h", "desc", (10.0, 20.0))
        hist.observe(0.0)      # <= 10
        hist.observe(10.0001)  # (10, 20]
        hist.observe(19.9999)  # (10, 20]
        hist.observe(20.0001)  # overflow
        assert hist.counts == [1, 2, 1]

    def test_overflow_bucket_and_mean(self):
        hist = Histogram("h", "desc", (1.0,))
        assert hist.mean() == 0.0
        hist.observe(5.0)
        hist.observe(7.0)
        assert hist.counts == [0, 2]
        assert hist.count == 2
        assert hist.mean() == 6.0

    def test_catalog_latency_buckets_cover_flash_and_disk(self):
        # The committed bounds must bracket a flash page read (~77us
        # lands in a low bucket) and a multi-seek miss (~10ms well
        # inside range), or the replay histogram saturates at the ends.
        assert LATENCY_BUCKETS_US[0] <= 100.0
        assert LATENCY_BUCKETS_US[-1] >= 20_000.0
        assert list(LATENCY_BUCKETS_US) == sorted(set(LATENCY_BUCKETS_US))

    def test_histogram_rows_labels(self):
        rows = histogram_rows(
            {"bounds": [10.0, 20.0], "counts": [1, 2, 3]}
        )
        assert rows == [("<= 10", 1), ("<= 20", 2), ("+Inf", 3)]


# ---------------------------------------------------------------------------
# Snapshot monoid laws (hypothesis)
# ---------------------------------------------------------------------------

BOUNDS = (10.0, 100.0)
METRIC_NAMES = ("a.ops", "b.pages", "c.erases")

counts_st = st.integers(min_value=0, max_value=10**6).map(float)


@st.composite
def snapshots(draw):
    counters = {
        name: draw(counts_st)
        for name in draw(st.sets(st.sampled_from(METRIC_NAMES)))
    }
    gauges = {
        name: draw(counts_st)
        for name in draw(st.sets(st.sampled_from(("g.bytes", "g.busy"))))
    }
    histograms = {}
    if draw(st.booleans()):
        counts = [int(draw(counts_st)) for _ in range(len(BOUNDS) + 1)]
        histograms["h.lat"] = {
            "bounds": list(BOUNDS),
            "counts": counts,
            "count": sum(counts),
            "sum": draw(counts_st),
        }
    return MetricsSnapshot(counters, gauges, histograms)


class TestSnapshotMonoid:
    @given(a=snapshots(), b=snapshots())
    @settings(max_examples=60)
    def test_merge_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(a=snapshots(), b=snapshots(), c=snapshots())
    @settings(max_examples=60)
    def test_merge_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(a=snapshots())
    @settings(max_examples=60)
    def test_empty_is_identity(self, a):
        empty = MetricsSnapshot.empty()
        assert a.merge(empty) == a
        assert empty.merge(a) == a

    @given(a=snapshots(), b=snapshots())
    @settings(max_examples=60)
    def test_diff_inverts_merge(self, a, b):
        merged = a.merge(b)
        recovered = merged.diff(b)
        # Equal on every metric a carries; diff may add explicit zeros
        # for metrics only b had.
        for name, value in a.counters.items():
            assert recovered.counters[name] == value
        for name, value in a.gauges.items():
            assert recovered.gauges[name] == value
        for name, hist in a.histograms.items():
            assert recovered.histograms[name] == hist

    @given(a=snapshots())
    @settings(max_examples=60)
    def test_self_diff_is_zero(self, a):
        zero = a.diff(a)
        assert all(v == 0.0 for v in zero.counters.values())
        assert all(v == 0.0 for v in zero.gauges.values())
        for hist in zero.histograms.values():
            assert all(c == 0 for c in hist["counts"])
            assert hist["count"] == 0

    @given(a=snapshots())
    @settings(max_examples=60)
    def test_to_dict_round_trip(self, a):
        payload = json.loads(json.dumps(a.to_dict()))
        assert MetricsSnapshot.from_dict(payload) == a


class TestSnapshotEdges:
    def test_merge_rejects_mismatched_bounds(self):
        a = MetricsSnapshot(histograms={
            "h": {"bounds": [1.0], "counts": [0, 0], "count": 0, "sum": 0.0}
        })
        b = MetricsSnapshot(histograms={
            "h": {"bounds": [2.0], "counts": [0, 0], "count": 0, "sum": 0.0}
        })
        with pytest.raises(ValueError, match="bounds differ"):
            a.merge(b)
        with pytest.raises(ValueError, match="bounds differ"):
            a.diff(b)

    def test_snapshot_is_frozen_copy(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "desc")
        counter.inc(1)
        snap = registry.snapshot()
        counter.inc(41)
        assert snap.counters["c"] == 1.0
        assert registry.snapshot().counters["c"] == 42.0


class TestCollect:
    def test_collect_matches_layer_stats(self):
        profile = PROFILES["homes"].scaled(0.01)
        system = build_system(SystemConfig(
            kind=SystemKind.SSC,
            mode=CacheMode.WRITE_BACK,
            cache_blocks=256,
            disk_blocks=profile.address_range_blocks,
        ))
        trace = generate_trace(profile, seed=42)
        stats = system.replay(trace.records, warmup_fraction=0.25,
                              keep_latencies=True)

        snap = collect(system, stats)
        counters = snap.counters
        assert counters["manager.reads"] == system.manager.stats.reads
        assert counters["ftl.gc_page_writes"] == \
            system.device.stats.gc_page_writes
        assert counters["flash.block_erases"] == \
            system.device.chip.stats.block_erases
        assert counters["log.records_written"] == \
            system.device.oplog.records_written
        assert counters["replay.ops"] == stats.ops
        hist = snap.histograms["replay.latency_us"]
        assert hist["count"] == stats.ops
        assert sum(hist["counts"]) == hist["count"]

    def test_collect_sums_log_counters_across_shards(self):
        profile = PROFILES["homes"].scaled(0.01)
        sharded = build_system(SystemConfig(
            kind=SystemKind.SSC,
            mode=CacheMode.WRITE_BACK,
            cache_blocks=512,
            disk_blocks=profile.address_range_blocks,
            shards=2,
        ))
        trace = generate_trace(profile, seed=42)
        sharded.replay(trace.records, warmup_fraction=0.25)
        snap = collect(sharded)
        expected = sum(s.oplog.records_written
                       for s in sharded.device.shards)
        assert snap.counters["log.records_written"] == expected
        assert snap.counters["log.records_written"] > 0
