"""Unit tests for the FIU trace converter."""

import pytest

from repro.traces.fiu import FIUFormatError, parse_fiu_line, read_fiu_trace
from repro.traces.record import OpKind


class TestParseLine:
    def test_single_block_write(self):
        # lba 8 sectors = block 1; 8 sectors = one 4 KB block.
        records = parse_fiu_line("1234 500 bash 8 8 W 8 1 abcdef")
        assert len(records) == 1
        assert records[0].op is OpKind.WRITE
        assert records[0].lbn == 1

    def test_multi_block_read(self):
        records = parse_fiu_line("1 1 proc 0 24 R 8 1 x")
        assert [record.lbn for record in records] == [0, 1, 2]
        assert all(record.op is OpKind.READ for record in records)

    def test_unaligned_span(self):
        # Sectors 4..19 touch blocks 0..2.
        records = parse_fiu_line("1 1 proc 4 16 W 8 1 x")
        assert [record.lbn for record in records] == [0, 1, 2]

    def test_md5_field_optional(self):
        records = parse_fiu_line("1 1 proc 8 8 R 8 1")
        assert len(records) == 1

    def test_word_ops_accepted(self):
        assert parse_fiu_line("1 1 p 0 8 Write 8 1 x")[0].op is OpKind.WRITE
        assert parse_fiu_line("1 1 p 0 8 read 8 1 x")[0].op is OpKind.READ

    def test_zero_size(self):
        assert parse_fiu_line("1 1 p 0 0 W 8 1 x") == []

    @pytest.mark.parametrize("line", [
        "1 1 p 0 8",              # too few fields
        "1 1 p abc 8 W 8 1 x",    # bad lba
        "1 1 p -8 8 W 8 1 x",     # negative
        "1 1 p 0 8 X 8 1 x",      # unknown op
    ])
    def test_malformed_rejected(self, line):
        with pytest.raises(FIUFormatError):
            parse_fiu_line(line)


class TestReadFile:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "fiu.blkparse"
        path.write_text(
            "# header\n"
            "100 1 smtpd 0 8 W 8 1 aa\n"
            "101 1 smtpd 16 16 R 8 1 bb\n"
        )
        records = read_fiu_trace(path)
        assert len(records) == 3  # 1 write + 2 reads
        assert records[0].op is OpKind.WRITE

    def test_limit(self, tmp_path):
        path = tmp_path / "fiu.blkparse"
        path.write_text("1 1 p 0 80 W 8 1 x\n")  # 10 blocks
        assert len(read_fiu_trace(path, limit=4)) == 4

    def test_replayable(self, tmp_path):
        from repro import CacheMode, SystemConfig, SystemKind, build_system

        path = tmp_path / "fiu.blkparse"
        path.write_text("1 1 p 0 64 W 8 1 x\n2 1 p 0 64 R 8 1 x\n")
        records = read_fiu_trace(path)
        system = build_system(SystemConfig(
            kind=SystemKind.SSC, mode=CacheMode.WRITE_BACK,
            cache_blocks=64, disk_blocks=1000, planes=2, pages_per_block=8,
        ))
        stats = system.replay(records)
        assert stats.ops == len(records)
        assert stats.read_hits == 8  # written blocks re-read from cache
