"""Unit tests for trace file I/O."""

import pytest

from repro.traces.filefmt import TraceFormatError, iter_trace, read_trace, write_trace
from repro.traces.record import OpKind, TraceRecord


@pytest.fixture
def records():
    return [
        TraceRecord(OpKind.READ, 100),
        TraceRecord(OpKind.WRITE, 200),
        TraceRecord(OpKind.WRITE, 0),
    ]


class TestRoundTrip:
    def test_write_then_read(self, tmp_path, records):
        path = tmp_path / "trace.txt"
        count = write_trace(path, records)
        assert count == 3
        assert read_trace(path) == records

    def test_iter_streams(self, tmp_path, records):
        path = tmp_path / "trace.txt"
        write_trace(path, records)
        assert list(iter_trace(path)) == records

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.txt"
        write_trace(path, [])
        assert read_trace(path) == []


class TestParsing:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# comment\n\nR 5\n   \nW 6\n")
        assert read_trace(path) == [
            TraceRecord(OpKind.READ, 5),
            TraceRecord(OpKind.WRITE, 6),
        ]

    def test_bad_op_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("X 5\n")
        with pytest.raises(TraceFormatError, match="unknown op"):
            read_trace(path)

    def test_bad_lbn_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("R five\n")
        with pytest.raises(TraceFormatError, match="bad block number"):
            read_trace(path)

    def test_wrong_field_count_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("R 5 extra\n")
        with pytest.raises(TraceFormatError, match="expected"):
            read_trace(path)

    def test_error_reports_line_number(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("R 1\nbroken\n")
        with pytest.raises(TraceFormatError, match=":2:"):
            read_trace(path)
