"""Unit tests for the simulation kernel (clock, crash injection)."""

import pytest

from repro.errors import CrashError
from repro.sim.clock import SimClock
from repro.sim.crash import CrashInjector, CrashPoint


class TestSimClock:
    def test_starts_at_zero(self):
        clock = SimClock()
        assert clock.now_us == 0.0
        assert clock.now_s == 0.0

    def test_custom_start(self):
        clock = SimClock(start_us=100.0)
        assert clock.now_us == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start_us=-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(5.5)
        assert clock.now_us == pytest.approx(15.5)

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(3.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_seconds_conversion(self):
        clock = SimClock()
        clock.advance(2_500_000)
        assert clock.now_s == pytest.approx(2.5)

    def test_reset(self):
        clock = SimClock()
        clock.advance(42.0)
        clock.reset()
        assert clock.now_us == 0.0


class TestCrashInjector:
    def test_unarmed_never_fires(self):
        injector = CrashInjector()
        for _ in range(100):
            injector.tick(CrashPoint.AFTER_DATA_WRITE)
        assert not injector.fired

    def test_fires_immediately_when_armed_at_zero(self):
        injector = CrashInjector()
        injector.arm(after_events=0)
        with pytest.raises(CrashError):
            injector.tick(CrashPoint.AFTER_DATA_WRITE)
        assert injector.fired

    def test_countdown(self):
        injector = CrashInjector()
        injector.arm(after_events=2)
        injector.tick(CrashPoint.AFTER_DATA_WRITE)
        injector.tick(CrashPoint.AFTER_DATA_WRITE)
        with pytest.raises(CrashError):
            injector.tick(CrashPoint.AFTER_DATA_WRITE)

    def test_point_filter(self):
        injector = CrashInjector()
        injector.arm(after_events=0, at=CrashPoint.AFTER_LOG_FLUSH)
        injector.tick(CrashPoint.AFTER_DATA_WRITE)  # ignored: wrong point
        assert not injector.fired
        with pytest.raises(CrashError):
            injector.tick(CrashPoint.AFTER_LOG_FLUSH)

    def test_fires_only_once(self):
        injector = CrashInjector()
        injector.arm(after_events=0)
        with pytest.raises(CrashError):
            injector.tick(CrashPoint.BEFORE_DATA_WRITE)
        injector.tick(CrashPoint.BEFORE_DATA_WRITE)  # disarmed now
        assert injector.fired

    def test_disarm(self):
        injector = CrashInjector()
        injector.arm(after_events=0)
        injector.disarm()
        injector.tick(CrashPoint.AFTER_CHECKPOINT)
        assert not injector.fired

    def test_negative_countdown_rejected(self):
        injector = CrashInjector()
        with pytest.raises(ValueError):
            injector.arm(after_events=-1)
