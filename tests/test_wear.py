"""Unit tests for wear leveling (dynamic allocation + static relocation)."""

import random


from repro.flash.block import BlockKind
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.ftl.hybrid import HybridFTL, HybridFTLConfig
from repro.ftl.wear import WearConfig, WearLeveler
from repro.ssc.device import SolidStateCache, SSCConfig


def make_chip(planes=2, blocks=8, pages=4):
    return FlashChip(FlashGeometry(planes=planes, blocks_per_plane=blocks,
                                   pages_per_block=pages))


class TestDynamicAllocation:
    def test_picks_least_worn_free_block(self):
        chip = make_chip()
        leveler = WearLeveler(chip, WearConfig(dynamic=True))
        plane = chip.planes[0]
        # Wear block 0 heavily, leave the rest fresh.
        block0 = plane.allocate(BlockKind.DATA)
        for _ in range(5):
            chip.erase_block(block0.pbn)
            plane.allocate_specific(block0.pbn, BlockKind.DATA)
        chip.erase_block(block0.pbn)  # back to free with wear 6
        chosen = leveler.pick_block(plane, BlockKind.LOG)
        assert chosen.pbn != block0.pbn
        assert chosen.erase_count == 0

    def test_hottest_flag_inverts_preference(self):
        chip = make_chip()
        leveler = WearLeveler(chip, WearConfig(dynamic=True))
        plane = chip.planes[0]
        block0 = plane.allocate(BlockKind.DATA)
        chip.erase_block(block0.pbn)  # wear 1, back on free list
        chosen = leveler.pick_block(plane, BlockKind.DATA, hottest=True)
        assert chosen.pbn == block0.pbn

    def test_disabled_falls_back_to_fifo(self):
        chip = make_chip()
        leveler = WearLeveler(chip, WearConfig(dynamic=False))
        plane = chip.planes[0]
        first_free = next(iter(plane.free_pbns()))
        chosen = leveler.pick_block(plane, BlockKind.DATA)
        assert chosen.pbn == first_free


class TestStaticDue:
    def test_rate_limited(self):
        chip = make_chip()
        leveler = WearLeveler(chip, WearConfig(static_threshold=0, check_interval=10))
        # The differential is 0, which is not > 0; never due.
        for _ in range(30):
            assert not leveler.static_due()

    def test_due_when_differential_exceeds(self):
        chip = make_chip()
        leveler = WearLeveler(chip, WearConfig(static_threshold=2, check_interval=1))
        plane = chip.planes[0]
        block = plane.allocate(BlockKind.DATA)
        for _ in range(4):
            chip.erase_block(block.pbn)
            plane.allocate_specific(block.pbn, BlockKind.DATA)
        assert leveler.static_due()

    def test_none_threshold_disables(self):
        chip = make_chip()
        leveler = WearLeveler(chip, WearConfig(static_threshold=None))
        assert not leveler.static_due()


class TestStaticRelocationInFTL:
    def test_relocation_bounds_wear_differential(self):
        """A hot/cold split workload must not let hot-region erases run
        away while cold data pins its blocks."""
        def run(threshold):
            chip = FlashChip(
                FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8)
            )
            ftl = HybridFTL(
                chip,
                HybridFTLConfig(
                    wear=WearConfig(static_threshold=threshold, check_interval=4)
                ),
            )
            # Cold data fills a quarter of the space, written once.
            cold_span = ftl.logical_pages // 4
            for lpn in range(cold_span):
                ftl.write(lpn, ("cold", lpn))
            # Hot traffic hammers a small window.
            rng = random.Random(1)
            for i in range(6000):
                lpn = cold_span + rng.randrange(ftl.logical_pages // 8)
                ftl.write(lpn, ("hot", i))
            # Data must stay intact through relocations.
            for lpn in range(0, cold_span, 7):
                data, _ = ftl.read(lpn)
                assert data == ("cold", lpn)
            return chip.wear_differential(), ftl.wear.static_relocations

        leveled_diff, relocations = run(threshold=8)
        unleveled_diff, _ = run(threshold=None)
        assert relocations > 0
        assert leveled_diff <= unleveled_diff

    def test_ssc_supports_wear_config(self):
        geometry = FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8)
        ssc = SolidStateCache(
            geometry,
            config=SSCConfig(wear=WearConfig(static_threshold=4, check_interval=2)),
        )
        rng = random.Random(2)
        for i in range(3000):
            ssc.write_clean(rng.randrange(2000), i)
        # No assertion on relocation count (workload-dependent); the
        # device must simply stay correct and report wear stats.
        assert ssc.chip.wear_differential() >= 0
        assert ssc.engine.wear.config.static_threshold == 4
