"""Unit tests for the SSD device wrapper."""

import random

import pytest

from repro.flash.geometry import FlashGeometry
from repro.ftl.ssd import SSD


class TestInterface:
    def test_capacity_properties(self, ssd):
        assert ssd.capacity_pages == ssd.ftl.logical_pages
        assert ssd.capacity_bytes == ssd.capacity_pages * 4096

    def test_read_write_trim(self, ssd):
        ssd.write(5, "data")
        assert ssd.is_mapped(5)
        data, _ = ssd.read(5)
        assert data == "data"
        ssd.trim(5)
        assert not ssd.is_mapped(5)

    def test_stats_exposed(self, ssd):
        ssd.write(1, "x")
        assert ssd.stats.user_writes == 1

    def test_dirty_flag_passthrough(self, ssd):
        ssd.write(1, "x", dirty=True)
        ssd.set_page_dirty(1, False)
        ppn = ssd.ftl.log_map.lookup(1)
        assert not ssd.chip.page(ppn).oob.dirty


class TestRecoveryAccounting:
    def test_oob_scan_proportional_to_mapping(self):
        small = SSD(FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8))
        large = SSD(FlashGeometry(planes=2, blocks_per_plane=64, pages_per_block=8))
        assert large.oob_recovery_scan_us() > small.oob_recovery_scan_us()

    def test_oob_scan_formula(self, ssd):
        oob = ssd.chip.geometry.oob_bytes
        table = ssd.device_memory_bytes()
        reads = -(-table // oob)
        assert ssd.oob_recovery_scan_us() == pytest.approx(
            reads * ssd.chip.timing.oob_read_cost()
        )

    def test_device_memory_independent_of_contents(self, ssd):
        before = ssd.device_memory_bytes()
        rng = random.Random(1)
        for i in range(500):
            ssd.write(rng.randrange(ssd.capacity_pages), i)
        assert ssd.device_memory_bytes() == before
