"""Tests for the SSC extensions: NVRAM logging, clean shutdown,
exists_detailed metadata, and the explicit-eviction write-back policy."""

import random

import pytest

from repro.disk.model import Disk
from repro.errors import NotPresentError
from repro.flash.geometry import FlashGeometry
from repro.manager.writeback import FlashTierWBManager, WriteBackConfig
from repro.ssc.device import SolidStateCache, SSCConfig
from repro.ssc.log import NvramOperationLog


@pytest.fixture
def geometry():
    return FlashGeometry(planes=4, blocks_per_plane=32, pages_per_block=16)


class TestNvram:
    def test_nvram_log_selected(self, geometry):
        ssc = SolidStateCache(geometry, config=SSCConfig(nvram=True))
        assert isinstance(ssc.oplog, NvramOperationLog)

    def test_nvram_flushes_are_free(self, geometry):
        """§6.4: with NVRAM, consistency imposes no performance cost."""
        flash = SolidStateCache(geometry, config=SSCConfig())
        nvram = SolidStateCache(geometry, config=SSCConfig(nvram=True))
        rng = random.Random(1)
        # Clustered dirty set: fits the cache at erase-block granularity.
        sequence = [(rng.randrange(1200), i) for i in range(1500)]
        flash_cost = sum(flash.write_dirty(lbn, v) for lbn, v in sequence)
        nvram_cost = sum(nvram.write_dirty(lbn, v) for lbn, v in sequence)
        assert nvram_cost < flash_cost
        assert nvram.oplog.pages_written == 0

    def test_nvram_loses_nothing_at_crash(self, geometry):
        ssc = SolidStateCache(geometry, config=SSCConfig(nvram=True))
        ssc.write_clean(5, "clean")   # would be buffered on flash logs
        lost = ssc.crash()
        assert lost == 0
        ssc.recover()
        data, _ = ssc.read(5)  # buffered-clean loss cannot happen
        assert data == "clean"

    def test_nvram_preserves_guarantees(self, geometry):
        ssc = SolidStateCache(geometry, config=SSCConfig(nvram=True))
        rng = random.Random(2)
        shadow = {}
        for i in range(2500):
            lbn = rng.randrange(30_000)
            shadow[lbn] = ("n", i)
            ssc.write_clean(lbn, shadow[lbn])
        ssc.crash()
        ssc.recover()
        for lbn, expected in shadow.items():
            try:
                data, _ = ssc.read(lbn)
            except NotPresentError:
                continue  # silently evicted
            assert data == expected


class TestShutdown:
    def test_shutdown_checkpoints(self, geometry):
        ssc = SolidStateCache.ssc(geometry)
        for i in range(300):
            ssc.write_dirty(i, i)
        cost = ssc.shutdown()
        assert cost > 0
        assert ssc.checkpoints.latest() is not None
        assert ssc.oplog.flushed_bytes == 0  # log truncated

    def test_warm_restart_is_fast_and_complete(self, geometry):
        ssc = SolidStateCache.ssc(geometry)
        for i in range(400):
            ssc.write_dirty(i, ("warm", i))
        ssc.shutdown()
        ssc.crash()  # power-off after clean shutdown
        recovery_us = ssc.recover()
        # Recovery replays an (empty) log plus the checkpoint read.
        assert recovery_us < 100_000
        for i in range(0, 400, 13):
            data, _ = ssc.read(i)
            assert data == ("warm", i)

    def test_shutdown_without_consistency_is_noop(self, geometry):
        ssc = SolidStateCache(geometry, config=SSCConfig(consistency=False))
        ssc.write_clean(1, "x")
        assert ssc.shutdown() == 0.0


class TestExistsDetailed:
    def test_reports_dirty_flag_and_age(self, geometry):
        ssc = SolidStateCache.ssc(geometry)
        ssc.write_clean(10, "a")
        ssc.write_dirty(20, "b")
        entries, cost = ssc.exists_detailed(0, 100)
        assert cost == pytest.approx(ssc.chip.timing.control_delay_us)
        by_lbn = {lbn: (dirty, seq) for lbn, dirty, seq in entries}
        assert by_lbn[10][0] is False
        assert by_lbn[20][0] is True
        # Block 20 was written later: its sequence stamp must be higher.
        assert by_lbn[20][1] > by_lbn[10][1]

    def test_range_filter(self, geometry):
        ssc = SolidStateCache.ssc(geometry)
        for lbn in (5, 50, 500):
            ssc.write_clean(lbn, lbn)
        entries, _ = ssc.exists_detailed(10, 100)
        assert [entry[0] for entry in entries] == [50]


class TestEvictReclaimPolicy:
    def make_manager(self, geometry, reclaim):
        ssc = SolidStateCache.ssc(geometry)
        disk = Disk(100_000)
        manager = FlashTierWBManager(
            ssc, disk, WriteBackConfig(dirty_threshold=0.05, reclaim=reclaim)
        )
        return manager, ssc, disk

    def test_evict_mode_removes_blocks(self, geometry):
        manager, ssc, disk = self.make_manager(geometry, "evict")
        rng = random.Random(3)
        for i in range(2000):
            manager.write(rng.randrange(5000), ("e", i))
        assert manager.stats.evictions > 0
        assert manager.stats.cleans == 0

    def test_clean_mode_keeps_blocks_warm(self, geometry):
        """After write-back, clean mode keeps data readable from cache
        while evict mode forces disk reads — clean must hit more."""
        results = {}
        for reclaim in ("clean", "evict"):
            manager, ssc, disk = self.make_manager(geometry, reclaim)
            rng = random.Random(4)
            lbns = [rng.randrange(2000) for _ in range(1500)]
            for i, lbn in enumerate(lbns):
                manager.write(lbn, (reclaim, i))
            for lbn in set(lbns):
                manager.read(lbn)
            results[reclaim] = manager.stats.read_hits
        assert results["clean"] >= results["evict"]

    def test_integrity_in_evict_mode(self, geometry):
        manager, ssc, disk = self.make_manager(geometry, "evict")
        rng = random.Random(5)
        shadow = {}
        for i in range(3000):
            lbn = rng.randrange(8000)
            if rng.random() < 0.6:
                shadow[lbn] = ("v", i)
                manager.write(lbn, shadow[lbn])
            else:
                data, _ = manager.read(lbn)
                assert data == shadow.get(lbn)

    def test_bad_reclaim_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            WriteBackConfig(reclaim="discard")
