"""Unit tests for repro.util.bitmap."""

import pytest
from hypothesis import given, strategies as st

from repro.util.bitmap import Bitmap


class TestBasics:
    def test_new_bitmap_is_empty(self):
        bitmap = Bitmap(16)
        assert bitmap.count() == 0
        assert bitmap.none()
        assert not bitmap.any()
        assert len(bitmap) == 16

    def test_set_and_test(self):
        bitmap = Bitmap(8)
        bitmap.set(3)
        assert bitmap.test(3)
        assert not bitmap.test(2)
        assert bitmap.count() == 1

    def test_set_is_idempotent(self):
        bitmap = Bitmap(8)
        bitmap.set(5)
        bitmap.set(5)
        assert bitmap.count() == 1

    def test_clear(self):
        bitmap = Bitmap(8)
        bitmap.set(5)
        bitmap.clear(5)
        assert not bitmap.test(5)
        assert bitmap.count() == 0

    def test_clear_unset_bit_is_noop(self):
        bitmap = Bitmap(8)
        bitmap.clear(1)
        assert bitmap.count() == 0

    def test_zero_size_allowed(self):
        bitmap = Bitmap(0)
        assert bitmap.count() == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(-1)

    @pytest.mark.parametrize("index", [-1, 8, 100])
    def test_out_of_range_rejected(self, index):
        bitmap = Bitmap(8)
        with pytest.raises(IndexError):
            bitmap.set(index)
        with pytest.raises(IndexError):
            bitmap.test(index)


class TestRank:
    def test_count_below_empty(self):
        bitmap = Bitmap(32)
        assert bitmap.count_below(10) == 0

    def test_count_below_counts_strictly_below(self):
        bitmap = Bitmap(32)
        for index in (0, 3, 7, 8):
            bitmap.set(index)
        assert bitmap.count_below(0) == 0
        assert bitmap.count_below(3) == 1
        assert bitmap.count_below(4) == 2
        assert bitmap.count_below(8) == 3
        assert bitmap.count_below(9) == 4

    def test_rank_matches_manual_count(self):
        bitmap = Bitmap(64)
        bits = [1, 5, 17, 18, 40, 63]
        for bit in bits:
            bitmap.set(bit)
        for threshold in range(64):
            assert bitmap.count_below(threshold) == sum(1 for b in bits if b < threshold)


class TestBulkOps:
    def test_set_all_and_clear_all(self):
        bitmap = Bitmap(10)
        bitmap.set_all()
        assert bitmap.count() == 10
        bitmap.clear_all()
        assert bitmap.count() == 0

    def test_iter_set_ascending(self):
        bitmap = Bitmap(64)
        for bit in (9, 1, 33):
            bitmap.set(bit)
        assert list(bitmap.iter_set()) == [1, 9, 33]

    def test_roundtrip_through_int(self):
        bitmap = Bitmap(16)
        for bit in (0, 7, 15):
            bitmap.set(bit)
        clone = Bitmap.from_int(16, bitmap.to_int())
        assert clone == bitmap

    def test_from_int_rejects_overwide_pattern(self):
        with pytest.raises(ValueError):
            Bitmap.from_int(4, 1 << 5)

    def test_copy_is_independent(self):
        bitmap = Bitmap(8)
        bitmap.set(2)
        clone = bitmap.copy()
        clone.set(3)
        assert not bitmap.test(3)
        assert clone.test(2)

    def test_equality(self):
        a, b = Bitmap(8), Bitmap(8)
        a.set(1)
        b.set(1)
        assert a == b
        b.set(2)
        assert a != b
        assert a != Bitmap(9)


@given(st.sets(st.integers(min_value=0, max_value=127)))
def test_property_count_matches_set_size(bits):
    bitmap = Bitmap(128)
    for bit in bits:
        bitmap.set(bit)
    assert bitmap.count() == len(bits)
    assert sorted(bits) == list(bitmap.iter_set())


@given(
    st.sets(st.integers(min_value=0, max_value=63)),
    st.integers(min_value=0, max_value=63),
)
def test_property_rank_consistent(bits, threshold):
    bitmap = Bitmap(64)
    for bit in bits:
        bitmap.set(bit)
    assert bitmap.count_below(threshold) == len([b for b in bits if b < threshold])
