"""Unit coverage of the sharding module's edges.

The differential/property/crash suites exercise the hot paths; these
tests pin the construction-time validation, the chip/engine view
plumbing the replay engine depends on, and the ``ShardedSSD`` striping
used by the native baseline.
"""

import pytest

from repro.core.sharding import (
    ShardedSSC,
    ShardedSSD,
    ShardRouter,
)
from repro.errors import ConfigError, NotPresentError
from repro.flash.geometry import FlashGeometry
from repro.ftl.hybrid import HybridFTLConfig
from repro.ftl.ssd import SSD
from repro.sim.crash import CrashInjector
from repro.ssc.device import SolidStateCache, SSCConfig

GEOMETRY = FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8)


def make_array(shards: int = 2, **router_kwargs) -> ShardedSSC:
    return ShardedSSC(
        [SolidStateCache(GEOMETRY, config=SSCConfig()) for _ in range(shards)],
        **router_kwargs,
    )


def make_ssd_array(shards: int = 2) -> ShardedSSD:
    return ShardedSSD(
        [SSD(geometry=GEOMETRY, config=HybridFTLConfig()) for _ in range(shards)]
    )


class TestRouterValidation:
    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigError):
            ShardRouter(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigError):
            ShardRouter(2, "round-robin")

    def test_rejects_bad_pages_per_block(self):
        with pytest.raises(ConfigError):
            ShardRouter(2, "stripe", 0)

    def test_group_of(self):
        router = ShardRouter(3, "stripe", pages_per_block=8)
        assert router.group_of(7) == 0
        assert router.group_of(8) == 1

    def test_repr(self):
        assert "policy='hash'" in repr(ShardRouter(2, "hash"))


class TestArrayValidation:
    def test_rejects_empty_array(self):
        with pytest.raises(ConfigError):
            ShardedSSC([])
        with pytest.raises(ConfigError):
            ShardedSSD([])

    def test_rejects_heterogeneous_geometry(self):
        other = FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=16)
        with pytest.raises(ConfigError):
            ShardedSSC([
                SolidStateCache(GEOMETRY, config=SSCConfig()),
                SolidStateCache(other, config=SSCConfig()),
            ])

    def test_rejects_mismatched_router(self):
        with pytest.raises(ConfigError):
            make_array(2, router=ShardRouter(3))


class TestArraySurface:
    def test_identity_and_introspection(self):
        array = make_array(3)
        assert array.name == "array[3]"
        assert array.config is array.shards[0].config
        assert array.capacity_pages == 3 * array.shards[0].capacity_pages
        assert "shards=3" in repr(array)
        assert "ShardRouter" not in repr(array.engine)
        assert "chips=3" in repr(array.chip)

    def test_contains_and_dirty_route(self):
        array = make_array(2)
        array.write_dirty(5, "d5")
        owner = array.shard_of(5)
        assert array.contains(5) and owner.contains(5)
        assert array.is_dirty(5)
        other = array.shards[1 - array.router.shard_of(5)]
        assert not other.contains(5)

    def test_exists_detailed_merges_sorted(self):
        array = make_array(2)
        for lbn in (3, 8, 21):  # groups 0, 1, 2 — both shards hold some
            array.write_dirty(lbn, f"d{lbn}")
        entries, cost = array.exists_detailed(0, 64)
        assert [entry[0] for entry in entries] == [3, 8, 21]
        assert all(entry[1] for entry in entries)
        assert cost == max(
            shard.exists_detailed(0, 64)[1] for shard in array.shards
        )

    def test_shutdown_checkpoints_every_member(self):
        array = make_array(2)
        array.write_dirty(0, "a")
        array.write_dirty(8, "b")
        cost = array.shutdown()
        assert cost > 0
        assert all(
            shard.checkpoints.latest() is not None for shard in array.shards
        )

    def test_last_recovery_discarded_sums(self):
        array = make_array(2)
        array.write_dirty(0, "a")
        array.write_dirty(8, "b")
        array.crash()
        array.recover()
        assert array.last_recovery_discarded == sum(
            shard.last_recovery_discarded for shard in array.shards
        )

    def test_hash_policy_routes_reads_back(self):
        array = make_array(4, routing="hash")
        for lbn in range(0, 256, 7):
            array.write_clean(lbn, ("h", lbn))
        for lbn in range(0, 256, 7):
            assert array.read(lbn)[0] == ("h", lbn)

    def test_injector_fans_out_to_all_members(self):
        array = make_array(2)
        injector = CrashInjector()
        array.attach_injector(injector)
        array.write_dirty(0, "a")   # shard 0 boundary
        array.write_dirty(8, "b")   # shard 1 boundary
        assert injector.ticks >= 2


class TestArrayWidePowerFailure:
    """A CrashError from any member op must power-fail the whole array
    — otherwise surviving members keep volatile state no real power cut
    leaves behind, and recovery would silently diverge from it."""

    OPS = ["write_clean", "evict", "clean", "checkpoint_now", "shutdown"]

    @pytest.mark.parametrize("op", OPS)
    def test_crash_during_op_fails_every_shard(self, op):
        from repro.errors import CrashError

        array = ShardedSSC([
            SolidStateCache(GEOMETRY, config=SSCConfig(group_commit_ops=1))
            for _ in range(2)
        ])
        for lbn in (0, 8, 16, 24):     # both shards hold dirty state
            array.write_dirty(lbn, f"d{lbn}")
        injector = CrashInjector()
        array.attach_injector(injector)
        injector.arm(after_events=0)   # next durability boundary fires
        with pytest.raises(CrashError):
            if op == "write_clean":
                array.write_clean(0, "replacement")  # replace => sync
            elif op == "evict":
                array.evict(0)
            elif op == "clean":
                array.clean(0)
            elif op == "checkpoint_now":
                array.checkpoint_now()
            else:
                array.shutdown()
        assert all(shard._crashed for shard in array.shards)
        array.recover()
        assert all(not shard._crashed for shard in array.shards)


class TestEngineView:
    def test_aggregates_match_array_methods(self):
        array = make_array(2)
        for lbn in range(0, 64, 3):
            array.write_dirty(lbn, ("e", lbn))
        assert array.engine.pages_per_block == GEOMETRY.pages_per_block
        assert array.engine.cached_blocks() == array.cached_blocks()
        assert array.engine.device_memory_bytes() == array.device_memory_bytes()
        assert array.engine.stats.user_writes == sum(
            shard.engine.stats.user_writes for shard in array.shards
        )


class TestChipView:
    def test_plane_for_resource_edges(self):
        array = make_array(2)
        view = array.chip
        assert view.plane_for_resource("plane:0") is None      # unsharded key
        assert view.plane_for_resource("s9:plane:0") is None   # no such shard
        assert view.plane_for_resource("s0:log") is None       # not a plane
        assert view.plane_for_resource("s0:plane:99") is None  # no such plane
        plane = view.plane_for_resource("s1:plane:1")
        assert plane is array.shards[1].chip.planes[1]

    def test_geometry_timing_planes_come_from_shard_zero(self):
        array = make_array(2)
        assert array.chip.geometry is array.shards[0].chip.geometry
        assert array.chip.timing is array.shards[0].chip.timing
        assert array.chip.planes is array.shards[0].chip.planes

    def test_recorder_fans_out_and_availability_resets(self):
        from repro.sim.completion import OpRecorder

        array = make_array(2)
        recorder = OpRecorder()
        array.chip.op_recorder = recorder
        assert array.chip.op_recorder is recorder
        assert all(
            shard.chip.op_recorder is recorder for shard in array.shards
        )
        mark = recorder.begin()
        array.write_dirty(0, "a")   # shard 0
        array.write_dirty(8, "b")   # shard 1
        ops = recorder.end(mark)
        assert ops  # both members report through the one recorder
        array.chip.reset_availability()

    def test_wear_and_free_blocks_aggregate(self):
        array = make_array(2)
        for lbn in range(0, 128):
            array.write_clean(lbn, ("w", lbn))
        assert array.chip.total_erases() == sum(
            shard.chip.total_erases() for shard in array.shards
        )
        assert array.chip.free_blocks_total() == sum(
            shard.chip.free_blocks_total() for shard in array.shards
        )
        assert array.chip.wear_differential() >= max(
            shard.chip.wear_differential() for shard in array.shards
        ) - 1


class TestShardedSSD:
    def test_dense_striping_is_a_bijection(self):
        array = make_ssd_array(2)
        span = min(64, array.capacity_pages)
        for lpn in range(span):
            array.write(lpn, ("p", lpn))
        for lpn in range(span):
            assert array.read(lpn)[0] == ("p", lpn)
        # Each member saw an equal slice of the dense space.
        per_member = [
            sum(1 for lpn in range(span) if array._route(lpn)[0] is ssd)
            for ssd in array.ssds
        ]
        assert per_member[0] == per_member[1] == span // 2

    def test_capacity_is_n_times_min_member(self):
        array = make_ssd_array(3)
        member = min(ssd.capacity_pages for ssd in array.ssds)
        assert array.capacity_pages == 3 * member
        assert array.capacity_bytes == array.capacity_pages * GEOMETRY.page_size

    def test_trim_and_is_mapped_route(self):
        array = make_ssd_array(2)
        array.write(10, "ten")
        assert array.is_mapped(10)
        array.trim(10)
        assert not array.is_mapped(10)
        assert not array.is_mapped(11)

    def test_dirty_flag_roundtrip(self):
        array = make_ssd_array(2)
        array.write(4, "x", dirty=True)
        ssd, local = array._route(4)
        location = ssd.ftl.log_map.lookup(local)
        assert ssd.chip.page(location).oob.dirty
        array.set_page_dirty(4, False)
        assert not ssd.chip.page(location).oob.dirty

    def test_memory_sums_and_scan_is_max(self):
        array = make_ssd_array(2)
        for lpn in range(32):
            array.write(lpn, lpn)
        assert array.device_memory_bytes() == sum(
            ssd.device_memory_bytes() for ssd in array.ssds
        )
        assert array.oob_recovery_scan_us() == max(
            ssd.oob_recovery_scan_us() for ssd in array.ssds
        )
        assert array.background_collect(1_000.0) == max(
            ssd.background_collect(0.0) for ssd in array.ssds
        ) or array.background_collect(0.0) >= 0.0

    def test_stats_merge_and_repr(self):
        array = make_ssd_array(2)
        for lpn in range(16):
            array.write(lpn, lpn)
        assert array.stats.user_writes == sum(
            ssd.stats.user_writes for ssd in array.ssds
        )
        assert "ShardedSSD(shards=2" in repr(array)

    def test_injector_targeting(self):
        array = make_ssd_array(2)
        injector = CrashInjector()
        array.attach_injector(injector, only_shard=1)
        array.write(0, "a")   # member 0: no ticks
        before = injector.ticks
        array.write(1, "b")   # member 1 boundary
        assert injector.ticks > before or before == 0

        broadcast = CrashInjector()
        array.attach_injector(broadcast)
        array.write(2, "c")
        array.write(3, "d")
        assert broadcast.ticks >= 2


class TestSingleMemberArrayReads:
    def test_absent_read_raises(self):
        array = make_array(1)
        with pytest.raises(NotPresentError):
            array.read(12)
