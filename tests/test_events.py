"""Event scheduler and structured-completion unit tests."""

import pytest

from repro.sim import (
    Completion,
    DeviceOp,
    EventScheduler,
    OpRecorder,
    SimClock,
    plane_resource,
)


class TestSimClock:
    def test_advance_to_moves_forward(self):
        clock = SimClock()
        assert clock.advance_to(25.0) == 25.0
        assert clock.now_us == 25.0

    def test_advance_to_rejects_backwards(self):
        clock = SimClock(start_us=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)


class TestEventScheduler:
    def test_pops_in_time_order_and_advances_clock(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(30.0, "late")
        scheduler.schedule_at(10.0, "early")
        scheduler.schedule_at(20.0, "middle")
        assert [scheduler.pop().payload for _ in range(3)] == [
            "early", "middle", "late",
        ]
        assert scheduler.clock.now_us == 30.0

    def test_ties_break_by_schedule_order(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(5.0, "first")
        scheduler.schedule_at(5.0, "second")
        assert scheduler.pop().payload == "first"
        assert scheduler.pop().payload == "second"

    def test_rejects_past_times(self):
        scheduler = EventScheduler(SimClock(start_us=100.0))
        with pytest.raises(ValueError):
            scheduler.schedule_at(99.0)
        with pytest.raises(ValueError):
            scheduler.schedule_in(-1.0)

    def test_schedule_in_is_relative(self):
        scheduler = EventScheduler(SimClock(start_us=40.0))
        event = scheduler.schedule_in(10.0)
        assert event.time_us == 50.0

    def test_cancelled_events_are_skipped(self):
        scheduler = EventScheduler()
        doomed = scheduler.schedule_at(1.0, "doomed")
        scheduler.schedule_at(2.0, "kept")
        scheduler.cancel(doomed)
        assert len(scheduler) == 1
        assert scheduler.peek_time_us() == 2.0
        assert scheduler.pop().payload == "kept"

    def test_pop_when_idle_raises(self):
        with pytest.raises(IndexError):
            EventScheduler().pop()

    def test_run_until_idle_invokes_callables(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule_at(1.0, lambda event: seen.append(event.time_us))

        def chain(event):
            seen.append(event.time_us)
            scheduler.schedule_in(5.0, lambda e: seen.append(e.time_us))

        scheduler.schedule_at(2.0, chain)
        assert scheduler.run_until_idle() == 3
        assert seen == [1.0, 2.0, 7.0]


class TestOpRecorder:
    def test_inactive_recorder_drops_ops(self):
        recorder = OpRecorder()
        recorder.record("disk", "read", 100.0)
        mark = recorder.begin()
        assert recorder.end(mark) == ()

    def test_capture_brackets_ops(self):
        recorder = OpRecorder()
        mark = recorder.begin()
        recorder.record("disk", "read", 100.0)
        recorder.record(plane_resource(0), "page_write", 200.0)
        ops = recorder.end(mark)
        assert [op.resource for op in ops] == ["disk", "plane:0"]

    def test_nested_captures_share_ops(self):
        recorder = OpRecorder()
        outer = recorder.begin()
        recorder.record("disk", "read", 1.0)
        inner = recorder.begin()
        recorder.record("plane:1", "page_read", 2.0)
        assert [op.duration_us for op in recorder.end(inner)] == [2.0]
        # The outer capture still sees the inner capture's operations.
        assert [op.duration_us for op in recorder.end(outer)] == [1.0, 2.0]

    def test_unbalanced_end_raises(self):
        with pytest.raises(RuntimeError):
            OpRecorder().end(0)


class TestCompletion:
    def test_behaves_as_float(self):
        completion = Completion(150.0)
        assert completion == 150.0
        assert completion + 50.0 == 200.0
        assert sorted([Completion(3.0), Completion(1.0)])[0] == 1.0

    def test_breakdown_properties(self):
        ops = (
            DeviceOp("plane:0", "page_read", 25.0),
            DeviceOp("disk", "read", 2000.0),
        )
        completion = Completion(2075.0, ops, hit=False)
        assert completion.latency_us == 2075.0
        assert completion.disk_us == 2000.0
        assert completion.flash_us == 25.0
        assert completion.cache_us == 75.0
        assert completion.overhead_us == 50.0
        assert completion.hit is False

    def test_overhead_never_negative(self):
        completion = Completion(10.0, (DeviceOp("disk", "read", 15.0),))
        assert completion.overhead_us == 0.0
