"""Each CrashPoint fires through a real device path.

These are the unit-level guarantees under the crash-state explorer:
arming the injector at any of the four durability boundaries interrupts
the corresponding device operation, the device transitions into the
crashed state by itself, and recovery lands in the contractually right
place (e.g. a write whose log flush completed must survive; one whose
mapping commit was lost must not).
"""

import pytest

from repro.errors import CrashError, NotPresentError, RecoveryError
from repro.sim.crash import CrashInjector, CrashPoint
from repro.ssc.device import SolidStateCache, SSCConfig
from repro.ssc.engine import EvictionPolicy


def make_ssc(small_geometry, **overrides):
    config = SSCConfig(policy=EvictionPolicy.UTIL, **overrides)
    ssc = SolidStateCache(small_geometry, config=config)
    injector = CrashInjector()
    ssc.attach_injector(injector)
    return ssc, injector


class TestEachPointFires:
    def test_before_data_write(self, small_geometry):
        ssc, injector = make_ssc(small_geometry)
        injector.arm(at=CrashPoint.BEFORE_DATA_WRITE)
        with pytest.raises(CrashError):
            ssc.write_dirty(3, "v1")
        assert injector.fired
        assert injector.fired_point is CrashPoint.BEFORE_DATA_WRITE
        # Nothing reached flash: the block must be absent after recovery.
        ssc.recover()
        with pytest.raises(NotPresentError):
            ssc.read(3)

    def test_after_data_write(self, small_geometry):
        ssc, injector = make_ssc(small_geometry)
        injector.arm(at=CrashPoint.AFTER_DATA_WRITE)
        with pytest.raises(CrashError):
            ssc.write_dirty(3, "v1")
        assert injector.fired_point is CrashPoint.AFTER_DATA_WRITE
        # Data page durable but its mapping commit was lost with the
        # buffer: the orphan page must not surface.
        ssc.recover()
        with pytest.raises(NotPresentError):
            ssc.read(3)

    def test_after_log_flush(self, small_geometry):
        ssc, injector = make_ssc(small_geometry)
        injector.arm(at=CrashPoint.AFTER_LOG_FLUSH)
        with pytest.raises(CrashError):
            ssc.write_dirty(3, "v1")
        assert injector.fired_point is CrashPoint.AFTER_LOG_FLUSH
        # write-dirty's synchronous commit completed before the crash:
        # the block MUST survive, still dirty, with the written value.
        ssc.recover()
        value, _completion = ssc.read(3)
        assert value == "v1"
        assert ssc.is_dirty(3)

    def test_after_checkpoint(self, small_geometry):
        ssc, injector = make_ssc(small_geometry)
        ssc.write_dirty(3, "v1")
        injector.arm(at=CrashPoint.AFTER_CHECKPOINT)
        with pytest.raises(CrashError):
            ssc.checkpoint_now()
        assert injector.fired_point is CrashPoint.AFTER_CHECKPOINT
        ssc.recover()
        value, _completion = ssc.read(3)
        assert value == "v1"
        assert ssc.is_dirty(3)


class TestCrashedStateTransition:
    def test_device_refuses_ops_until_recovered(self, small_geometry):
        ssc, injector = make_ssc(small_geometry)
        injector.arm(at=CrashPoint.AFTER_DATA_WRITE)
        with pytest.raises(CrashError):
            ssc.write_dirty(3, "v1")
        # The device transitioned into the crashed state on its own.
        with pytest.raises(RecoveryError):
            ssc.read(3)
        with pytest.raises(RecoveryError):
            ssc.write_dirty(4, "v2")
        ssc.recover()
        ssc.write_dirty(4, "v2")  # usable again

    def test_buffered_records_lost_at_crash(self, small_geometry):
        ssc, injector = make_ssc(small_geometry, clean_durability="buffered")
        ssc.write_clean(3, "v1")  # buffered: records volatile
        assert ssc.oplog.pending() > 0
        injector.arm(at=CrashPoint.BEFORE_DATA_WRITE)
        with pytest.raises(CrashError):
            ssc.write_clean(4, "v2")
        assert ssc.oplog.pending() == 0  # buffer lost with power
        ssc.recover()
        with pytest.raises(NotPresentError):
            ssc.read(3)


class TestTickEnumeration:
    def test_every_boundary_counted(self, small_geometry):
        """Unarmed ticks enumerate the workload's durability boundaries."""
        ssc, injector = make_ssc(small_geometry)
        for lbn in range(6):
            ssc.write_dirty(lbn, f"v{lbn}")
        ssc.checkpoint_now()
        counts = injector.point_counts
        # Each write programs one page (BEFORE + AFTER) and sync-flushes.
        assert counts[CrashPoint.BEFORE_DATA_WRITE] == 6
        assert counts[CrashPoint.AFTER_DATA_WRITE] == 6
        assert counts[CrashPoint.AFTER_LOG_FLUSH] >= 6
        # At least the explicit checkpoint; the log-ratio policy may add more.
        assert counts[CrashPoint.AFTER_CHECKPOINT] >= 1
        assert injector.ticks == sum(counts.values())
        assert not injector.fired

    def test_countdown_selects_boundary(self, small_geometry):
        """after_events=k crashes at the (k+1)-th boundary exactly."""
        ssc, injector = make_ssc(small_geometry)
        injector.arm(after_events=2)  # boundary 3 = AFTER_LOG_FLUSH of write 1
        with pytest.raises(CrashError):
            for lbn in range(6):
                ssc.write_dirty(lbn, f"v{lbn}")
        assert injector.ticks == 3
        assert injector.fired_point is CrashPoint.AFTER_LOG_FLUSH
        ssc.recover()
        value, _completion = ssc.read(0)
        assert value == "v0"
