"""Property layer for the sharded cache array.

Three families of properties pin the sharding design down:

1. **Routing is a total partition** — every LBN maps to exactly one
   shard, deterministically, and all pages of one erase group land on
   the same shard (for both policies), so block-level mapping density
   survives sharding.
2. **Shard count is invisible to logical contents** — the same
   operation sequence applied to arrays of 1, 2, 4 and 7 shards leaves
   the identical logical cache: same cached LBNs, same values, same
   dirty set (``exists``).  Sharding may move blocks between devices,
   never change what the cache holds.
3. **Stats aggregation is a commutative monoid** — ``merge()`` on
   :class:`ManagerStats`, :class:`FTLStats` and :class:`FlashStats` is
   associative and commutative with the default-constructed value as
   unit, which is what makes per-shard aggregation order-independent.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import NotPresentError
from repro.core.sharding import ShardedSSC, ShardRouter, mix64
from repro.flash.chip import FlashStats
from repro.flash.geometry import FlashGeometry
from repro.ftl.base import FTLStats
from repro.manager.base import ManagerStats
from repro.ssc.device import SolidStateCache, SSCConfig

SHARD_COUNTS = (1, 2, 4, 7)
LBN_RANGE = 64
PAGES_PER_BLOCK = 8


def build_array(shards: int) -> ShardedSSC:
    """An array whose members are each big enough for the whole op
    budget — no silent eviction, so logical contents depend only on
    the issued operations, never on shard-local capacity pressure."""
    members = [
        SolidStateCache(
            FlashGeometry(planes=2, blocks_per_plane=16,
                          pages_per_block=PAGES_PER_BLOCK),
            config=SSCConfig(),
        )
        for _ in range(shards)
    ]
    return ShardedSSC(members)


# ----------------------------------------------------------------------
# 1. Routing is a total partition at group granularity
# ----------------------------------------------------------------------

policies = st.sampled_from(["stripe", "hash"])


@given(
    lbn=st.integers(min_value=0, max_value=1 << 40),
    shards=st.integers(min_value=1, max_value=16),
    policy=policies,
)
@settings(max_examples=200, deadline=None)
def test_routing_total_and_deterministic(lbn, shards, policy):
    router = ShardRouter(shards, policy, PAGES_PER_BLOCK)
    shard = router.shard_of(lbn)
    assert 0 <= shard < shards
    assert router.shard_of(lbn) == shard  # deterministic


@given(
    group=st.integers(min_value=0, max_value=1 << 30),
    shards=st.integers(min_value=1, max_value=16),
    policy=policies,
)
@settings(max_examples=200, deadline=None)
def test_routing_group_granular(group, shards, policy):
    """Every page of one erase group routes to the same shard."""
    router = ShardRouter(shards, policy, PAGES_PER_BLOCK)
    base = group * PAGES_PER_BLOCK
    owners = {router.shard_of(base + offset) for offset in range(PAGES_PER_BLOCK)}
    assert len(owners) == 1


@given(shards=st.integers(min_value=1, max_value=16))
@settings(max_examples=50, deadline=None)
def test_stripe_round_robins_groups(shards):
    router = ShardRouter(shards, "stripe", PAGES_PER_BLOCK)
    for group in range(3 * shards):
        assert router.shard_of(group * PAGES_PER_BLOCK) == group % shards


def test_mix64_is_a_bijection_sample():
    # The finalizer is invertible on 64-bit values; a collision in a
    # large sample would mean it is not mixing (and would skew shard
    # load).  2^16 distinct inputs must give 2^16 distinct outputs.
    outputs = {mix64(value) for value in range(1 << 16)}
    assert len(outputs) == 1 << 16


# ----------------------------------------------------------------------
# 2. Logical contents are invariant in the shard count
# ----------------------------------------------------------------------

operations = st.lists(
    st.tuples(
        st.sampled_from(["write_dirty", "write_clean", "clean", "evict"]),
        st.integers(min_value=0, max_value=LBN_RANGE - 1),
    ),
    max_size=25,
)


def apply_ops(array: ShardedSSC, ops) -> None:
    for index, (kind, lbn) in enumerate(ops):
        if kind == "write_dirty":
            array.write_dirty(lbn, ("v", lbn, index))
        elif kind == "write_clean":
            array.write_clean(lbn, ("v", lbn, index))
        elif kind == "clean":
            array.clean(lbn)
        else:
            array.evict(lbn)


def logical_state(array: ShardedSSC):
    """Everything a host can observe about contents, as one value."""
    contents = {}
    for lbn in range(LBN_RANGE):
        try:
            value, _completion = array.read(lbn)
        except NotPresentError:
            continue
        contents[lbn] = (value, array.is_dirty(lbn))
    dirty, _cost = array.exists(0, LBN_RANGE)
    cached = sorted(array.engine.iter_cached_lbns())
    return contents, dirty, cached, array.cached_blocks()


@given(ops=operations)
@settings(max_examples=30, deadline=None)
def test_contents_invariant_across_shard_counts(ops):
    reference = None
    for shards in SHARD_COUNTS:
        array = build_array(shards)
        apply_ops(array, ops)
        state = logical_state(array)
        if reference is None:
            reference = state
        else:
            assert state == reference, f"shards={shards} diverged"


@given(ops=operations, policy=policies)
@settings(max_examples=20, deadline=None)
def test_contents_invariant_across_policies(ops, policy):
    """The routing policy relocates blocks, never changes contents."""
    members = [
        SolidStateCache(
            FlashGeometry(planes=2, blocks_per_plane=16,
                          pages_per_block=PAGES_PER_BLOCK),
            config=SSCConfig(),
        )
        for _ in range(4)
    ]
    array = ShardedSSC(members, routing=policy)
    apply_ops(array, ops)

    baseline = build_array(1)
    apply_ops(baseline, ops)
    assert logical_state(array) == logical_state(baseline)


@given(ops=operations)
@settings(max_examples=15, deadline=None)
def test_every_cached_block_lives_on_its_routed_shard(ops):
    array = build_array(4)
    apply_ops(array, ops)
    for shard_id, shard in enumerate(array.shards):
        for lbn in shard.engine.iter_cached_lbns():
            assert array.router.shard_of(lbn) == shard_id


# ----------------------------------------------------------------------
# 3. merge() is a commutative monoid
# ----------------------------------------------------------------------

counters = st.integers(min_value=0, max_value=1 << 30)


def _stats_strategy(cls):
    fields = list(vars(cls()).keys())
    return st.builds(
        lambda values: cls(**dict(zip(fields, values))),
        st.tuples(*[counters for _ in fields]),
    )


manager_stats = _stats_strategy(ManagerStats)
ftl_stats = _stats_strategy(FTLStats)
flash_stats = _stats_strategy(FlashStats)


@given(a=manager_stats, b=manager_stats, c=manager_stats)
@settings(max_examples=50, deadline=None)
def test_manager_stats_merge_monoid(a, b, c):
    assert vars(a.merge(b)) == vars(b.merge(a))
    assert vars(a.merge(b).merge(c)) == vars(a.merge(b.merge(c)))
    assert vars(a.merge(ManagerStats())) == vars(a)
    assert vars(ManagerStats().merge(a)) == vars(a)


@given(a=ftl_stats, b=ftl_stats, c=ftl_stats)
@settings(max_examples=50, deadline=None)
def test_ftl_stats_merge_monoid(a, b, c):
    assert vars(a.merge(b)) == vars(b.merge(a))
    assert vars(a.merge(b).merge(c)) == vars(a.merge(b.merge(c)))
    assert vars(a.merge(FTLStats())) == vars(a)


@given(a=flash_stats, b=flash_stats, c=flash_stats)
@settings(max_examples=50, deadline=None)
def test_flash_stats_merge_monoid(a, b, c):
    assert vars(a.merge(b)) == vars(b.merge(a))
    assert vars(a.merge(b).merge(c)) == vars(a.merge(b.merge(c)))
    assert vars(a.merge(FlashStats())) == vars(a)


@given(a=manager_stats, b=manager_stats)
@settings(max_examples=50, deadline=None)
def test_merge_never_mutates(a, b):
    before_a, before_b = dict(vars(a)), dict(vars(b))
    a.merge(b)
    assert vars(a) == before_a
    assert vars(b) == before_b
