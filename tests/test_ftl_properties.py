"""Property-based tests of the hybrid FTL's block-device contract.

Whatever garbage collection does internally, the FTL must behave
observationally like a dict: a read returns exactly the last value
written (or None after trim / before any write), and the free-block
pool never underflows.
"""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.ftl.hybrid import HybridFTL, HybridFTLConfig


def make_ftl():
    chip = FlashChip(FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8))
    return HybridFTL(chip, HybridFTLConfig())


class FTLMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ftl = make_ftl()
        self.shadow = {}
        self.counter = 0

    def _lpn(self, seed):
        return seed % self.ftl.logical_pages

    @rule(seed=st.integers(min_value=0))
    def write(self, seed):
        lpn = self._lpn(seed)
        self.counter += 1
        value = ("v", lpn, self.counter)
        self.ftl.write(lpn, value)
        self.shadow[lpn] = value

    @rule(seed=st.integers(min_value=0))
    def trim(self, seed):
        lpn = self._lpn(seed)
        self.ftl.trim(lpn)
        self.shadow.pop(lpn, None)

    @rule(seed=st.integers(min_value=0))
    def read(self, seed):
        lpn = self._lpn(seed)
        data, _cost = self.ftl.read(lpn)
        assert data == self.shadow.get(lpn)

    @invariant()
    def free_pool_never_empty(self):
        assert self.ftl.free_blocks() >= 1

    @invariant()
    def mapping_agrees_with_shadow(self):
        for lpn in list(self.shadow)[:5]:
            assert self.ftl.is_mapped(lpn)


FTLMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=80, deadline=None
)
TestFTLContract = FTLMachine.TestCase


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 10**6)), max_size=300))
def test_property_sequential_consistency(operations):
    """Linear scan of mixed writes/trims ends in a dict-consistent state."""
    ftl = make_ftl()
    shadow = {}
    for index, (is_trim, seed) in enumerate(operations):
        lpn = seed % ftl.logical_pages
        if is_trim:
            ftl.trim(lpn)
            shadow.pop(lpn, None)
        else:
            ftl.write(lpn, index)
            shadow[lpn] = index
    for lpn in {seed % ftl.logical_pages for _t, seed in operations}:
        data, _ = ftl.read(lpn)
        assert data == shadow.get(lpn)
