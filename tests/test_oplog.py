"""Unit tests for the SSC operation log."""

import pytest

from repro.flash.timing import TimingModel
from repro.ssc.log import (
    NullOperationLog,
    OperationLog,
    RECORD_BYTES,
    RecordKind,
)


@pytest.fixture
def oplog():
    return OperationLog(TimingModel(), page_size=4096, pages_per_block=64)


class TestAppendFlush:
    def test_sequence_numbers_monotonic(self, oplog):
        records = [oplog.append(RecordKind.INSERT_PAGE, i) for i in range(5)]
        seqs = [record.seq for record in records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_buffer_is_volatile_until_flush(self, oplog):
        oplog.append(RecordKind.INSERT_PAGE, 1, 2)
        assert oplog.pending() == 1
        assert oplog.last_flushed_seq == 0
        oplog.flush(sync=True)
        assert oplog.pending() == 0
        assert oplog.last_flushed_seq == 1

    def test_flush_cost_in_page_units(self, oplog):
        per_page = 4096 // RECORD_BYTES
        for i in range(per_page + 1):  # needs two pages
            oplog.append(RecordKind.INSERT_PAGE, i)
        cost = oplog.flush(sync=True)
        assert cost == pytest.approx(2 * TimingModel().write_cost())
        assert oplog.pages_written == 2

    def test_empty_flush_free(self, oplog):
        assert oplog.flush(sync=True) == 0.0
        assert oplog.sync_flushes == 0

    def test_sync_async_accounting(self, oplog):
        oplog.append(RecordKind.CLEAN, 1)
        oplog.flush(sync=False)
        oplog.append(RecordKind.INSERT_PAGE, 2)
        oplog.flush(sync=True)
        assert oplog.async_flushes == 1
        assert oplog.sync_flushes == 1

    def test_drop_buffer_simulates_crash(self, oplog):
        oplog.append(RecordKind.INSERT_PAGE, 1)
        oplog.flush(sync=True)
        oplog.append(RecordKind.INSERT_PAGE, 2)
        lost = oplog.drop_buffer()
        assert lost == 1
        assert [record.lbn for record in oplog.flushed] == [1]


class TestTruncation:
    def test_truncate_drops_covered_records(self, oplog):
        for i in range(10):
            oplog.append(RecordKind.INSERT_PAGE, i)
        oplog.flush(sync=True)
        oplog.truncate_through(5)
        assert [record.lbn for record in oplog.flushed] == list(range(5, 10))

    def test_records_after(self, oplog):
        for i in range(10):
            oplog.append(RecordKind.INSERT_PAGE, i)
        oplog.flush(sync=True)
        tail = oplog.records_after(7)
        assert [record.seq for record in tail] == [8, 9, 10]

    def test_replay_read_cost_scales(self, oplog):
        for i in range(1000):
            oplog.append(RecordKind.INSERT_PAGE, i)
        oplog.flush(sync=True)
        assert oplog.replay_read_cost(0) > oplog.replay_read_cost(900)
        assert oplog.replay_read_cost(1000) == 0.0


class TestNullLog:
    def test_disabled_log_is_free(self):
        null = NullOperationLog(TimingModel())
        null.append(RecordKind.INSERT_PAGE, 1)
        assert null.flush(sync=True) == 0.0
        assert null.pending() == 0
        assert not null.enabled
        assert null.truncate_through(100) == 0.0
