"""Unit tests for the SSD's dense mapping structures."""

import pytest

from repro.errors import InvalidAddressError
from repro.ftl.mapping import DenseBlockMap, DensePageMap, ENTRY_BYTES


class TestDensePageMap:
    def test_lookup_missing(self):
        table = DensePageMap(100)
        assert table.lookup(5) is None

    def test_insert_and_lookup(self):
        table = DensePageMap(100)
        assert table.insert(5, 42) is None
        assert table.lookup(5) == 42
        assert 5 in table

    def test_insert_returns_previous(self):
        table = DensePageMap(100)
        table.insert(5, 42)
        assert table.insert(5, 43) == 42
        assert table.lookup(5) == 43

    def test_remove(self):
        table = DensePageMap(100)
        table.insert(5, 42)
        assert table.remove(5) == 42
        assert table.remove(5) is None
        assert 5 not in table

    def test_len_and_items(self):
        table = DensePageMap(100)
        table.insert(1, 10)
        table.insert(2, 20)
        assert len(table) == 2
        assert dict(table.items()) == {1: 10, 2: 20}

    def test_memory_is_capacity_proportional(self):
        # The defining property of a dense table: memory does not depend
        # on occupancy (§2: "an SSD should optimize for a dense space").
        table = DensePageMap(1000)
        empty_bytes = table.memory_bytes()
        table.insert(1, 1)
        assert table.memory_bytes() == empty_bytes == 1000 * ENTRY_BYTES

    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidAddressError):
            DensePageMap(-1)


class TestDenseBlockMap:
    def test_insert_lookup_remove(self):
        table = DenseBlockMap(10)
        assert table.insert(3, 7) is None
        assert table.lookup(3) == 7
        assert table.insert(3, 8) == 7
        assert table.remove(3) == 8
        assert table.lookup(3) is None

    def test_memory_is_capacity_proportional(self):
        table = DenseBlockMap(50)
        assert table.memory_bytes() == 50 * ENTRY_BYTES
