"""Unit tests for repro.util.bloom."""

import random

import pytest

from repro.util.bloom import BloomFilter


class TestGuarantees:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_items=500, fp_rate=0.01)
        keys = random.Random(1).sample(range(10**9), 500)
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)

    def test_false_positive_rate_is_bounded(self):
        bloom = BloomFilter(expected_items=1000, fp_rate=0.01)
        rng = random.Random(2)
        members = set(rng.sample(range(10**9), 1000))
        for key in members:
            bloom.add(key)
        probes = [key for key in rng.sample(range(10**9, 2 * 10**9), 5000)]
        false_positives = sum(1 for key in probes if bloom.might_contain(key))
        # Allow generous slack over the target 1% rate.
        assert false_positives / len(probes) < 0.05

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(expected_items=10)
        assert not bloom.might_contain(123)

    def test_len_counts_adds(self):
        bloom = BloomFilter(expected_items=10)
        bloom.add(1)
        bloom.add(2)
        assert len(bloom) == 2

    def test_clear(self):
        bloom = BloomFilter(expected_items=10)
        bloom.add(7)
        bloom.clear()
        assert not bloom.might_contain(7)
        assert len(bloom) == 0

    def test_memory_scales_with_expected_items(self):
        small = BloomFilter(expected_items=100)
        large = BloomFilter(expected_items=10_000)
        assert large.memory_bytes() > small.memory_bytes()


class TestValidation:
    @pytest.mark.parametrize("items", [0, -5])
    def test_bad_expected_items(self, items):
        with pytest.raises(ValueError):
            BloomFilter(expected_items=items)

    @pytest.mark.parametrize("rate", [0.0, 1.0, -0.1, 2.0])
    def test_bad_fp_rate(self, rate):
        with pytest.raises(ValueError):
            BloomFilter(expected_items=10, fp_rate=rate)
