"""Unit tests for the SSC device's six-operation interface."""


import pytest

from repro.errors import ConfigError, NotPresentError, RecoveryError
from repro.ssc.device import SolidStateCache, SSCConfig
from repro.ssc.engine import EvictionPolicy


class TestConfig:
    def test_presets(self, medium_geometry):
        assert SolidStateCache.ssc(medium_geometry).config.policy is EvictionPolicy.UTIL
        assert SolidStateCache.ssc_r(medium_geometry).config.policy is EvictionPolicy.MERGE

    def test_bad_clean_durability(self):
        with pytest.raises(ConfigError):
            SSCConfig(clean_durability="whatever")

    @pytest.mark.parametrize("field,value", [
        ("group_commit_ops", 0),
        ("checkpoint_log_ratio", 0.0),
        ("checkpoint_interval_writes", 0),
    ])
    def test_bad_numeric_config(self, field, value):
        with pytest.raises(ConfigError):
            SSCConfig(**{field: value})


class TestReadWrite:
    def test_read_absent_raises_not_present(self, ssc):
        with pytest.raises(NotPresentError) as exc:
            ssc.read(123)
        assert exc.value.lbn == 123

    def test_write_clean_then_read(self, ssc):
        ssc.write_clean(7, "clean-data")
        data, cost = ssc.read(7)
        assert data == "clean-data"
        assert cost > 0

    def test_write_dirty_then_read(self, ssc):
        ssc.write_dirty(7, "dirty-data")
        data, _ = ssc.read(7)
        assert data == "dirty-data"
        assert ssc.is_dirty(7)

    def test_write_clean_is_not_dirty(self, ssc):
        ssc.write_clean(7, "x")
        assert not ssc.is_dirty(7)

    def test_overwrite_dirty_with_clean(self, ssc):
        ssc.write_dirty(7, "old")
        ssc.write_clean(7, "new")
        data, _ = ssc.read(7)
        assert data == "new"
        assert not ssc.is_dirty(7)

    def test_sparse_addresses_accepted(self, ssc):
        """The unified address space: disk addresses far beyond the
        flash capacity are legal keys (§4.1)."""
        huge = 10**12
        ssc.write_clean(huge, "far")
        data, _ = ssc.read(huge)
        assert data == "far"

    def test_contains_and_cached_blocks(self, ssc):
        assert not ssc.contains(5)
        ssc.write_clean(5, "x")
        assert ssc.contains(5)
        assert ssc.cached_blocks() == 1

    def test_write_dirty_flushes_synchronously(self, ssc):
        ssc.write_dirty(1, "x")
        assert ssc.oplog.pending() == 0
        assert ssc.oplog.sync_flushes >= 1

    def test_new_write_clean_is_buffered(self, ssc):
        ssc.write_clean(1, "x")
        assert ssc.oplog.pending() > 0

    def test_replacing_write_clean_is_durable(self, ssc):
        ssc.write_clean(1, "old")
        ssc.write_clean(1, "new")
        # Replacement at the same address must persist the remap (§4.2.1).
        assert ssc.oplog.pending() == 0


class TestEvict:
    def test_read_after_evict_raises(self, ssc):
        """Guarantee 3: a read following an eviction returns not-present."""
        ssc.write_dirty(9, "x")
        ssc.evict(9)
        with pytest.raises(NotPresentError):
            ssc.read(9)

    def test_evict_absent_is_noop(self, ssc):
        ssc.evict(12345)  # must not raise

    def test_evict_is_durable(self, ssc):
        ssc.write_dirty(9, "x")
        ssc.evict(9)
        assert ssc.oplog.pending() == 0

    def test_evicted_block_can_be_rewritten(self, ssc):
        ssc.write_clean(9, "a")
        ssc.evict(9)
        ssc.write_clean(9, "b")
        data, _ = ssc.read(9)
        assert data == "b"


class TestClean:
    def test_clean_clears_dirty(self, ssc):
        ssc.write_dirty(3, "x")
        ssc.clean(3)
        assert not ssc.is_dirty(3)
        data, _ = ssc.read(3)  # data stays readable (§4.2.1)
        assert data == "x"

    def test_clean_absent_is_noop(self, ssc):
        ssc.clean(999)

    def test_clean_is_asynchronous(self, ssc):
        ssc.write_dirty(3, "x")
        ssc.clean(3)
        assert ssc.oplog.pending() > 0  # CLEAN record buffered


class TestExists:
    def test_reports_only_dirty_blocks(self, ssc):
        ssc.write_dirty(10, "a")
        ssc.write_clean(20, "b")
        ssc.write_dirty(30, "c")
        ssc.clean(30)
        dirty, cost = ssc.exists(0, 1000)
        assert dirty == [10]
        assert cost == pytest.approx(ssc.chip.timing.control_delay_us)

    def test_range_filtering(self, ssc):
        for lbn in (5, 15, 25):
            ssc.write_dirty(lbn, "x")
        dirty, _ = ssc.exists(10, 20)
        assert dirty == [15]

    def test_exists_after_eviction(self, ssc):
        ssc.write_dirty(5, "x")
        ssc.evict(5)
        dirty, _ = ssc.exists(0, 100)
        assert dirty == []


class TestGroupCommit:
    def test_buffer_flushes_at_threshold(self, medium_geometry):
        ssc = SolidStateCache(
            medium_geometry,
            config=SSCConfig(group_commit_ops=50, clean_durability="buffered"),
        )
        for i in range(49):
            ssc.write_clean(i * 1000, i)  # distinct addresses: no replaces
        assert ssc.oplog.pending() > 0
        ssc.write_clean(10**9, "tip-over")
        assert ssc.oplog.pending() == 0
        assert ssc.oplog.async_flushes >= 1


class TestCrashGate:
    def test_operations_rejected_while_crashed(self, ssc):
        ssc.write_dirty(1, "x")
        ssc.crash()
        with pytest.raises(RecoveryError):
            ssc.read(1)
        with pytest.raises(RecoveryError):
            ssc.write_clean(2, "y")
        ssc.recover()
        data, _ = ssc.read(1)
        assert data == "x"

    def test_no_consistency_device_cannot_recover(self, ssc_no_consistency):
        ssc_no_consistency.write_dirty(1, "x")
        ssc_no_consistency.crash()
        with pytest.raises(RecoveryError):
            ssc_no_consistency.recover()
