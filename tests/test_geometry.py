"""Unit tests for flash geometry and address arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError, InvalidAddressError
from repro.flash.geometry import FlashGeometry


class TestDerivedSizes:
    def test_paper_defaults(self):
        geometry = FlashGeometry()
        assert geometry.planes == 10
        assert geometry.blocks_per_plane == 256
        assert geometry.pages_per_block == 64
        assert geometry.page_size == 4096
        assert geometry.total_blocks == 2560
        assert geometry.total_pages == 2560 * 64
        assert geometry.block_size == 256 * 1024
        assert geometry.capacity_bytes == 2560 * 64 * 4096

    @pytest.mark.parametrize(
        "field", ["planes", "blocks_per_plane", "pages_per_block", "page_size"]
    )
    def test_nonpositive_rejected(self, field):
        with pytest.raises(ConfigError):
            FlashGeometry(**{field: 0})

    def test_negative_oob_rejected(self):
        with pytest.raises(ConfigError):
            FlashGeometry(oob_bytes=-1)


class TestAddressing:
    def setup_method(self):
        self.geometry = FlashGeometry(planes=2, blocks_per_plane=4, pages_per_block=8)

    def test_ppn_round_trip(self):
        for ppn in range(self.geometry.total_pages):
            pbn = self.geometry.ppn_to_pbn(ppn)
            offset = self.geometry.ppn_to_offset(ppn)
            assert self.geometry.make_ppn(pbn, offset) == ppn

    def test_pbn_round_trip(self):
        for plane in range(2):
            for block in range(4):
                pbn = self.geometry.make_pbn(plane, block)
                assert self.geometry.pbn_to_plane(pbn) == plane

    def test_blocks_in_plane(self):
        assert list(self.geometry.blocks_in_plane(0)) == [0, 1, 2, 3]
        assert list(self.geometry.blocks_in_plane(1)) == [4, 5, 6, 7]

    @pytest.mark.parametrize("ppn", [-1, 64])
    def test_bad_ppn(self, ppn):
        with pytest.raises(InvalidAddressError):
            self.geometry.check_ppn(ppn)

    @pytest.mark.parametrize("pbn", [-1, 8])
    def test_bad_pbn(self, pbn):
        with pytest.raises(InvalidAddressError):
            self.geometry.check_pbn(pbn)

    def test_bad_offset(self):
        with pytest.raises(InvalidAddressError):
            self.geometry.make_ppn(0, 8)

    def test_bad_plane(self):
        with pytest.raises(InvalidAddressError):
            self.geometry.make_pbn(2, 0)
        with pytest.raises(InvalidAddressError):
            self.geometry.blocks_in_plane(2)


class TestForCapacity:
    def test_meets_requested_capacity(self):
        geometry = FlashGeometry.for_capacity(100 << 20)  # 100 MiB
        assert geometry.capacity_bytes >= 100 << 20

    def test_scales_plane_size_not_count(self):
        small = FlashGeometry.for_capacity(10 << 20)
        large = FlashGeometry.for_capacity(1 << 30)
        assert small.planes == large.planes == 10
        assert large.blocks_per_plane > small.blocks_per_plane

    def test_tiny_capacity(self):
        geometry = FlashGeometry.for_capacity(1)
        assert geometry.capacity_bytes >= 1
        assert geometry.blocks_per_plane >= 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            FlashGeometry.for_capacity(0)


@given(
    planes=st.integers(min_value=1, max_value=8),
    blocks=st.integers(min_value=1, max_value=32),
    pages=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_property_address_round_trip(planes, blocks, pages, seed):
    geometry = FlashGeometry(planes=planes, blocks_per_plane=blocks, pages_per_block=pages)
    ppn = seed % geometry.total_pages
    pbn = geometry.ppn_to_pbn(ppn)
    offset = geometry.ppn_to_offset(ppn)
    assert geometry.make_ppn(pbn, offset) == ppn
    assert 0 <= geometry.pbn_to_plane(pbn) < planes
