"""Differential layer: the event engine at QD=1 IS the serial loop.

The :class:`~repro.engine.ReplayEngine` docstring claims that at
``queue_depth=1`` it reproduces :func:`~repro.traces.replay.replay_trace`
bit-for-bit.  This file enforces the claim across every manager kind and
both write modes, comparing not just aggregate statistics but the full
per-request latency streams, the per-request hit/miss sequence, the
per-resource busy-time attribution and the final device state.

These tests are the lock that lets the hot paths underneath (sparse map
probing, FTL merges, completion tracing, the engine dispatch loop) be
optimized freely: any silent behaviour drift breaks an exact equality
here, before and after an optimization lands.
"""

import pytest

from repro import CacheMode, ReplayEngine, SystemConfig, SystemKind, build_system
from repro.traces.replay import replay_trace
from repro.traces.synthetic import HOMES, USR, generate_trace

ALL_COMBOS = [
    (kind, mode)
    for kind in (SystemKind.NATIVE, SystemKind.SSC, SystemKind.SSC_R)
    for mode in (CacheMode.WRITE_THROUGH, CacheMode.WRITE_BACK)
]


def _build(kind, mode, cache_blocks=2048):
    return build_system(
        SystemConfig(
            kind=kind,
            mode=mode,
            cache_blocks=cache_blocks,
            disk_blocks=50_000,
        )
    )


def _records(profile=HOMES, scale=0.02, seed=11):
    return generate_trace(profile.scaled(scale), seed=seed).records


def _instrument(manager, journal):
    """Record every request's hit/miss tag and service time, in order."""
    original_read, original_write = manager.read, manager.write

    def read(lbn):
        data, completion = original_read(lbn)
        journal.append(("r", completion.hit, float(completion)))
        return data, completion

    def write(lbn, data):
        completion = original_write(lbn, data)
        journal.append(("w", completion.hit, float(completion)))
        return completion

    manager.read, manager.write = read, write


def _run_pair(kind, mode, records, warmup_fraction):
    """Replay identically-built systems through both code paths."""
    legacy_system = _build(kind, mode)
    legacy_journal = []
    _instrument(legacy_system.manager, legacy_journal)
    legacy = replay_trace(
        legacy_system.manager,
        records,
        warmup_fraction=warmup_fraction,
        keep_latencies=True,
    )

    event_system = _build(kind, mode)
    event_journal = []
    _instrument(event_system.manager, event_journal)
    event = ReplayEngine(event_system.manager, queue_depth=1).run(
        records, warmup_fraction=warmup_fraction, keep_latencies=True
    )
    return (legacy_system, legacy, legacy_journal), (event_system, event, event_journal)


class TestQueueDepthOneDifferential:
    @pytest.mark.parametrize("kind,mode", ALL_COMBOS)
    def test_stats_bit_for_bit(self, kind, mode):
        records = _records()
        (_, legacy, _), (_, event, _) = _run_pair(kind, mode, records, 0.15)

        assert event.ops == legacy.ops
        assert event.reads == legacy.reads
        assert event.writes == legacy.writes
        assert event.read_hits == legacy.read_hits
        assert event.read_misses == legacy.read_misses
        assert event.elapsed_us == legacy.elapsed_us
        assert event.iops() == legacy.iops()
        assert event.miss_rate() == legacy.miss_rate()
        # Full per-request latency streams, not just the aggregates.
        assert event.latency.samples == legacy.latency.samples
        assert event.service.samples == legacy.service.samples
        assert event.latency.total_us == legacy.latency.total_us
        assert event.latency.max_us == legacy.latency.max_us
        # With one request outstanding nothing can ever queue.
        assert event.queue_wait.total_us == 0.0
        assert event.queue_wait.max_us == 0.0
        # Per-resource busy attribution matches exactly.
        assert event.device_busy_us == legacy.device_busy_us

    @pytest.mark.parametrize("kind,mode", ALL_COMBOS)
    def test_hit_miss_sequence_bit_for_bit(self, kind, mode):
        records = _records()
        (_, _, legacy_journal), (_, _, event_journal) = _run_pair(
            kind, mode, records, 0.15
        )
        assert len(legacy_journal) == len(records)
        assert event_journal == legacy_journal

    @pytest.mark.parametrize("kind,mode", ALL_COMBOS)
    def test_device_state_identical(self, kind, mode):
        records = _records(scale=0.015)
        (legacy_system, _, _), (event_system, _, _) = _run_pair(
            kind, mode, records, 0.0
        )
        legacy_chip = legacy_system.device.chip
        event_chip = event_system.device.chip
        assert event_chip.stats.page_reads == legacy_chip.stats.page_reads
        assert event_chip.stats.page_writes == legacy_chip.stats.page_writes
        assert event_chip.stats.block_erases == legacy_chip.stats.block_erases
        assert event_chip.total_erases() == legacy_chip.total_erases()
        assert (
            event_system.device_stats.write_amplification()
            == legacy_system.device_stats.write_amplification()
        )
        if event_system.ssc is not None:
            assert legacy_system.ssc is not None
            assert (
                event_system.ssc.cached_blocks()
                == legacy_system.ssc.cached_blocks()
            )
            assert sorted(event_system.ssc.engine.iter_cached_lbns()) == sorted(
                legacy_system.ssc.engine.iter_cached_lbns()
            )

    def test_read_heavy_workload_also_differential(self):
        # usr is the read-heavy extreme (5.9 % writes): the hit path,
        # not the log-write path, dominates here.
        records = _records(USR, scale=0.02, seed=3)
        (_, legacy, lj), (_, event, ej) = _run_pair(
            SystemKind.SSC_R, CacheMode.WRITE_BACK, records, 0.15
        )
        assert event.latency.samples == legacy.latency.samples
        assert event.elapsed_us == legacy.elapsed_us
        assert ej == lj

    def test_warmup_boundary_differential(self):
        # The measurement-epoch reset is the trickiest seam: hit both
        # engines with a warmup fraction that lands mid-trace.
        records = _records(scale=0.015)
        (_, legacy, _), (_, event, _) = _run_pair(
            SystemKind.SSC, CacheMode.WRITE_BACK, records, 0.5
        )
        assert event.ops == legacy.ops
        assert event.elapsed_us == legacy.elapsed_us
        assert event.latency.samples == legacy.latency.samples
        assert event.device_busy_us == legacy.device_busy_us
