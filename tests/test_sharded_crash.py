"""Crash consistency of the sharded cache array.

Shards fail together (a power cut is array-wide) but recover
*independently*: each member rolls its own log forward over its own
checkpoint.  These tests pin the two properties that make the array's
crash story sound:

1. **Fault isolation** — a torn write into shard *k* can only damage
   shard *k*'s durable state.  After recovery, every other member's
   flash, log and checkpoints are *byte-identical* to the same run with
   a clean power cut at the same boundary — the torn program is
   invisible outside the shard it hit — and the recovered array as a
   whole still satisfies the strict SSC oracle.
2. **Parallel recovery** — the array is ready when its slowest member
   is: ``recover()`` equals the *max* of the per-shard costs (they
   replay concurrently through the event scheduler), while
   ``recover(parallel=False)`` equals their *sum*.
"""

import random

import pytest

from repro.check import faults
from repro.check.explorer import (
    build_device,
    explore,
    run_trial,
    run_workload,
)
from repro.check.oracle import SSCOracle
from repro.check.workload import generate_workload
from repro.sim.crash import CrashInjector

SHARDS = 3
TARGET = 1  # the member that takes the torn write


def durable_fingerprint(ssc):
    """Byte-level identity of one member's durable state: every flash
    page (state, payload, OOB), the flushed log, and the checkpoints."""
    pages = tuple(
        (plane.plane_id, pbn, index, page.state.name,
         repr(page.data), repr(page.oob))
        for plane in ssc.chip.planes
        for pbn, block in sorted(plane.blocks.items())
        for index, page in enumerate(block.pages)
    )
    log = tuple(repr(record) for record in ssc.oplog.flushed)
    checkpoint = ssc.checkpoints.latest()
    checkpoint_state = (
        None
        if checkpoint is None
        else (
            checkpoint.seq,
            tuple(checkpoint.page_entries),
            tuple(checkpoint.block_entries),
        )
    )
    return pages, log, checkpoint_state


def shard_oracle(oracle: SSCOracle, router, shard_id: int) -> SSCOracle:
    """The slice of ``oracle``'s model owned by one shard.

    Routing is a partition of the LBN space, so the array-level model
    decomposes exactly: each member must independently satisfy the
    contract over the blocks routed to it.
    """
    sub = SSCOracle()
    sub.committed = {
        lbn: entry
        for lbn, entry in oracle.committed.items()
        if router.shard_of(lbn) == shard_id
    }
    sub.history = {
        lbn: values
        for lbn, values in oracle.history.items()
        if router.shard_of(lbn) == shard_id
    }
    in_flight = oracle.in_flight
    if (
        in_flight is not None
        and in_flight.lbn is not None
        and router.shard_of(in_flight.lbn) == shard_id
    ):
        sub.in_flight = in_flight
    return sub


def _target_boundary_count(workload) -> int:
    """How many durability boundaries the target shard crosses."""
    probe = build_device(shards=SHARDS)
    injector = CrashInjector()
    probe.attach_injector(injector, only_shard=TARGET)
    oracle = SSCOracle()
    crashed = run_workload(probe, oracle, workload, [], "probe")
    assert not crashed
    return injector.ticks


def _crash_and_recover(workload, boundary: int, torn: bool):
    """Run ``workload`` against a fresh array, crash the target shard at
    ``boundary`` (torn or clean), recover, return the pieces."""
    array = build_device(shards=SHARDS)
    injector = CrashInjector()
    array.attach_injector(injector, only_shard=TARGET)
    injector.arm(after_events=boundary, torn=torn)
    oracle = SSCOracle()
    violations = []
    crashed = run_workload(array, oracle, workload, violations, "torn")
    assert crashed, "armed boundary inside the tick range must fire"
    assert not violations
    recovery_us = array.recover()
    return array, oracle, recovery_us


class TestTornWriteIsolation:
    @pytest.fixture(scope="class")
    def torn_run(self):
        """The same crash twice — torn and clean — both recovered.

        Both runs crash the same deterministic workload at the same
        durability boundary of the same target shard; the only
        difference is the torn program left behind.  Anything the torn
        write changes *outside* the target shard is a fault-isolation
        breach.
        """
        workload = generate_workload(180, seed=12, lbn_range=96)
        ticks = _target_boundary_count(workload)
        assert ticks > 4, "workload never exercised the target shard"
        boundary = ticks // 2

        torn_array, oracle, recovery_us = _crash_and_recover(
            workload, boundary, torn=True
        )
        clean_array, _, _ = _crash_and_recover(workload, boundary, torn=False)
        return torn_array, clean_array, oracle, recovery_us

    def test_crash_is_array_wide(self, torn_run):
        # Recovery cleared the crashed flag on *every* member — they all
        # went down together when the target shard's boundary fired.
        torn_array, _clean, _oracle, _us = torn_run
        for shard in torn_array.shards:
            assert not shard._crashed

    def test_other_shards_byte_identical(self, torn_run):
        torn_array, clean_array, _oracle, _us = torn_run
        for shard_id in range(SHARDS):
            if shard_id == TARGET:
                continue
            assert durable_fingerprint(
                torn_array.shards[shard_id]
            ) == durable_fingerprint(clean_array.shards[shard_id])

    def test_target_shard_took_the_damage(self, torn_run):
        # Sanity: the torn program is real — the target shard's durable
        # state differs from the clean-cut run's.
        torn_array, clean_array, _oracle, _us = torn_run
        assert durable_fingerprint(
            torn_array.shards[TARGET]
        ) != durable_fingerprint(clean_array.shards[TARGET])

    def test_array_satisfies_strict_oracle(self, torn_run):
        torn_array, _clean, oracle, _us = torn_run
        assert oracle.check(torn_array, strict=True, trial="torn") == []

    def test_each_shard_satisfies_its_oracle_slice(self, torn_run):
        torn_array, _clean, oracle, _us = torn_run
        for shard_id, shard in enumerate(torn_array.shards):
            sub = shard_oracle(oracle, torn_array.router, shard_id)
            assert sub.check(shard, strict=True, trial=f"shard{shard_id}") == []

    def test_no_foreign_blocks_recovered(self, torn_run):
        torn_array, _clean, _oracle, _us = torn_run
        for shard_id, shard in enumerate(torn_array.shards):
            for lbn in shard.engine.iter_cached_lbns():
                assert torn_array.router.shard_of(lbn) == shard_id

    def test_recovery_reported_per_shard(self, torn_run):
        torn_array, _clean, _oracle, recovery_us = torn_run
        assert len(torn_array.last_recovery_costs) == SHARDS
        assert recovery_us == max(torn_array.last_recovery_costs)


class TestParallelRecovery:
    def _loaded_array(self, shards: int):
        workload = generate_workload(200, seed=5, lbn_range=128)
        array = build_device(shards=shards)
        oracle = SSCOracle()
        violations = []
        crashed = run_workload(array, oracle, workload, violations, "load")
        assert not crashed and not violations
        return array

    def test_parallel_is_max_serial_is_sum(self):
        array = self._loaded_array(4)
        array.crash()
        parallel_us = array.recover()
        costs = array.last_recovery_costs
        assert len(costs) == 4
        assert parallel_us == max(costs)

        array.crash()
        serial_us = array.recover(parallel=False)
        assert serial_us == sum(array.last_recovery_costs)
        assert parallel_us <= serial_us

    def test_crash_counts_sum_over_shards(self):
        array = self._loaded_array(3)
        per_shard_buffered = [shard.oplog.pending() for shard in array.shards]
        assert array.crash() == sum(per_shard_buffered)


class TestExplorerOnArrays:
    def test_run_trial_smoke(self):
        workload = generate_workload(80, seed=9)
        violations, fired = run_trial(workload, boundary=7, torn=True, shards=2)
        assert violations == []
        assert fired is not None

    def test_bitflip_targets_one_member(self):
        workload = generate_workload(80, seed=9)
        violations, _fired = run_trial(
            workload, boundary=5,
            fault=faults.flip_log_record, fault_rng=random.Random(1),
            strict=False, shards=2,
        )
        assert violations == []

    def test_explore_sharded(self):
        report = explore(ops=60, seed=3, stride=9, torn=True,
                         bitflips=2, shards=2)
        assert report.ok, [str(v) for v in report.violations]
        assert report.explored > 0
        assert report.bitflip_trials == 2
