"""Tests for the replay harness and the core system facade."""

import pytest

from repro import CacheMode, SystemConfig, SystemKind, build_system
from repro.core.flashtier import cache_geometry
from repro.errors import ConfigError
from repro.stats.counters import LatencyStats, ReplayStats
from repro.stats.report import format_ratio, format_table
from repro.traces.record import OpKind, TraceRecord
from repro.traces.replay import replay_trace
from repro.traces.synthetic import HOMES, USR, generate_trace


def tiny_config(kind=SystemKind.SSC, mode=CacheMode.WRITE_BACK):
    return SystemConfig(
        kind=kind, mode=mode, cache_blocks=512, disk_blocks=50_000,
        planes=4, pages_per_block=8,
    )


class TestStats:
    def test_latency_stats(self):
        stats = LatencyStats(keep_samples=True)
        for value in (1.0, 3.0, 2.0):
            stats.record(value)
        assert stats.count == 3
        assert stats.mean_us == pytest.approx(2.0)
        assert stats.max_us == 3.0
        assert stats.percentile(50) == 2.0

    def test_latency_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1)

    def test_percentile_requires_samples(self):
        with pytest.raises(ValueError):
            LatencyStats().percentile(50)

    def test_replay_stats_iops(self):
        stats = ReplayStats(ops=1000, elapsed_us=1_000_000)
        assert stats.iops() == pytest.approx(1000)

    def test_miss_rate(self):
        stats = ReplayStats(read_hits=90, read_misses=10)
        assert stats.miss_rate() == pytest.approx(10.0)

    def test_report_helpers(self):
        assert format_ratio(150, 100) == "150%"
        assert format_ratio(1, 0) == "n/a"
        table = format_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        assert "333" in table
        assert table.splitlines()[0] == "T"


class TestReplay:
    def test_replay_counts_everything(self):
        system = build_system(tiny_config())
        trace = [TraceRecord(OpKind.WRITE, i) for i in range(50)]
        trace += [TraceRecord(OpKind.READ, i) for i in range(50)]
        stats = replay_trace(system.manager, trace)
        assert stats.ops == 100
        assert stats.writes == 50
        assert stats.reads == 50
        assert stats.elapsed_us > 0
        assert stats.iops() > 0

    def test_warmup_excluded_from_stats(self):
        system = build_system(tiny_config())
        trace = [TraceRecord(OpKind.WRITE, i % 100) for i in range(200)]
        stats = replay_trace(system.manager, trace, warmup_fraction=0.5)
        assert stats.ops == 100

    def test_bad_warmup_rejected(self):
        system = build_system(tiny_config())
        with pytest.raises(ValueError):
            replay_trace(system.manager, [], warmup_fraction=1.0)

    def test_reads_hit_after_writes(self):
        system = build_system(tiny_config())
        trace = [TraceRecord(OpKind.WRITE, 5), TraceRecord(OpKind.READ, 5)]
        stats = replay_trace(system.manager, trace)
        assert stats.read_hits == 1
        assert stats.read_misses == 0


class TestSystemFacade:
    @pytest.mark.parametrize("kind", list(SystemKind))
    @pytest.mark.parametrize("mode", list(CacheMode))
    def test_all_variants_build_and_run(self, kind, mode):
        system = build_system(tiny_config(kind, mode))
        trace = generate_trace(HOMES.scaled(0.01), seed=1).records
        stats = system.replay(trace, warmup_fraction=0.15)
        assert stats.ops > 0
        assert stats.iops() > 0

    def test_native_has_ssd_flashtier_has_ssc(self):
        native = build_system(tiny_config(SystemKind.NATIVE))
        flashtier = build_system(tiny_config(SystemKind.SSC))
        assert native.ssd is not None and native.ssc is None
        assert flashtier.ssc is not None and flashtier.ssd is None
        assert native.device is native.ssd
        assert flashtier.device is flashtier.ssc

    def test_total_memory_combines_tiers(self):
        system = build_system(tiny_config())
        trace = generate_trace(USR.scaled(0.01), seed=2).records
        system.replay(trace)
        assert system.total_memory_bytes() == (
            system.device.device_memory_bytes()
            + system.manager.host_memory_bytes()
        )

    def test_geometry_covers_requested_cache(self):
        config = tiny_config()
        geometry = cache_geometry(config)
        assert geometry.total_pages * geometry.page_size >= (
            config.cache_blocks * config.capacity_slack * config.page_size * 0.99
        )

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(cache_blocks=0)
        with pytest.raises(ConfigError):
            SystemConfig(capacity_slack=0.5)


class TestEndToEndShape:
    """Integration smoke test: the paper's headline ordering must hold
    even at small scale — SSC-R and SSC beat native on a write-heavy
    workload while write amplification orders the other way."""

    def test_write_heavy_ordering(self):
        trace = generate_trace(HOMES.scaled(0.06), seed=3)
        iops = {}
        wa = {}
        for kind in (SystemKind.NATIVE, SystemKind.SSC, SystemKind.SSC_R):
            config = SystemConfig(
                kind=kind, mode=CacheMode.WRITE_BACK,
                cache_blocks=trace.profile.cache_blocks(),
                disk_blocks=trace.profile.address_range_blocks,
                planes=4, pages_per_block=16,
            )
            system = build_system(config)
            stats = system.replay(trace.records, warmup_fraction=0.15)
            iops[kind] = stats.iops()
            wa[kind] = system.device_stats.write_amplification()
        assert iops[SystemKind.SSC] > iops[SystemKind.NATIVE]
        assert iops[SystemKind.SSC_R] > iops[SystemKind.NATIVE]
        assert wa[SystemKind.SSC] < wa[SystemKind.NATIVE]
        assert wa[SystemKind.SSC_R] < wa[SystemKind.NATIVE]
