"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.ConfigError,
        errors.FlashError,
        errors.InvalidAddressError,
        errors.WriteToNonErasedPageError,
        errors.EraseActiveBlockError,
        errors.NotPresentError,
        errors.CacheFullError,
        errors.OutOfSpaceError,
        errors.RecoveryError,
        errors.CrashError,
    ])
    def test_everything_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_flash_errors_grouped(self):
        assert issubclass(errors.InvalidAddressError, errors.FlashError)
        assert issubclass(errors.WriteToNonErasedPageError, errors.FlashError)

    def test_not_present_carries_lbn(self):
        error = errors.NotPresentError(42)
        assert error.lbn == 42
        assert "42" in str(error)

    def test_single_catch_clause_suffices(self):
        """A caller can catch the whole library with one except clause."""
        with pytest.raises(errors.ReproError):
            raise errors.CacheFullError("full")
