"""Crash-recovery tests: the paper's §3.5 guarantees after power failure.

1. A read following a write of dirty data returns that data.
2. A read following a write of clean data returns that data or
   not-present — never anything older.
3. A read following an eviction returns not-present.
"""

import random

import pytest

from repro.errors import NotPresentError, RecoveryError
from repro.flash.geometry import FlashGeometry
from repro.ssc.device import SolidStateCache
from repro.ssc.recovery import replay
from repro.ssc.log import LogRecord, RecordKind


class TestGuaranteeOne:
    """Dirty data is durable."""

    def test_dirty_survives_immediate_crash(self, ssc):
        ssc.write_dirty(5, "must-survive")
        ssc.crash()
        ssc.recover()
        data, _ = ssc.read(5)
        assert data == "must-survive"

    def test_many_dirty_blocks_survive(self, medium_geometry):
        ssc = SolidStateCache.ssc(medium_geometry)
        rng = random.Random(11)
        dirty = {}
        base = 10_000
        for i in range(800):
            lbn = base + rng.randrange(1200)  # clustered: fits the cache
            dirty[lbn] = ("d", lbn, i)
            ssc.write_dirty(lbn, dirty[lbn])
        ssc.crash()
        ssc.recover()
        for lbn, expected in dirty.items():
            data, _ = ssc.read(lbn)
            assert data == expected

    def test_dirty_survives_gc_then_crash(self, medium_geometry):
        """Dirty data that has been moved by merges must still recover."""
        ssc = SolidStateCache.ssc(medium_geometry)
        rng = random.Random(12)
        dirty = {}
        for i in range(600):
            lbn = rng.randrange(600)
            dirty[lbn] = ("d", lbn, i)
            ssc.write_dirty(lbn, dirty[lbn])
        # Clean churn to force merges and eviction around the dirty set.
        for i in range(2000):
            ssc.write_clean(5000 + rng.randrange(50_000), i)
        ssc.crash()
        ssc.recover()
        for lbn, expected in dirty.items():
            data, _ = ssc.read(lbn)
            assert data == expected

    def test_overwritten_dirty_returns_newest(self, ssc):
        ssc.write_dirty(5, "old")
        ssc.write_dirty(5, "new")
        ssc.crash()
        ssc.recover()
        data, _ = ssc.read(5)
        assert data == "new"


class TestGuaranteeTwo:
    """Clean data: newest version or not-present, never stale."""

    def test_flushed_clean_data_survives(self, medium_geometry):
        ssc = SolidStateCache.ssc(medium_geometry)
        ssc.write_clean(5, "clean")
        ssc.checkpoint_now()
        ssc.crash()
        ssc.recover()
        data, _ = ssc.read(5)
        assert data == "clean"

    def test_buffered_clean_write_may_vanish_but_never_stale(self, medium_geometry):
        ssc = SolidStateCache.ssc(medium_geometry)
        ssc.write_clean(5, "will-be-buffered")
        lost = ssc.crash()
        ssc.recover()
        try:
            data, _ = ssc.read(5)
            assert data == "will-be-buffered"
        except NotPresentError:
            pass  # "as if silently evicted" — allowed by the contract

    def test_replaced_clean_never_reverts(self, medium_geometry):
        """After overwriting clean data, a crash must never expose the
        old version (the replace-sync rule of §4.2.1)."""
        ssc = SolidStateCache.ssc(medium_geometry)
        ssc.write_clean(5, "version-1")
        ssc.checkpoint_now()
        ssc.write_clean(5, "version-2")
        ssc.crash()
        ssc.recover()
        try:
            data, _ = ssc.read(5)
            assert data == "version-2"
        except NotPresentError:
            pass

    def test_clean_command_may_revert_dirty_state_only(self, ssc):
        """§4.2.1: "after a crash cleaned blocks may return to their
        dirty state" — the data itself is never lost."""
        ssc.write_dirty(5, "x")
        ssc.clean(5)  # asynchronous: may be lost
        ssc.crash()
        ssc.recover()
        data, _ = ssc.read(5)
        assert data == "x"
        # Dirty state may have reverted; exists() must still be sane.
        dirty, _ = ssc.exists(0, 100)
        assert dirty in ([], [5])


class TestGuaranteeThree:
    """Reads after evictions fail, even across crashes."""

    def test_eviction_survives_crash(self, ssc):
        ssc.write_dirty(5, "x")
        ssc.evict(5)
        ssc.crash()
        ssc.recover()
        with pytest.raises(NotPresentError):
            ssc.read(5)

    def test_silent_eviction_not_resurrected(self, medium_geometry):
        ssc = SolidStateCache.ssc(medium_geometry)
        rng = random.Random(13)
        shadow = {}
        for i in range(5000):
            lbn = rng.randrange(100_000)
            shadow[lbn] = ("c", lbn, i)
            ssc.write_clean(lbn, shadow[lbn])
        assert ssc.stats.silent_evictions > 0
        ssc.crash()
        ssc.recover()
        # Every readable block must hold its newest version.
        for lbn, expected in shadow.items():
            try:
                data, _ = ssc.read(lbn)
            except NotPresentError:
                continue
            assert data == expected


class TestRecoveryMechanics:
    def test_recovery_time_positive_and_grows(self, medium_geometry):
        """With a fresh checkpoint, recovery time tracks mapping size."""
        small = SolidStateCache.ssc(medium_geometry)
        for i in range(50):
            small.write_dirty(i, i)
        small.checkpoint_now()
        small.crash()
        t_small = small.recover()

        big_geometry = FlashGeometry(planes=8, blocks_per_plane=64, pages_per_block=16)
        large = SolidStateCache.ssc(big_geometry)
        for i in range(6000):
            large.write_dirty(i, i)
        large.checkpoint_now()
        large.crash()
        t_large = large.recover()
        assert t_small > 0
        assert t_large > t_small

    def test_device_operable_after_recovery(self, medium_geometry):
        ssc = SolidStateCache.ssc(medium_geometry)
        rng = random.Random(14)
        for i in range(2000):
            ssc.write_clean(rng.randrange(20_000), i)
        ssc.crash()
        ssc.recover()
        shadow = {}
        for i in range(2000):
            lbn = rng.randrange(20_000)
            shadow[lbn] = ("post", i)
            ssc.write_clean(lbn, shadow[lbn])
        hits = 0
        for lbn, expected in shadow.items():
            try:
                data, _ = ssc.read(lbn)
            except NotPresentError:
                continue
            assert data == expected
            hits += 1
        assert hits > 0

    def test_double_crash_recover(self, ssc):
        ssc.write_dirty(1, "a")
        ssc.crash()
        ssc.recover()
        ssc.write_dirty(2, "b")
        ssc.crash()
        ssc.recover()
        assert ssc.read(1)[0] == "a"
        assert ssc.read(2)[0] == "b"

    def test_recovery_without_checkpoint(self, ssc):
        """Log-only recovery (no checkpoint written yet)."""
        ssc.write_dirty(1, "x")
        assert ssc.checkpoints.latest() is None or True
        ssc.crash()
        ssc.recover()
        assert ssc.read(1)[0] == "x"

    def test_recovery_after_checkpoint_truncation(self, medium_geometry):
        ssc = SolidStateCache.ssc(medium_geometry)
        for i in range(200):
            ssc.write_dirty(i, ("pre", i))
        ssc.checkpoint_now()
        for i in range(100):
            ssc.write_dirty(1000 + i, ("post", i))
        ssc.crash()
        ssc.recover()
        assert ssc.read(5)[0] == ("pre", 5)
        assert ssc.read(1050)[0] == ("post", 50)


class TestReplayUnit:
    def test_out_of_order_records_rejected(self):
        records = [
            LogRecord(5, RecordKind.INSERT_PAGE, 1, 2),
            LogRecord(3, RecordKind.INSERT_PAGE, 1, 2),
        ]
        with pytest.raises(RecoveryError):
            replay(None, records, pages_per_block=8)

    def test_insert_then_remove_page(self):
        records = [
            LogRecord(1, RecordKind.INSERT_PAGE, 10, 99, extra=1),
            LogRecord(2, RecordKind.REMOVE_PAGE, 10, 99),
        ]
        state = replay(None, records, pages_per_block=8)
        assert 10 not in state.page_entries

    def test_stale_remove_ignored(self):
        records = [
            LogRecord(1, RecordKind.INSERT_PAGE, 10, 99),
            LogRecord(2, RecordKind.INSERT_PAGE, 10, 77),
            LogRecord(3, RecordKind.REMOVE_PAGE, 10, 99),  # stale ppn
        ]
        state = replay(None, records, pages_per_block=8)
        assert state.page_entries[10] == (77, False)

    def test_clean_record_clears_dirty(self):
        records = [
            LogRecord(1, RecordKind.INSERT_PAGE, 10, 99, extra=1),
            LogRecord(2, RecordKind.CLEAN, 10),
        ]
        state = replay(None, records, pages_per_block=8)
        assert state.page_entries[10] == (99, False)

    def test_invalidate_clears_block_bits(self):
        valid = 0b111
        records = [
            LogRecord(1, RecordKind.INSERT_BLOCK, 2, 5, extra=(valid << 64) | 0b001),
            LogRecord(2, RecordKind.INVALIDATE_PAGE, 16, 40),  # group 2, offset 0
        ]
        state = replay(None, records, pages_per_block=8)
        entry = state.block_entries[2]
        assert entry.valid_bitmap == 0b110
        assert entry.dirty_bitmap == 0b000
