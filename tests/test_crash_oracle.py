"""The SSC oracle model and the property-based crash sweep.

Two halves: unit tests pinning the oracle's legal-state algebra (the
model must be right before it can judge the device), and hypothesis
property tests running generated workloads through the explorer —
never lose a logged dirty block, never resurrect an evicted one — plus
the harness's own acid test: a deliberately buggy recovery must be
caught.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.check.explorer import build_device, run_trial, run_workload
from repro.check.oracle import ABSENT, SSCOracle
from repro.check.workload import Op, workload_strategy
from repro.sim.crash import CrashInjector
from repro.ssc.device import SolidStateCache


class TestLegalStates:
    def test_never_written_is_absent(self):
        oracle = SSCOracle()
        assert oracle.legal_states(5) == {ABSENT}

    def test_committed_dirty_must_survive(self):
        oracle = SSCOracle()
        oracle.begin(Op("write_dirty", 5, "v"))
        oracle.commit()
        assert oracle.legal_states(5) == {("v", True)}

    def test_committed_clean_may_drop_but_not_corrupt(self):
        oracle = SSCOracle()
        oracle.begin(Op("write_clean", 5, "v"))
        oracle.commit()
        assert oracle.legal_states(5) == {("v", False), ABSENT}

    def test_cleaned_flag_may_revert(self):
        oracle = SSCOracle()
        oracle.begin(Op("write_dirty", 5, "v"))
        oracle.commit()
        oracle.begin(Op("clean", 5))
        oracle.commit()
        # clean is asynchronous: dirty, clean and absent are all legal.
        assert oracle.legal_states(5) == {("v", True), ("v", False), ABSENT}

    def test_evicted_never_resurrects(self):
        oracle = SSCOracle()
        oracle.begin(Op("write_dirty", 5, "v"))
        oracle.commit()
        oracle.begin(Op("evict", 5))
        oracle.commit()
        assert oracle.legal_states(5) == {ABSENT}

    def test_in_flight_unions_before_and_after(self):
        oracle = SSCOracle()
        oracle.begin(Op("write_clean", 5, "old"))
        oracle.commit()
        oracle.begin(Op("write_dirty", 5, "new"))  # crashes mid-op
        assert oracle.legal_states(5) == {
            ("old", False), ABSENT, ("new", True)
        }

    def test_observe_absent_collapses_clean_only(self):
        oracle = SSCOracle()
        oracle.begin(Op("write_clean", 5, "v"))
        oracle.commit()
        oracle.observe_absent(5)  # silent eviction observed live
        assert oracle.legal_states(5) == {ABSENT}
        oracle.begin(Op("write_dirty", 6, "w"))
        oracle.commit()
        oracle.observe_absent(6)  # dirty may never be silently dropped
        assert oracle.legal_states(6) == {("w", True)}


def _boundaries_of(workload):
    """Tick count of an uninterrupted run (0 for pure-read workloads)."""
    ssc = build_device()
    injector = CrashInjector()
    ssc.attach_injector(injector)
    violations = []
    assert not run_workload(ssc, SSCOracle(), workload, violations)
    assert violations == []
    return injector.ticks


class TestCrashSweepProperties:
    """Generated workloads: every sampled crash point recovers legally."""

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(workload_strategy(max_ops=25, lbn_range=12))
    def test_no_violation_at_any_sampled_boundary(self, workload):
        boundaries = _boundaries_of(workload)
        sample = sorted({1, max(1, boundaries // 2), max(1, boundaries)})
        for boundary in sample:
            violations, _fired = run_trial(
                workload, boundary, trial=f"prop/b={boundary}"
            )
            assert violations == [], "\n".join(map(str, violations))

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(workload_strategy(max_ops=20, lbn_range=12))
    def test_torn_write_at_midpoint_recovers_legally(self, workload):
        boundaries = _boundaries_of(workload)
        boundary = max(1, boundaries // 2)
        violations, _fired = run_trial(
            workload, boundary, torn=True, trial="prop/torn"
        )
        assert violations == [], "\n".join(map(str, violations))


# A workload whose final state is unambiguous: six committed dirty
# blocks, so recovery demoting or dropping any of them is illegal.
_DIRTY_WORKLOAD = [Op("write_dirty", lbn, f"v{lbn}") for lbn in range(6)]


class TestHarnessCatchesInjectedBugs:
    """Mutation testing of the harness itself: sabotage recovery and
    verify the oracle flags it.  If these fail, the explorer's green
    runs prove nothing."""

    def test_recovery_that_demotes_dirty_is_caught(self, monkeypatch):
        real_recover = SolidStateCache.recover

        def buggy_recover(self):
            cost = real_recover(self)
            # Injected bug: recovery silently loses one dirty flag.
            for lbn in sorted(self.engine.iter_cached_lbns()):
                if self.is_dirty(lbn):
                    self.clean(lbn)
                    break
            return cost

        monkeypatch.setattr(SolidStateCache, "recover", buggy_recover)
        boundaries = _boundaries_of(_DIRTY_WORKLOAD)
        violations, _fired = run_trial(_DIRTY_WORKLOAD, boundaries)
        rules = {violation.rule for violation in violations}
        assert rules & {"illegal-state", "exists-missing-dirty"}, violations

    def test_recovery_that_drops_dirty_is_caught(self, monkeypatch):
        real_recover = SolidStateCache.recover

        def buggy_recover(self):
            cost = real_recover(self)
            # Injected bug: recovery silently drops one dirty block.
            for lbn in sorted(self.engine.iter_cached_lbns()):
                if self.is_dirty(lbn):
                    self.evict(lbn)
                    break
            return cost

        monkeypatch.setattr(SolidStateCache, "recover", buggy_recover)
        boundaries = _boundaries_of(_DIRTY_WORKLOAD)
        violations, _fired = run_trial(_DIRTY_WORKLOAD, boundaries)
        assert any(v.rule == "lost-dirty" for v in violations), violations

    def test_healthy_recovery_is_clean_on_the_same_workload(self):
        """Control: without the injected bug the identical trial passes."""
        boundaries = _boundaries_of(_DIRTY_WORKLOAD)
        violations, fired = run_trial(_DIRTY_WORKLOAD, boundaries)
        assert violations == []
        assert fired is not None
