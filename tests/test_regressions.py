"""Regression tests for specific bugs found during development.

Each test pins the exact scenario that once corrupted data or leaked
resources, so the failure mode stays dead.
"""

import random


from repro.errors import CacheFullError
from repro.flash.block import BlockKind
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.ftl.hybrid import HybridFTL, HybridFTLConfig
from repro.ftl.pagemap import PageMapFTL
from repro.ssc.device import SolidStateCache
from repro.stats.counters import LatencyStats
from repro.stats.report import format_histogram, format_percentiles, format_table


class TestSeqLogSupersededPages:
    """A full merge can invalidate pages *inside* the open sequential
    log block.  Retiring that block as a whole data block then orphaned
    the newest copies of the untouched offsets in the old data block,
    which retire erased — silent data loss (found via a hot/cold mixed
    workload; fixed by demoting such blocks to the random log pool)."""

    def test_cold_data_survives_hot_neighbours(self):
        chip = FlashChip(FlashGeometry(planes=2, blocks_per_plane=16,
                                       pages_per_block=8))
        ftl = HybridFTL(chip, HybridFTLConfig())
        cold_span = ftl.logical_pages // 4
        for lpn in range(cold_span):
            ftl.write(lpn, ("cold", lpn))
        rng = random.Random(1)
        # Hot window overlaps the tail of the cold region's groups.
        for i in range(6000):
            lpn = cold_span + rng.randrange(ftl.logical_pages // 8)
            ftl.write(lpn, ("hot", i))
        for lpn in range(cold_span):
            data, _ = ftl.read(lpn)
            assert data == ("cold", lpn), f"cold block {lpn} lost"

    def test_demoted_seq_block_pages_stay_readable(self):
        """Directly construct the hazard: open a seq run, supersede part
        of it through the random log, then force the retire."""
        chip = FlashChip(FlashGeometry(planes=2, blocks_per_plane=16,
                                       pages_per_block=8))
        ftl = HybridFTL(chip, HybridFTLConfig())
        # Sequential run that fills 7 of 8 pages of group 0.
        for lpn in range(2):  # prime _last_lpn so a run can start at 8
            ftl.write(6 + lpn, ("prime", lpn))
        for lpn in range(8, 15):
            ftl.write(lpn, ("run", lpn))
        assert ftl._seq_log is not None
        # Supersede two run pages via the random path (non-consecutive).
        ftl.write(9, ("newer", 9))
        ftl.write(12, ("newer", 12))
        # Force retire by starting a different sequential run.
        ftl.write(15, ("bridge", 15))
        for lpn in range(16, 24):
            ftl.write(lpn, ("run2", lpn))
        # Every version must be the newest one written.
        assert ftl.read(8)[0] == ("run", 8)
        assert ftl.read(9)[0] == ("newer", 9)
        assert ftl.read(12)[0] == ("newer", 12)
        assert ftl.read(14)[0] == ("run", 14)


class TestMergeVictimLeak:
    """A CacheFullError raised mid-merge once leaked the victim log
    block out of the log pool; every manager retry leaked another until
    the device was a pile of orphaned LOG blocks."""

    def test_failed_merges_do_not_leak_log_blocks(self):
        geometry = FlashGeometry(planes=2, blocks_per_plane=10, pages_per_block=8)
        ssc = SolidStateCache.ssc(geometry)
        failures = 0
        for i in range(4000):
            try:
                # Sparse dirty writes: guaranteed to jam eventually.
                ssc.write_dirty(i * 64, ("d", i))
            except CacheFullError:
                failures += 1
                if failures > 20:
                    break
        # Invariant: every LOG-kind block is tracked by the engine.
        tracked = set(ssc.engine._log_blocks)
        if ssc.engine._seq_log is not None:
            tracked.add(ssc.engine._seq_log.pbn)
        if ssc.engine._active_log is not None:
            tracked.add(ssc.engine._active_log.pbn)
        for plane in ssc.chip.planes:
            for block in plane.blocks.values():
                if block.kind is BlockKind.LOG:
                    assert block.pbn in tracked, f"leaked log block {block.pbn}"


class TestPageMapActiveLeak:
    """Page-map GC opens a fresh append block mid-collection; the write
    path then allocated *another*, abandoning the partial one.  Repeated
    under pressure this drained the free pool to zero."""

    def test_no_partial_block_accumulation(self):
        chip = FlashChip(FlashGeometry(planes=2, blocks_per_plane=16,
                                       pages_per_block=8))
        ftl = PageMapFTL(chip)
        rng = random.Random(3)
        for i in range(8000):
            ftl.write(rng.randrange(ftl.logical_pages), i)
            partial = [
                block
                for plane in chip.planes
                for block in plane.blocks.values()
                if block.kind is BlockKind.DATA
                and 0 < block.write_pointer < block.num_pages
                and block is not ftl._active
            ]
            assert len(partial) == 0, f"leaked partial blocks {partial}"
            assert ftl.free_blocks() >= 1


class TestPageMapFullyValidVictims:
    """Greedy GC once collected 100 %-valid blocks, recycling space at
    exactly zero net gain until the progress guard tripped."""

    def test_dense_fill_then_overwrite(self):
        chip = FlashChip(FlashGeometry(planes=2, blocks_per_plane=16,
                                       pages_per_block=8))
        ftl = PageMapFTL(chip)
        # Fill the entire logical space (zero invalid pages anywhere).
        for lpn in range(ftl.logical_pages):
            ftl.write(lpn, ("fill", lpn))
        # Then overwrite a narrow window, forcing GC with most blocks
        # fully valid.
        for i in range(3000):
            lpn = i % 16
            ftl.write(lpn, ("over", i))
        for lpn in range(16, ftl.logical_pages, 11):
            assert ftl.read(lpn)[0] == ("fill", lpn)


class TestFormatTableRaggedRows:
    """format_table indexed ``widths`` by cell position, so a row with
    more cells than the header list raised IndexError — first hit by the
    per-shard recovery table, whose rows carry an extra ratio column."""

    def test_rows_wider_than_headers(self):
        table = format_table(
            ["shard", "us"],
            [["shard0", 120.0, "78%"], ["shard1", 154.0, "100%"]],
            title="Recovery",
        )
        lines = table.splitlines()
        assert lines[0] == "Recovery"
        # Every row renders, extra cells included and aligned.
        assert "78%" in table and "100%" in table
        assert lines[-1].startswith("shard1")

    def test_extra_column_width_tracks_widest_cell(self):
        table = format_table(["a"], [["x", "wide-cell"], ["y", "z"]])
        rows = table.splitlines()[2:]
        assert rows[0] == "x  wide-cell"
        assert rows[1] == "y  z"

    def test_header_only_and_ragged_mix(self):
        # Mixed widths across rows: widths list grows monotonically.
        table = format_table([], [["a"], ["b", "c", "d"], ["e", "f"]])
        assert [len(line.split()) for line in table.splitlines()[2:]] == [1, 3, 2]


class TestEmptyHistogramFormatting:
    """format_histogram scaled bars by the peak bucket count, so an
    all-zero histogram — any replay with no measured requests, or a
    metrics snapshot taken before traffic — divided by zero.  Empty
    must render as a placeholder, never raise."""

    def test_all_zero_counts(self):
        assert format_histogram([10.0, 20.0], [0, 0, 0]) == "(no samples)"

    def test_single_bucket_histogram(self):
        out = format_histogram([50.0], [3, 1])
        lines = out.splitlines()
        assert lines[0].lstrip().startswith("<= 50")
        assert lines[1].lstrip().startswith("+Inf")
        # Peak bucket gets the full-width bar, the other scales down.
        assert lines[0].count("#") > lines[1].count("#") > 0

    def test_count_length_mismatch_rejected(self):
        import pytest
        with pytest.raises(ValueError, match="expected 3 counts"):
            format_histogram([10.0, 20.0], [1, 2])


class TestSingleSamplePercentiles:
    """Nearest-rank percentile with one sample computes rank
    ceil(1 * pct / 100), which is 0 for pct=0 — an index-out-of-range
    unless clamped; and format_percentiles called percentile() on an
    empty population.  Both degenerate inputs must answer, not raise."""

    def test_one_sample_answers_every_percentile(self):
        latency = LatencyStats(keep_samples=True)
        latency.record(312.0)
        for pct in (0.0, 50.0, 99.0, 100.0):
            assert latency.percentile(pct) == 312.0

    def test_format_percentiles_single_sample(self):
        latency = LatencyStats(keep_samples=True)
        latency.record(312.0)
        assert format_percentiles(latency) == [
            ("p50", "312.0us"), ("p90", "312.0us"), ("p99", "312.0us"),
        ]

    def test_format_percentiles_empty_is_na(self):
        latency = LatencyStats(keep_samples=True)
        assert format_percentiles(latency) == [
            ("p50", "n/a"), ("p90", "n/a"), ("p99", "n/a"),
        ]
