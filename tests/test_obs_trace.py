"""The trace bus: golden schema, Chrome export, and the zero-cost-off
differential.

Three external contracts live here, mirroring
``tests/test_bench_schema.py``:

* ``tests/golden/trace_schema.json`` pins every declared event type's
  category and argument keys, and the JSONL line shape.  Renaming an
  event or a field breaks downstream trace readers and must show up as
  a reviewed golden-file change.
* The Chrome ``trace_event`` export must stay loadable: "X" slices
  carry durations, "i" instants carry scopes, "M" metadata names every
  lane, and the whole document is plain JSON.
* **Tracing off is free**: a replay with no tracer attached must
  produce bit-identical simulated results to one that was traced —
  the guards are ``if self.tracer is not None`` and nothing else may
  differ.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import CacheMode, SystemConfig, SystemKind
from repro.core.flashtier import build_system
from repro.obs import (
    EVENT_TYPES,
    JsonlSink,
    RingBufferSink,
    Tracer,
    chrome_trace_events,
    instrument_system,
    load_events,
    write_chrome_trace,
)
from repro.traces.synthetic import PROFILES, generate_trace

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "trace_schema.json").read_text()
)


def build_traced_system(shards: int = 1, cache_blocks: int = 256):
    profile = PROFILES["homes"].scaled(0.01)
    system = build_system(SystemConfig(
        kind=SystemKind.SSC,
        mode=CacheMode.WRITE_BACK,
        cache_blocks=cache_blocks,
        disk_blocks=profile.address_range_blocks,
        shards=shards,
    ))
    trace = generate_trace(profile, seed=42)
    return system, trace


@pytest.fixture(scope="module")
def captured_events():
    """One fixed-seed traced replay + crash/recovery; reused by every
    schema assertion in this module."""
    system, trace = build_traced_system()
    tracer = Tracer()
    instrument_system(system, tracer)
    system.replay(trace.records, warmup_fraction=0.25)
    system.device.crash()
    system.device.recover()
    return tracer.ring.events


class TestGoldenSchema:
    def test_declarations_match_golden(self):
        assert sorted(EVENT_TYPES) == sorted(GOLDEN["events"])
        for name, spec in EVENT_TYPES.items():
            assert GOLDEN["events"][name]["cat"] == spec.category
            assert GOLDEN["events"][name]["fields"] == sorted(spec.fields)

    def test_emitted_args_match_golden(self, captured_events):
        for event in captured_events:
            golden = GOLDEN["events"][event.name]
            assert sorted(event.args) == golden["fields"], event.name
            assert event.cat == golden["cat"]

    def test_replay_emits_the_catalog(self, captured_events):
        # The fixed-seed run must exercise the catalog broadly; an
        # event type silently going quiet is a regression too.
        emitted = {event.name for event in captured_events}
        expected = {
            "op.issue", "op.device", "gc.victim", "gc.merge",
            "evict.silent", "log.append", "log.flush",
            "checkpoint.begin", "checkpoint.commit", "recovery.phase",
            "flash.alloc", "flash.release",
        }
        assert expected <= emitted

    def test_jsonl_line_shape(self, captured_events, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        for event in captured_events[:50]:
            sink.accept(event)
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 50
        for line in lines:
            assert list(json.loads(line)) == GOLDEN["jsonl_keys"]
        # And load_events round-trips the dicts exactly.
        loaded = load_events(path)
        assert loaded == [e.to_dict() for e in captured_events[:50]]

    def test_timestamps_are_monotonic_per_request_stream(self, captured_events):
        issues = [e for e in captured_events if e.name == "op.issue"]
        assert issues == sorted(issues, key=lambda e: e.ts_us)


class TestChromeExport:
    def test_document_structure(self, captured_events, tmp_path):
        path = tmp_path / "trace.json"
        entries = write_chrome_trace(captured_events, path)
        doc = json.loads(path.read_text())
        assert sorted(doc) == ["displayTimeUnit", "traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == entries

    def test_phases_and_lanes(self, captured_events):
        entries = chrome_trace_events(captured_events)
        metadata = [e for e in entries if e["ph"] == "M"]
        body = [e for e in entries if e["ph"] != "M"]
        # Every lane is named exactly once, before the body.
        tids = {m["tid"] for m in metadata}
        names = {m["args"]["name"] for m in metadata}
        assert len(tids) == len(metadata) == len(names)
        assert entries[:len(metadata)] == metadata
        for entry in body:
            assert entry["tid"] in tids
            assert entry["pid"] == 0
            if entry["ph"] == "X":
                assert entry["dur"] > 0.0
            else:
                assert entry["ph"] == "i"
                assert entry["s"] == "t"
        assert {"requests", "gc", "log"} <= names

    def test_sharded_planes_get_per_shard_lanes(self):
        system, trace = build_traced_system(shards=2, cache_blocks=512)
        tracer = Tracer()
        instrument_system(system, tracer)
        system.replay(trace.records, warmup_fraction=0.25)
        lanes = {event.lane for event in tracer.ring.events}
        assert any(lane.startswith("s0:plane:") for lane in lanes)
        assert any(lane.startswith("s1:plane:") for lane in lanes)
        routed = [e for e in tracer.ring.events if e.name == "shard.route"]
        assert routed and {e.args["shard"] for e in routed} == {0, 1}


class TestTracerContract:
    def test_undeclared_event_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="undeclared event"):
            tracer.emit("made.up", lane="x")

    def test_advance_to_is_monotonic(self):
        tracer = Tracer()
        tracer.advance_to(100.0)
        tracer.advance_to(50.0)
        assert tracer.now_us == 100.0
        tracer.emit("checkpoint.begin", lane="c", seq=1)
        assert tracer.ring.events[0].ts_us == 100.0

    def test_ring_buffer_drops_oldest(self):
        sink = RingBufferSink(capacity=3)
        tracer = Tracer(sink)
        for seq in range(5):
            tracer.emit("checkpoint.begin", lane="c", seq=seq)
        assert sink.dropped == 2
        assert [e.args["seq"] for e in sink.events] == [2, 3, 4]

    def test_fan_out_to_multiple_sinks(self, tmp_path):
        ring = RingBufferSink()
        jsonl = JsonlSink(tmp_path / "e.jsonl")
        tracer = Tracer(ring, jsonl)
        tracer.emit("checkpoint.begin", lane="c", seq=7)
        tracer.close()
        assert len(ring) == 1 and jsonl.written == 1
        assert tracer.events_emitted == 1

    def test_load_events_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok"}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            load_events(path)


class TestRecoveryPhases:
    def test_three_phases_in_order(self, captured_events):
        phases = [e for e in captured_events if e.name == "recovery.phase"]
        assert [e.args["phase"] for e in phases] == \
            ["load_checkpoint", "replay_log", "materialize"]
        # Staggered start times: each phase begins when the previous
        # one's simulated cost ends.
        assert phases[0].ts_us + phases[0].dur_us == \
            pytest.approx(phases[1].ts_us)
        assert phases[1].ts_us + phases[1].dur_us == \
            pytest.approx(phases[2].ts_us)
        assert phases[2].args["count"] > 0


class TestTracingOffIsFree:
    """The acceptance criterion: with tracing disabled, all simulated
    metrics are bit-identical to a never-instrumented run."""

    @staticmethod
    def run(instrument: bool):
        system, trace = build_traced_system()
        tracer = Tracer() if instrument else None
        if instrument:
            instrument_system(system, tracer)
        stats = system.replay(trace.records, warmup_fraction=0.25,
                              keep_latencies=True)
        return system, stats, tracer

    def test_traced_run_is_bit_identical(self):
        plain_system, plain_stats, _ = self.run(instrument=False)
        traced_system, traced_stats, tracer = self.run(instrument=True)
        assert tracer.events_emitted > 0
        assert traced_stats.to_dict() == plain_stats.to_dict()
        assert traced_stats.latency.samples == plain_stats.latency.samples
        for attr in ("manager", "device"):
            theirs = getattr(traced_system, attr).stats
            ours = getattr(plain_system, attr).stats
            assert theirs == ours
        assert traced_system.device.chip.stats == \
            plain_system.device.chip.stats

    def test_detach_restores_class_default(self):
        system, stats, tracer = self.run(instrument=True)
        before = tracer.events_emitted
        instrument_system(system, None)
        system.device.write_dirty(99_999, ("w", 1))
        assert tracer.events_emitted == before
        # The class-level default is still None for fresh instances.
        fresh, _ = build_traced_system()
        assert fresh.manager.tracer is None
        assert fresh.device.tracer is None

    def test_queue_depth_replay_also_identical(self):
        def run_qd(instrument: bool):
            system, trace = build_traced_system()
            if instrument:
                instrument_system(system, Tracer())
            return system.replay(trace.records, warmup_fraction=0.25,
                                 queue_depth=4)
        assert run_qd(True).to_dict() == run_qd(False).to_dict()


class TestReportSummary:
    """summarize/format_report over a real capture (the same pipeline
    `repro trace report` runs)."""

    def test_summary_sections(self, captured_events):
        from repro.obs import format_report, summarize
        summary = summarize([e.to_dict() for e in captured_events])
        wa = summary["write_breakdown"]
        issues = [e for e in captured_events
                  if e.name == "op.issue" and e.args["kind"] == "write"]
        assert wa["user_writes"] == len(issues)
        merges = [e for e in captured_events if e.name == "gc.merge"]
        assert wa["gc_copies"] == sum(e.args["copies"] for e in merges)
        assert sum(summary["merge_kinds"].values()) == len(merges)
        assert set(summary["recovery_phases"]) == \
            {"load_checkpoint", "replay_log", "materialize"}

        report = format_report(summary, top=5)
        assert "Write-amplification breakdown" in report
        assert "Recovery phases" in report
        assert "GC-cost erase groups" in report

    def test_report_without_gc_or_recovery(self):
        from repro.obs import format_report, summarize
        summary = summarize([
            {"name": "op.issue", "dur_us": 100.0,
             "args": {"kind": "read", "lbn": 1, "hit": True,
                      "queue_wait_us": 0.0}},
        ])
        report = format_report(summary)
        # Empty sections are omitted; no division by the zero writes.
        assert "GC-cost" not in report and "Recovery" not in report
        assert "user writes" in report


class TestEventDeclarations:
    def test_redeclaration_rejected(self):
        from repro.obs import declare_event
        with pytest.raises(ValueError, match="already declared"):
            declare_event("op.issue", "op", "requests", "dup")

    def test_description_required(self):
        from repro.obs import declare_event
        with pytest.raises(ValueError, match="needs a description"):
            declare_event("test.undocumented", "test", "test", "")
        assert "test.undocumented" not in EVENT_TYPES


class TestWiringSsdBaseline:
    def test_native_sharded_ssd_planes_are_instrumented(self):
        profile = PROFILES["homes"].scaled(0.01)
        system = build_system(SystemConfig(
            kind=SystemKind.NATIVE,
            mode=CacheMode.WRITE_BACK,
            cache_blocks=512,
            disk_blocks=profile.address_range_blocks,
            shards=2,
        ))
        tracer = Tracer()
        touched = instrument_system(system, tracer)
        assert any(type(c).__name__ == "Plane" for c in touched)
        trace = generate_trace(profile, seed=42)
        system.replay(trace.records, warmup_fraction=0.25)
        lanes = {e.lane for e in tracer.ring.events}
        assert any(lane.startswith("s0:plane:") for lane in lanes)
