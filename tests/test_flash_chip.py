"""Unit tests for planes and the flash chip (timing, wear, free lists)."""

import pytest

from repro.errors import InvalidAddressError, WriteToNonErasedPageError
from repro.flash.block import BlockKind
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.page import OOBData, PageState


@pytest.fixture
def tiny_chip():
    return FlashChip(FlashGeometry(planes=2, blocks_per_plane=4, pages_per_block=4))


class TestPlane:
    def test_all_blocks_start_free(self, tiny_chip):
        for plane in tiny_chip.planes:
            assert plane.free_count == plane.num_blocks

    def test_allocate_assigns_kind(self, tiny_chip):
        plane = tiny_chip.planes[0]
        block = plane.allocate(BlockKind.LOG)
        assert block.kind is BlockKind.LOG
        assert plane.free_count == plane.num_blocks - 1
        assert not plane.is_free(block.pbn)

    def test_allocate_exhaustion(self, tiny_chip):
        plane = tiny_chip.planes[0]
        for _ in range(plane.num_blocks):
            plane.allocate(BlockKind.DATA)
        with pytest.raises(IndexError):
            plane.allocate(BlockKind.DATA)

    def test_release_requires_erased(self, tiny_chip):
        plane = tiny_chip.planes[0]
        block = plane.allocate(BlockKind.DATA)
        with pytest.raises(ValueError):
            plane.release(block)

    def test_release_foreign_block_rejected(self, tiny_chip):
        plane0, plane1 = tiny_chip.planes
        block = plane1.allocate(BlockKind.DATA)
        block.erase()
        with pytest.raises(InvalidAddressError):
            plane0.release(block)

    def test_blocks_of_kind(self, tiny_chip):
        plane = tiny_chip.planes[0]
        plane.allocate(BlockKind.LOG)
        plane.allocate(BlockKind.DATA)
        assert len(list(plane.blocks_of_kind(BlockKind.LOG))) == 1
        assert len(list(plane.blocks_of_kind(BlockKind.DATA))) == 1


class TestChipOperations:
    def test_program_and_read_round_trip(self, tiny_chip):
        oob = OOBData(lbn=42, dirty=True, seq=1)
        cost_w = tiny_chip.program_page(0, "payload", oob)
        data, read_oob, cost_r = tiny_chip.read_page(0)
        assert data == "payload"
        assert read_oob.lbn == 42
        assert cost_w == pytest.approx(tiny_chip.timing.write_cost())
        assert cost_r == pytest.approx(tiny_chip.timing.read_cost())

    def test_program_enforces_nand_order(self, tiny_chip):
        tiny_chip.program_page(0, "a", OOBData(lbn=0))
        with pytest.raises(WriteToNonErasedPageError):
            tiny_chip.program_page(0, "b", OOBData(lbn=0))

    def test_erase_returns_block_to_free_list(self, tiny_chip):
        plane = tiny_chip.planes[0]
        block = plane.allocate(BlockKind.LOG)
        ppn = tiny_chip.geometry.make_ppn(block.pbn, 0)
        tiny_chip.program_page(ppn, "x", OOBData(lbn=0))
        free_before = plane.free_count
        cost = tiny_chip.erase_block(block.pbn)
        assert cost == pytest.approx(tiny_chip.timing.erase_cost())
        assert plane.free_count == free_before + 1
        assert tiny_chip.page(ppn).state is PageState.FREE

    def test_stats_accumulate(self, tiny_chip):
        tiny_chip.program_page(0, "x", OOBData(lbn=0))
        tiny_chip.read_page(0)
        tiny_chip.scan_oob(0)
        assert tiny_chip.stats.page_writes == 1
        assert tiny_chip.stats.page_reads == 1
        assert tiny_chip.stats.oob_scans == 1
        assert tiny_chip.stats.busy_us > 0

    def test_seq_monotonic(self, tiny_chip):
        values = [tiny_chip.next_seq() for _ in range(10)]
        assert values == sorted(values)
        assert len(set(values)) == 10


class TestWearAccounting:
    def test_total_erases(self, tiny_chip):
        plane = tiny_chip.planes[0]
        block = plane.allocate(BlockKind.DATA)
        tiny_chip.erase_block(block.pbn)
        block2 = plane.allocate(BlockKind.DATA)
        tiny_chip.erase_block(block2.pbn)
        assert tiny_chip.total_erases() == 2

    def test_wear_differential(self, tiny_chip):
        plane = tiny_chip.planes[0]
        block = plane.allocate(BlockKind.DATA)
        for _ in range(3):
            tiny_chip.erase_block(block.pbn)
            # Re-allocate the same block: FIFO free list makes it come
            # back eventually; force it directly for the test.
            plane._free.remove(block.pbn)
            block.kind = BlockKind.DATA
        assert tiny_chip.wear_differential() == 3

    def test_free_blocks_total(self, tiny_chip):
        total = tiny_chip.geometry.total_blocks
        assert tiny_chip.free_blocks_total() == total
        tiny_chip.planes[0].allocate(BlockKind.DATA)
        assert tiny_chip.free_blocks_total() == total - 1
