"""Event-driven replay engine: equivalence, concurrency, open loop.

The load-bearing guarantee is serial equivalence: at ``queue_depth=1``
the engine must reproduce the legacy one-request-at-a-time replay loop
bit-for-bit — same IOPS, same miss rate, same per-request latencies.
Concurrency then has to pay off (higher queue depth → higher IOPS on a
plane-parallel, cache-resident workload), and open-loop replay must
dispatch from record arrival timestamps.
"""

import pytest

from repro import CacheMode, ReplayEngine, SystemConfig, SystemKind, build_system
from repro.sim.completion import Completion
from repro.stats.counters import LatencyStats
from repro.traces.record import OpKind, TraceRecord
from repro.traces.replay import replay_trace
from repro.traces.synthetic import HOMES, USR, generate_trace


def _build(kind=SystemKind.SSC_R, mode=CacheMode.WRITE_BACK, cache_blocks=2048):
    return build_system(
        SystemConfig(
            kind=kind,
            mode=mode,
            cache_blocks=cache_blocks,
            disk_blocks=50_000,
        )
    )


def _trace(profile=HOMES, scale=0.03, seed=7, **overrides):
    scaled = profile.scaled(scale)
    if overrides:
        from dataclasses import replace

        scaled = replace(scaled, **overrides)
    return generate_trace(scaled, seed=seed).records


class TestSerialEquivalence:
    """queue_depth=1 must be indistinguishable from replay_trace()."""

    @pytest.mark.parametrize(
        "kind,mode",
        [
            (SystemKind.SSC_R, CacheMode.WRITE_BACK),
            (SystemKind.SSC, CacheMode.WRITE_THROUGH),
            (SystemKind.NATIVE, CacheMode.WRITE_BACK),
        ],
    )
    def test_qd1_bit_for_bit(self, kind, mode):
        records = _trace()
        legacy_system = _build(kind, mode)
        legacy = replay_trace(
            legacy_system.manager,
            records,
            warmup_fraction=0.15,
            keep_latencies=True,
        )
        engine_system = _build(kind, mode)
        engine = ReplayEngine(engine_system.manager, queue_depth=1)
        event = engine.run(records, warmup_fraction=0.15, keep_latencies=True)

        assert event.ops == legacy.ops
        assert event.elapsed_us == legacy.elapsed_us
        assert event.iops() == legacy.iops()
        assert event.miss_rate() == legacy.miss_rate()
        assert event.read_hits == legacy.read_hits
        assert event.read_misses == legacy.read_misses
        assert event.latency.samples == legacy.latency.samples
        assert event.latency.max_us == legacy.latency.max_us
        assert event.queue_wait.max_us == 0.0
        assert event.device_busy_us == legacy.device_busy_us

    def test_facade_routes_queue_depth(self):
        records = _trace(scale=0.02)
        serial = _build().replay(records, warmup_fraction=0.15)
        concurrent = _build().replay(
            records, warmup_fraction=0.15, queue_depth=8
        )
        assert serial.queue_depth == 1
        assert concurrent.queue_depth == 8
        # Functional behaviour is identical at every depth: device state
        # mutates in trace order regardless of timing overlap.
        assert concurrent.read_hits == serial.read_hits
        assert concurrent.read_misses == serial.read_misses


class TestConcurrency:
    def test_deeper_queue_raises_iops_on_read_heavy_workload(self):
        # Read-heavy and cache-resident: flash planes are the binding
        # resource, so overlapping requests must raise throughput.
        records = _trace(USR, scale=0.03)
        iops = {}
        for depth in (1, 4, 16):
            system = _build(cache_blocks=8192)
            stats = ReplayEngine(system.manager, queue_depth=depth).run(
                records, warmup_fraction=0.15
            )
            iops[depth] = stats.iops()
        assert iops[4] > iops[1]
        assert iops[16] > iops[4]

    def test_queue_wait_appears_under_concurrency(self):
        records = _trace(USR, scale=0.02)
        system = _build(cache_blocks=8192)
        stats = ReplayEngine(system.manager, queue_depth=16).run(
            records, warmup_fraction=0.15
        )
        assert stats.queue_wait.max_us > 0.0
        # Latency decomposes into service plus queueing delay.
        assert stats.latency.total_us == pytest.approx(
            stats.service.total_us + stats.queue_wait.total_us
        )

    def test_utilization_reported_per_resource(self):
        records = _trace(USR, scale=0.02)
        system = _build(cache_blocks=8192)
        stats = ReplayEngine(system.manager, queue_depth=8).run(
            records, warmup_fraction=0.15
        )
        utilization = stats.utilization()
        assert any(key.startswith("plane:") for key in utilization)
        assert all(0.0 <= value <= 1.0 for value in utilization.values())

    def test_bad_queue_depth_rejected(self):
        system = _build()
        with pytest.raises(ValueError):
            ReplayEngine(system.manager, queue_depth=0)


class TestOpenLoop:
    def test_dispatches_at_arrival_timestamps(self):
        # A sparse arrival schedule: elapsed time is dominated by the
        # arrival span, not by service time.
        gap_us = 50_000.0
        records = [
            TraceRecord(OpKind.WRITE, lbn, arrival_us=index * gap_us)
            for index, lbn in enumerate(range(64))
        ]
        system = _build()
        stats = ReplayEngine(system.manager).run(records, open_loop=True)
        assert stats.ops == 64
        assert stats.elapsed_us >= 63 * gap_us

    def test_burst_arrivals_queue(self):
        # Every request arrives at time zero: all but the first must
        # wait for shared resources, so queueing delay appears.
        records = [
            TraceRecord(OpKind.READ, lbn, arrival_us=0.0) for lbn in range(128)
        ]
        system = _build()
        stats = ReplayEngine(system.manager).run(records, open_loop=True)
        assert stats.queue_wait.max_us > 0.0

    def test_missing_arrival_rejected(self):
        records = [TraceRecord(OpKind.READ, 1)]
        system = _build()
        with pytest.raises(ValueError, match="arrival_us"):
            ReplayEngine(system.manager).run(records, open_loop=True)

    def test_synthetic_arrival_process(self):
        records = _trace(HOMES, scale=0.02, arrival_rate_iops=20_000.0)
        assert all(record.arrival_us is not None for record in records)
        arrivals = [record.arrival_us for record in records]
        assert arrivals == sorted(arrivals)
        system = _build()
        stats = ReplayEngine(system.manager).run(records, open_loop=True)
        assert stats.ops == len(records)

    def test_untimed_profiles_unchanged(self):
        # The arrival process must not perturb the RNG stream of
        # existing profiles.
        plain = _trace(HOMES, scale=0.02)
        timed = _trace(HOMES, scale=0.02, arrival_rate_iops=20_000.0)
        assert [(r.op, r.lbn) for r in plain] == [(r.op, r.lbn) for r in timed]
        assert all(record.arrival_us is None for record in plain)


class TestCompletionPlumbing:
    def test_manager_read_returns_completion(self):
        system = _build()
        completion = system.manager.write(42, "payload")
        assert isinstance(completion, Completion)
        assert completion.ops  # a write-back insert touches flash
        data, read_completion = system.manager.read(42)
        assert data == "payload"
        assert read_completion.hit is True
        assert read_completion.flash_us > 0.0
        assert read_completion.disk_us == 0.0

    def test_miss_charges_disk(self):
        system = _build()
        _data, completion = system.manager.read(7)
        assert completion.hit is False
        assert completion.disk_us > 0.0
        resources = {op.resource for op in completion.ops}
        assert "disk" in resources

    def test_recorder_left_clean_after_requests(self):
        system = _build()
        system.manager.write(1, "x")
        recorder = system.manager._recorder
        assert not recorder.active
        assert recorder._ops == []


class TestPercentile:
    def test_nearest_rank_small_samples(self):
        stats = LatencyStats(keep_samples=True)
        stats.record(10.0)
        stats.record(20.0)
        # Nearest rank: p50 of two samples is the FIRST (ceil(2*0.5)=1),
        # not the second — the old int() truncation picked index 1.
        assert stats.percentile(50) == 10.0
        assert stats.percentile(51) == 20.0
        assert stats.percentile(100) == 20.0

    def test_single_sample_every_percentile(self):
        stats = LatencyStats(keep_samples=True)
        stats.record(5.0)
        for pct in (0, 1, 50, 99, 100):
            assert stats.percentile(pct) == 5.0

    def test_three_samples(self):
        stats = LatencyStats(keep_samples=True)
        for value in (1.0, 3.0, 2.0):
            stats.record(value)
        assert stats.percentile(33) == 1.0
        assert stats.percentile(34) == 2.0
        assert stats.percentile(50) == 2.0
        assert stats.percentile(67) == 3.0
        assert stats.percentile(99) == 3.0

    def test_out_of_range_pct_rejected(self):
        stats = LatencyStats(keep_samples=True)
        stats.record(1.0)
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_out_of_range_pct_rejected_on_empty_accumulator(self):
        # Regression: validation used to come after the empty-samples
        # short circuit, so percentile(150) on an empty accumulator
        # silently returned 0.0 instead of raising.
        stats = LatencyStats(keep_samples=True)
        with pytest.raises(ValueError, match="pct"):
            stats.percentile(150)
        with pytest.raises(ValueError, match="pct"):
            stats.percentile(-1)
        # In-range percentiles of an empty accumulator still read 0.0.
        assert stats.percentile(50) == 0.0

    def test_samples_property(self):
        stats = LatencyStats(keep_samples=True)
        stats.record(2.0)
        stats.record(1.0)
        assert stats.samples == (2.0, 1.0)
        assert LatencyStats().samples == ()


class TestTraceRecordArrival:
    def test_default_is_untimed(self):
        record = TraceRecord(OpKind.READ, 5)
        assert record.arrival_us is None
        assert repr(record) == "TraceRecord(R, 5)"

    def test_equality_includes_arrival(self):
        assert TraceRecord(OpKind.READ, 5) == TraceRecord(OpKind.READ, 5)
        assert TraceRecord(OpKind.READ, 5, 1.0) == TraceRecord(OpKind.READ, 5, 1.0)
        assert TraceRecord(OpKind.READ, 5) != TraceRecord(OpKind.READ, 5, 1.0)
        assert hash(TraceRecord(OpKind.READ, 5, 1.0)) == hash(
            TraceRecord(OpKind.READ, 5, 1.0)
        )

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(OpKind.READ, 5, -1.0)

    def test_repr_shows_arrival(self):
        assert "at=1.5us" in repr(TraceRecord(OpKind.WRITE, 9, 1.5))

    def test_filefmt_round_trips_arrivals(self, tmp_path):
        from repro.traces.filefmt import read_trace, write_trace

        records = [
            TraceRecord(OpKind.READ, 1),
            TraceRecord(OpKind.WRITE, 2, 1500.25),
        ]
        path = tmp_path / "timed.trace"
        write_trace(path, records)
        assert read_trace(path) == records

    def test_filefmt_bad_arrival_rejected(self, tmp_path):
        from repro.traces.filefmt import TraceFormatError, read_trace

        path = tmp_path / "bad.trace"
        path.write_text("R 5 -3.0\n")
        with pytest.raises(TraceFormatError, match="expected"):
            read_trace(path)
