"""Unit tests for repro.util.lru."""

from hypothesis import given, strategies as st

from repro.util.lru import LRUList


class TestOrdering:
    def test_empty(self):
        lru = LRUList()
        assert len(lru) == 0
        assert lru.lru() is None
        assert lru.mru() is None
        assert lru.pop_lru() is None

    def test_single_element(self):
        lru = LRUList()
        lru.touch(7)
        assert lru.lru() == 7
        assert lru.mru() == 7
        assert 7 in lru

    def test_touch_order(self):
        lru = LRUList()
        for key in (1, 2, 3):
            lru.touch(key)
        assert lru.mru() == 3
        assert lru.lru() == 1

    def test_touch_moves_to_front(self):
        lru = LRUList()
        for key in (1, 2, 3):
            lru.touch(key)
        lru.touch(1)
        assert lru.mru() == 1
        assert lru.lru() == 2

    def test_pop_lru_removes_oldest(self):
        lru = LRUList()
        for key in (1, 2, 3):
            lru.touch(key)
        assert lru.pop_lru() == 1
        assert lru.pop_lru() == 2
        assert lru.pop_lru() == 3
        assert lru.pop_lru() is None

    def test_remove_middle(self):
        lru = LRUList()
        for key in (1, 2, 3):
            lru.touch(key)
        assert lru.remove(2)
        assert list(lru.iter_lru_to_mru()) == [1, 3]

    def test_remove_head_and_tail(self):
        lru = LRUList()
        for key in (1, 2, 3):
            lru.touch(key)
        assert lru.remove(3)  # head (MRU)
        assert lru.mru() == 2
        assert lru.remove(1)  # tail (LRU)
        assert lru.lru() == 2

    def test_remove_absent_returns_false(self):
        lru = LRUList()
        assert not lru.remove(42)

    def test_iter_snapshot_allows_removal(self):
        lru = LRUList()
        for key in range(5):
            lru.touch(key)
        for key in lru.iter_lru_to_mru():
            lru.remove(key)
        assert len(lru) == 0

    def test_clear(self):
        lru = LRUList()
        lru.touch(1)
        lru.clear()
        assert len(lru) == 0
        assert 1 not in lru


@given(st.lists(st.integers(min_value=0, max_value=20)))
def test_property_matches_reference_model(operations):
    """LRUList must order keys exactly like an ordered-dict reference."""
    lru = LRUList()
    reference = {}
    for key in operations:
        lru.touch(key)
        reference.pop(key, None)
        reference[key] = True
    expected_lru_to_mru = list(reference)
    assert list(lru.iter_lru_to_mru()) == expected_lru_to_mru
    assert len(lru) == len(reference)
    if reference:
        assert lru.lru() == expected_lru_to_mru[0]
        assert lru.mru() == expected_lru_to_mru[-1]
