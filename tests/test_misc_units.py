"""Assorted unit coverage: report formatting, plane edge cases,
geometry options, exists_detailed details, and the dense/sparse memory
contrast."""

import pytest

from repro.errors import InvalidAddressError
from repro.flash.block import BlockKind
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.ssc.device import SolidStateCache
from repro.stats.report import format_ratio, format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["col", "x"], [["a", 1], ["bbbb", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("col")
        assert lines[2].startswith("a")
        # All rows align the second column at the same offset.
        assert lines[2].index("1") == lines[3].index("2")

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table

    def test_title_underline(self):
        table = format_table(["a"], [], title="Results")
        lines = table.splitlines()
        assert lines[0] == "Results"
        assert lines[1] == "=" * len("Results")

    def test_ratio(self):
        assert format_ratio(50, 200) == "25%"


class TestPlaneEdges:
    def test_allocate_specific_not_free(self):
        chip = FlashChip(FlashGeometry(planes=1, blocks_per_plane=4,
                                       pages_per_block=4))
        plane = chip.planes[0]
        block = plane.allocate(BlockKind.DATA)
        with pytest.raises(InvalidAddressError):
            plane.allocate_specific(block.pbn, BlockKind.DATA)

    def test_free_pbns_order(self):
        chip = FlashChip(FlashGeometry(planes=1, blocks_per_plane=4,
                                       pages_per_block=4))
        plane = chip.planes[0]
        assert list(plane.free_pbns()) == [0, 1, 2, 3]
        plane.allocate(BlockKind.DATA)
        assert list(plane.free_pbns()) == [1, 2, 3]


class TestGeometryOptions:
    def test_for_capacity_honours_page_geometry(self):
        geometry = FlashGeometry.for_capacity(
            1 << 20, planes=2, pages_per_block=8, page_size=2048, oob_bytes=16
        )
        assert geometry.planes == 2
        assert geometry.pages_per_block == 8
        assert geometry.page_size == 2048
        assert geometry.oob_bytes == 16
        assert geometry.capacity_bytes >= 1 << 20


class TestExistsDetailed:
    def test_sequence_stamps_monotone_with_write_order(self):
        ssc = SolidStateCache.ssc(
            FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8)
        )
        for lbn in (3, 1, 2):
            ssc.write_clean(lbn, lbn)
        entries, _ = ssc.exists_detailed(0, 10)
        seq = {lbn: stamp for lbn, _dirty, stamp in entries}
        assert seq[3] < seq[1] < seq[2]

    def test_overwrite_refreshes_stamp(self):
        ssc = SolidStateCache.ssc(
            FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8)
        )
        ssc.write_clean(1, "a")
        ssc.write_clean(2, "b")
        ssc.write_clean(1, "a2")
        entries, _ = ssc.exists_detailed(0, 10)
        seq = {lbn: stamp for lbn, _dirty, stamp in entries}
        assert seq[1] > seq[2]


class TestMemoryContrast:
    def test_sparse_beats_dense_on_sparse_occupancy(self):
        """The core Table 4 claim at unit level: for sparsely cached
        data, the SSC's sparse structures cost far less than a dense
        table over the same address range would."""
        from repro.ftl.mapping import DensePageMap
        from repro.ssc.sparse_map import SparseHashMap

        address_range = 10**6
        cached = 5_000
        dense = DensePageMap(address_range)
        sparse = SparseHashMap()
        for i in range(cached):
            key = (i * 7919) % address_range
            dense.insert(key, i)
            sparse.insert(key, i)
        assert sparse.memory_bytes() < dense.memory_bytes() / 50
