"""Unit tests for recovery materialization (the chip-reconciliation pass)."""

import pytest

from repro.flash.block import BlockKind
from repro.flash.geometry import FlashGeometry
from repro.flash.page import PageState
from repro.ssc.device import SolidStateCache


@pytest.fixture
def ssc():
    return SolidStateCache.ssc(
        FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8)
    )


class TestMaterialization:
    def test_orphan_pages_invalidated(self, ssc):
        """Pages whose mapping records were lost with the buffer become
        INVALID, not resurrected garbage."""
        ssc.write_clean(100, "buffered")  # mapping record sits in the buffer
        location = ssc.engine.current_location(100)
        assert location is not None
        _pbn, _offset, ppn = location
        lost = ssc.crash()
        assert lost >= 1
        ssc.recover()
        page = ssc.chip.page(ppn)
        assert page.state is PageState.INVALID

    def test_mapped_pages_stay_valid(self, ssc):
        ssc.write_dirty(100, "durable")
        location = ssc.engine.current_location(100)
        _pbn, _offset, ppn = location
        ssc.crash()
        ssc.recover()
        assert ssc.chip.page(ppn).state is PageState.VALID
        assert ssc.chip.page(ppn).oob.dirty

    def test_unwritten_allocated_block_returns_to_free_pool(self, ssc):
        """A log block opened but never programmed before the crash must
        rejoin the free list."""
        ssc.write_dirty(1, "x")  # opens the first log block
        free_before = ssc.engine.free_blocks()
        ssc.crash()
        ssc.recover()
        assert ssc.engine.free_blocks() >= free_before

    def test_log_block_fifo_order_by_write_sequence(self, ssc):
        """Recovered log blocks are re-queued oldest-first so the merge
        victim policy (FIFO) keeps its meaning."""
        # Fill several log blocks with dirty data (sync-flushed).
        for i in range(40):
            ssc.write_dirty(i * 100, i)
        ssc.crash()
        ssc.recover()
        queue = list(ssc.engine._log_blocks)
        assert len(queue) >= 2
        oldest_seq = []
        for pbn in queue:
            block = ssc.chip.block(pbn)
            seqs = [p.oob.seq for p in block.pages if p.oob is not None]
            oldest_seq.append(min(seqs))
        assert oldest_seq == sorted(oldest_seq)

    def test_block_kinds_rebuilt(self, ssc):
        """After recovery, every block's kind matches its contents."""
        for i in range(600):
            ssc.write_dirty(i % 180, i)  # forces merges -> data blocks
        ssc.crash()
        ssc.recover()
        reverse = ssc.engine.data_map.reverse
        for plane in ssc.chip.planes:
            for block in plane.blocks.values():
                if block.pbn in reverse:
                    assert block.kind is BlockKind.DATA
                elif block.kind is BlockKind.DATA:
                    pytest.fail(f"unmapped DATA block {block.pbn}")

    def test_counts_consistent_after_recovery(self, ssc):
        for i in range(500):
            ssc.write_dirty(i % 150, i)
        ssc.crash()
        ssc.recover()
        for plane in ssc.chip.planes:
            for block in plane.blocks.values():
                valid = sum(
                    1 for p in block.pages if p.state is PageState.VALID
                )
                dirty = sum(
                    1 for p in block.pages
                    if p.state is PageState.VALID and p.oob and p.oob.dirty
                )
                assert block.valid_count == valid, block
                assert block.dirty_count == dirty, block

    def test_reverse_map_rebuilt(self, ssc):
        for i in range(600):
            ssc.write_dirty(i % 180, i)
        ssc.crash()
        ssc.recover()
        for group, pbn in ssc.engine.data_map.items():
            assert ssc.engine.data_map.group_of(pbn) == group
