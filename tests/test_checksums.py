"""Tests for dirty-block checksum verification."""

import pytest

from repro.disk.model import Disk
from repro.errors import ChecksumError
from repro.flash.geometry import FlashGeometry
from repro.manager.dirty_table import DirtyBlockTable
from repro.manager.writeback import FlashTierWBManager, WriteBackConfig
from repro.ssc.device import SolidStateCache


def make_manager(verify=True):
    ssc = SolidStateCache.ssc(
        FlashGeometry(planes=2, blocks_per_plane=16, pages_per_block=8)
    )
    disk = Disk(10_000)
    manager = FlashTierWBManager(
        ssc, disk, WriteBackConfig(verify_checksums=verify)
    )
    return manager, ssc, disk


class TestDirtyTableChecksums:
    def test_matching_data_passes(self):
        table = DirtyBlockTable()
        table.add(5, ("payload", 1))
        assert table.checksum_matches(5, ("payload", 1))

    def test_mismatch_detected(self):
        table = DirtyBlockTable()
        table.add(5, ("payload", 1))
        assert not table.checksum_matches(5, ("payload", 2))

    def test_untracked_block_passes(self):
        table = DirtyBlockTable()
        assert table.checksum_matches(99, "anything")

    def test_disabled_checksums_always_pass(self):
        table = DirtyBlockTable(with_checksums=False)
        table.add(5, "a")
        assert table.checksum_matches(5, "b")


class TestWritebackVerification:
    def test_clean_path_verifies_ok(self):
        manager, _ssc, disk = make_manager(verify=True)
        manager.write(5, ("good", 5))
        manager.flush_dirty()
        assert disk.peek(5) == ("good", 5)

    def test_corruption_blocks_writeback(self):
        manager, ssc, disk = make_manager(verify=True)
        manager.write(5, ("good", 5))
        # Simulate device-side corruption of the cached page.
        location = ssc.engine.current_location(5)
        ssc.chip.page(location[2]).data = ("CORRUPT",)
        with pytest.raises(ChecksumError) as exc:
            manager.flush_dirty()
        assert exc.value.lbn == 5
        assert disk.peek(5) is None  # corruption never reached disk

    def test_verification_off_by_default(self):
        manager, ssc, disk = make_manager(verify=False)
        manager.write(5, ("good", 5))
        location = ssc.engine.current_location(5)
        ssc.chip.page(location[2]).data = ("CORRUPT",)
        manager.flush_dirty()  # no verification: propagates silently
        assert disk.peek(5) == ("CORRUPT",)
