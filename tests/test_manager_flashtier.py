"""Unit tests for the FlashTier write-through and write-back managers."""

import random


from repro.disk.model import Disk
from repro.flash.geometry import FlashGeometry
from repro.manager.dirty_table import DirtyBlockTable, ENTRY_BYTES
from repro.manager.writeback import FlashTierWBManager, WriteBackConfig
from repro.manager.writethrough import FlashTierWTManager
from repro.ssc.device import SolidStateCache
from repro.util.bloom import BloomFilter


def make_wt(disk_blocks=100_000, bloom=None):
    geometry = FlashGeometry(planes=4, blocks_per_plane=32, pages_per_block=16)
    ssc = SolidStateCache.ssc(geometry)
    disk = Disk(disk_blocks)
    return FlashTierWTManager(ssc, disk, bloom_filter=bloom), ssc, disk


def make_wb(disk_blocks=100_000, **config):
    geometry = FlashGeometry(planes=4, blocks_per_plane=32, pages_per_block=16)
    ssc = SolidStateCache.ssc(geometry)
    disk = Disk(disk_blocks)
    return FlashTierWBManager(ssc, disk, WriteBackConfig(**config)), ssc, disk


class TestDirtyTable:
    def test_add_remove(self):
        table = DirtyBlockTable()
        table.add(5, "data")
        assert 5 in table
        assert table.remove(5)
        assert not table.remove(5)

    def test_lru_order(self):
        table = DirtyBlockTable()
        for lbn in (1, 2, 3):
            table.add(lbn)
        table.touch(1)
        assert table.lru_block() == 2

    def test_contiguous_run(self):
        table = DirtyBlockTable()
        for lbn in (9, 10, 11, 13):
            table.add(lbn)
        assert table.contiguous_run(10) == [9, 10, 11]

    def test_contiguous_run_limit(self):
        table = DirtyBlockTable()
        for lbn in range(100):
            table.add(lbn)
        assert len(table.contiguous_run(50, limit=8)) == 8

    def test_memory_formula(self):
        table = DirtyBlockTable()
        for lbn in range(10):
            table.add(lbn)
        assert table.memory_bytes() == 10 * ENTRY_BYTES


class TestWriteThrough:
    def test_write_populates_both_tiers(self):
        manager, ssc, disk = make_wt()
        manager.write(5, "x")
        assert disk.peek(5) == "x"
        assert ssc.contains(5)

    def test_read_miss_fetches_and_caches(self):
        manager, ssc, disk = make_wt()
        disk.write(9, "cold")
        data, _ = manager.read(9)
        assert data == "cold"
        assert manager.stats.read_misses == 1
        assert ssc.contains(9)

    def test_all_data_clean(self):
        manager, ssc, _disk = make_wt()
        for lbn in range(100):
            manager.write(lbn, lbn)
        dirty, _ = ssc.exists(0, 1000)
        assert dirty == []

    def test_zero_host_memory(self):
        manager, _ssc, _disk = make_wt()
        for lbn in range(100):
            manager.write(lbn, lbn)
        assert manager.host_memory_bytes() == 0

    def test_bloom_filter_skips_sure_misses(self):
        bloom = BloomFilter(expected_items=1000)
        manager, ssc, disk = make_wt(bloom=bloom)
        disk.write(5, "x")
        reads_before = ssc.stats.user_reads
        manager.read(5)  # miss: bloom empty, SSC read skipped
        assert ssc.stats.user_reads == reads_before
        manager.read(5)  # now cached and in bloom: SSC read happens
        assert ssc.stats.user_reads == reads_before + 1

    def test_bloom_memory_counted(self):
        bloom = BloomFilter(expected_items=1000)
        manager, _ssc, _disk = make_wt(bloom=bloom)
        assert manager.host_memory_bytes() == bloom.memory_bytes()

    def test_recover_is_instant(self):
        manager, _ssc, _disk = make_wt()
        assert manager.recover_us() == 0.0

    def test_integrity_under_churn(self):
        manager, _ssc, disk = make_wt()
        rng = random.Random(1)
        shadow = {}
        for i in range(5000):
            lbn = rng.randrange(40_000)
            if rng.random() < 0.5:
                shadow[lbn] = ("v", i)
                manager.write(lbn, shadow[lbn])
            else:
                data, _ = manager.read(lbn)
                assert data == shadow.get(lbn)


class TestWriteBack:
    def test_write_stays_in_cache(self):
        manager, ssc, disk = make_wb()
        manager.write(5, "dirty")
        assert disk.peek(5) is None
        data, _ = manager.read(5)
        assert data == "dirty"
        assert 5 in manager.dirty_table

    def test_threshold_cleaning(self):
        manager, ssc, disk = make_wb(dirty_threshold=0.05)
        rng = random.Random(2)
        for i in range(2000):
            manager.write(rng.randrange(5000), i)
        assert manager.stats.cleans > 0
        assert len(manager.dirty_table) <= manager._dirty_limit + 32

    def test_cleaned_data_still_readable(self):
        manager, ssc, disk = make_wb()
        manager.write(5, "keep-me")
        manager.flush_dirty()
        assert disk.peek(5) == "keep-me"
        data, _ = manager.read(5)  # still cached (clean) until evicted
        assert data == "keep-me"

    def test_contiguous_runs_written_sequentially(self):
        manager, _ssc, disk = make_wb()
        for lbn in range(200, 232):
            manager.write(lbn, lbn)
        manager.flush_dirty()
        assert disk.stats.sequential_hits > 0

    def test_host_memory_tracks_dirty_only(self):
        manager, _ssc, _disk = make_wb()
        for lbn in range(50):
            manager.write(lbn, lbn)
        dirty_memory = manager.host_memory_bytes()
        assert dirty_memory == len(manager.dirty_table) * ENTRY_BYTES
        manager.flush_dirty()
        assert manager.host_memory_bytes() == 0

    def test_recover_rebuilds_dirty_table(self):
        manager, ssc, disk = make_wb()
        for lbn in range(40):
            manager.write(lbn, ("d", lbn))
        ssc.crash()
        ssc.recover()
        manager.dirty_table.clear()
        manager.recover_us(disk.capacity_blocks)
        dirty, _ = ssc.exists(0, disk.capacity_blocks)
        assert sorted(manager.dirty_table.iter_lru()) == sorted(dirty)
        assert len(dirty) == 40

    def test_integrity_with_writeback_cycles(self):
        manager, _ssc, disk = make_wb(dirty_threshold=0.10)
        rng = random.Random(3)
        shadow = {}
        for i in range(6000):
            lbn = rng.randrange(20_000)
            if rng.random() < 0.6:
                shadow[lbn] = ("v", i)
                manager.write(lbn, shadow[lbn])
            else:
                data, _ = manager.read(lbn)
                assert data == shadow.get(lbn)

    def test_miss_after_silent_eviction_falls_to_disk(self):
        manager, ssc, disk = make_wb()
        rng = random.Random(4)
        shadow = {}
        for i in range(8000):
            lbn = rng.randrange(60_000)
            shadow[lbn] = ("v", i)
            manager.write(lbn, shadow[lbn])
        assert ssc.stats.silent_evictions > 0
        for lbn, expected in list(shadow.items())[:300]:
            data, _ = manager.read(lbn)
            assert data == expected
