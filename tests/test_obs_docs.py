"""docs/metrics.md is generated, and CI proves it cannot drift.

The committed file must equal what the current catalogs render —
``repro obs schema --markdown --check`` is the CI gate, and these
tests run the same comparison in-process plus the CLI's exit-code
contract around it.
"""

from pathlib import Path

from repro.cli import main
from repro.obs import EVENT_TYPES, METRICS, metrics_markdown

REPO_ROOT = Path(__file__).resolve().parent.parent
METRICS_MD = REPO_ROOT / "docs" / "metrics.md"


class TestGeneratedReference:
    def test_committed_file_matches_registry(self):
        assert METRICS_MD.read_text() == metrics_markdown(), (
            "docs/metrics.md is stale: regenerate with "
            "python -m repro obs schema --markdown -o docs/metrics.md"
        )

    def test_every_event_and_metric_is_listed(self):
        rendered = metrics_markdown()
        for name in EVENT_TYPES:
            assert f"`{name}`" in rendered
        for entry in METRICS:
            assert f"`{entry[0]}`" in rendered

    def test_marked_as_generated(self):
        assert "GENERATED FILE" in METRICS_MD.read_text()


class TestSchemaCli:
    def test_check_passes_on_committed_file(self, capsys):
        assert main([
            "obs", "schema", "--markdown", "--check",
            "-o", str(METRICS_MD),
        ]) == 0
        assert "matches the registry" in capsys.readouterr().out

    def test_check_fails_on_stale_file(self, tmp_path, capsys):
        stale = tmp_path / "metrics.md"
        stale.write_text(metrics_markdown() + "\nhand edit\n")
        assert main([
            "obs", "schema", "--markdown", "--check", "-o", str(stale),
        ]) == 1
        err = capsys.readouterr().err
        assert "stale" in err and "regenerate" in err

    def test_check_fails_on_missing_file(self, tmp_path, capsys):
        assert main([
            "obs", "schema", "--markdown", "--check",
            "-o", str(tmp_path / "absent.md"),
        ]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_write_then_check_round_trips(self, tmp_path, capsys):
        out = tmp_path / "metrics.md"
        assert main([
            "obs", "schema", "--markdown", "-o", str(out),
        ]) == 0
        assert out.read_text() == metrics_markdown()
        assert main([
            "obs", "schema", "--markdown", "--check", "-o", str(out),
        ]) == 0

    def test_stdout_mode(self, capsys):
        assert main(["obs", "schema", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "## Trace events" in out and "## Metrics" in out
