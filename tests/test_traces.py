"""Unit tests for trace records, Zipf sampling, and synthetic workloads."""

import random

import pytest

from repro.errors import ConfigError
from repro.traces.record import OpKind, TraceRecord
from repro.traces.synthetic import (
    HOMES,
    MAIL,
    PROFILES,
    PROJ,
    USR,
    WorkloadProfile,
    generate_trace,
)
from repro.traces.zipf import ZipfSampler


class TestTraceRecord:
    def test_fields(self):
        record = TraceRecord(OpKind.WRITE, 42)
        assert record.is_write
        assert record.lbn == 42

    def test_read_is_not_write(self):
        assert not TraceRecord(OpKind.READ, 1).is_write

    def test_negative_lbn_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(OpKind.READ, -1)

    def test_equality_and_hash(self):
        a = TraceRecord(OpKind.READ, 5)
        b = TraceRecord(OpKind.READ, 5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != TraceRecord(OpKind.WRITE, 5)


class TestZipfSampler:
    def test_rank_zero_is_hottest(self):
        sampler = ZipfSampler(100, alpha=1.0, rng=random.Random(1))
        counts = [0] * 100
        for _ in range(20_000):
            counts[sampler.sample()] += 1
        assert counts[0] == max(counts)
        assert counts[0] > 5 * counts[50]

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfSampler(10, alpha=0.0, rng=random.Random(2))
        counts = [0] * 10
        for _ in range(20_000):
            counts[sampler.sample()] += 1
        assert max(counts) < 2 * min(counts)

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(50, alpha=1.2, rng=random.Random(3))
        total = sum(sampler.probability(rank) for rank in range(50))
        assert total == pytest.approx(1.0)

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            ZipfSampler(0, 1.0, random.Random())
        with pytest.raises(ConfigError):
            ZipfSampler(10, -1.0, random.Random())


class TestProfiles:
    def test_four_table3_workloads(self):
        assert set(PROFILES) == {"homes", "mail", "usr", "proj"}

    @pytest.mark.parametrize("profile,write_frac", [
        (HOMES, 0.959), (MAIL, 0.885), (USR, 0.059), (PROJ, 0.142),
    ])
    def test_write_fractions_match_table3(self, profile, write_frac):
        assert profile.write_fraction == write_frac

    def test_scaled_preserves_write_fraction(self):
        scaled = HOMES.scaled(0.1)
        assert scaled.write_fraction == HOMES.write_fraction
        assert scaled.total_ops < HOMES.total_ops

    def test_cache_blocks_default_quarter(self):
        assert HOMES.cache_blocks() == HOMES.unique_blocks // 4

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadProfile(
                name="bad", address_range_blocks=10, unique_blocks=100,
                total_ops=10, write_fraction=0.5,
            )


class TestGeneratedTraces:
    @pytest.fixture(scope="class")
    def homes_trace(self):
        return generate_trace(HOMES.scaled(0.15), seed=7)

    def test_deterministic_for_seed(self):
        profile = HOMES.scaled(0.05)
        a = generate_trace(profile, seed=3)
        b = generate_trace(profile, seed=3)
        assert a.records == b.records

    def test_different_seeds_differ(self):
        profile = HOMES.scaled(0.05)
        a = generate_trace(profile, seed=3)
        b = generate_trace(profile, seed=4)
        assert a.records != b.records

    def test_op_count_exact(self, homes_trace):
        assert len(homes_trace) == homes_trace.profile.total_ops

    def test_write_fraction_close(self, homes_trace):
        assert homes_trace.write_fraction() == pytest.approx(0.959, abs=0.05)

    def test_addresses_within_range(self, homes_trace):
        limit = homes_trace.profile.address_range_blocks
        assert all(0 <= record.lbn < limit for record in homes_trace.records)

    def test_unique_blocks_bounded_by_layout(self, homes_trace):
        assert homes_trace.unique_blocks_touched() <= len(homes_trace.blocks)

    def test_no_duplicate_block_placement(self, homes_trace):
        assert len(homes_trace.blocks) == len(set(homes_trace.blocks))

    def test_region_density_skew_matches_fig1(self):
        """Fig. 1's shape: most occupied regions are nearly empty while
        some are dense."""
        trace = generate_trace(PROJ.scaled(0.3), seed=5)
        densities = trace.region_densities()
        sparse = sum(1 for d in densities if d < 0.01) / len(densities)
        dense = sum(1 for d in densities if d > 0.10) / len(densities)
        assert sparse > 0.25
        assert dense > 0.03

    def test_sequential_runs_present(self, homes_trace):
        runs = 0
        previous = None
        for record in homes_trace.records:
            if previous is not None and record.lbn == previous + 1:
                runs += 1
            previous = record.lbn
        assert runs > len(homes_trace) // 20

    def test_hot_blocks_absorb_most_traffic(self, homes_trace):
        from collections import Counter
        counts = Counter(record.lbn for record in homes_trace.records)
        ranked = sorted(counts.values(), reverse=True)
        top_quarter = sum(ranked[: max(1, len(ranked) // 4)])
        assert top_quarter / len(homes_trace) > 0.5
