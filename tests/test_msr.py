"""Unit tests for the MSR Cambridge trace converter."""

import pytest

from repro.traces.msr import MSRFormatError, parse_msr_line, read_msr_trace
from repro.traces.record import OpKind


class TestParseLine:
    def test_single_block_read(self):
        records = parse_msr_line("128166372003061629,usr,0,Read,8192,4096,41286")
        assert len(records) == 1
        assert records[0].op is OpKind.READ
        assert records[0].lbn == 2

    def test_multi_block_write(self):
        records = parse_msr_line("1,usr,0,Write,0,16384,5")
        assert [record.lbn for record in records] == [0, 1, 2, 3]
        assert all(record.op is OpKind.WRITE for record in records)

    def test_unaligned_request_spans_blocks(self):
        # 2048..10239 touches blocks 0..2.
        records = parse_msr_line("1,usr,0,Read,2048,8192,5")
        assert [record.lbn for record in records] == [0, 1, 2]

    def test_zero_size_yields_nothing(self):
        assert parse_msr_line("1,usr,0,Read,4096,0,5") == []

    def test_case_insensitive_type(self):
        assert parse_msr_line("1,usr,0,READ,0,4096,5")[0].op is OpKind.READ
        assert parse_msr_line("1,usr,0,write,0,4096,5")[0].op is OpKind.WRITE

    @pytest.mark.parametrize("line", [
        "1,usr,0",                        # too few fields
        "1,usr,0,Erase,0,4096,5",         # unknown type
        "1,usr,0,Read,abc,4096,5",        # bad offset
        "1,usr,0,Read,-1,4096,5",         # negative
    ])
    def test_malformed_rejected(self, line):
        with pytest.raises(MSRFormatError):
            parse_msr_line(line)


class TestReadFile:
    def write_sample(self, tmp_path):
        path = tmp_path / "msr.csv"
        path.write_text(
            "# header comment\n"
            "1,hm,0,Read,0,4096,10\n"
            "2,hm,1,Write,8192,8192,10\n"
            "3,hm,0,Write,40960,4096,10\n"
        )
        return path

    def test_reads_all_disks(self, tmp_path):
        records = read_msr_trace(self.write_sample(tmp_path))
        assert len(records) == 4  # 1 + 2 + 1 blocks

    def test_disk_filter(self, tmp_path):
        records = read_msr_trace(self.write_sample(tmp_path), disks=[0])
        assert [record.lbn for record in records] == [0, 10]

    def test_limit(self, tmp_path):
        records = read_msr_trace(self.write_sample(tmp_path), limit=2)
        assert len(records) == 2

    def test_records_replayable(self, tmp_path):
        """Converted records must run through a real system."""
        from repro import CacheMode, SystemConfig, SystemKind, build_system

        records = read_msr_trace(self.write_sample(tmp_path))
        system = build_system(SystemConfig(
            kind=SystemKind.SSC, mode=CacheMode.WRITE_BACK,
            cache_blocks=64, disk_blocks=1000, planes=2, pages_per_block=8,
        ))
        stats = system.replay(records)
        assert stats.ops == len(records)
