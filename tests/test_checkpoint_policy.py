"""Tests for the device's checkpoint scheduling policy (§6.4)."""

import pytest

from repro.flash.geometry import FlashGeometry
from repro.ssc.device import SolidStateCache, SSCConfig


@pytest.fixture
def geometry():
    return FlashGeometry(planes=4, blocks_per_plane=32, pages_per_block=16)


class TestCheckpointTriggers:
    def test_log_growth_triggers_checkpoint(self, geometry):
        """Checkpoint when the log exceeds the configured fraction of
        the checkpoint size."""
        ssc = SolidStateCache(
            geometry,
            config=SSCConfig(checkpoint_log_ratio=0.5,
                             checkpoint_interval_writes=10**9),
        )
        for i in range(2000):
            ssc.write_dirty(i % 600, i)
        assert ssc.checkpoints.writes > 0
        # The durable log stays bounded relative to the checkpoint.
        latest = ssc.checkpoints.latest()
        assert latest is not None
        assert ssc.oplog.flushed_bytes <= 0.5 * latest.size_bytes() + 8192

    def test_write_count_triggers_checkpoint(self, geometry):
        ssc = SolidStateCache(
            geometry,
            config=SSCConfig(checkpoint_log_ratio=10.0,  # rarely by size
                             checkpoint_interval_writes=500),
        )
        for i in range(1600):
            ssc.write_dirty(i % 600, i)
        assert ssc.checkpoints.writes >= 3

    def test_checkpoint_truncates_log(self, geometry):
        ssc = SolidStateCache.ssc(geometry)
        for i in range(300):
            ssc.write_dirty(i, i)
        ssc.checkpoint_now()
        assert ssc.oplog.flushed_bytes == 0
        assert ssc.oplog.pending() == 0

    def test_no_consistency_never_checkpoints(self, geometry):
        ssc = SolidStateCache(geometry, config=SSCConfig(consistency=False))
        for i in range(500):
            ssc.write_dirty(i % 300, i)
        assert ssc.checkpoints.writes == 0
        assert ssc.checkpoint_now() == 0.0

    def test_checkpoint_cost_charged_to_write(self, geometry):
        """The write that trips a checkpoint pays for it."""
        ssc = SolidStateCache(
            geometry,
            config=SSCConfig(checkpoint_log_ratio=10.0,
                             checkpoint_interval_writes=100),
        )
        costs = [ssc.write_dirty(i % 300, i) for i in range(150)]
        # At least one write carries a visibly larger (checkpoint) cost.
        assert max(costs) > 3 * min(costs)

    def test_recovery_cost_bounded_by_policy(self, geometry):
        """§4.2.2's purpose: checkpoints keep "the log size less than a
        fixed fraction of the size of the checkpoint", so recovery cost
        is bounded regardless of how long the device has been running."""
        ratio = 2.0 / 3.0
        ssc = SolidStateCache(
            geometry, config=SSCConfig(checkpoint_log_ratio=ratio)
        )
        read_cost = ssc.chip.timing.read_cost()
        page_size = geometry.page_size
        for i in range(5000):
            ssc.write_dirty(i % 700, i)
            if i % 500 == 499:
                # Crash at arbitrary points: the replay bound must hold.
                ssc.crash()
                cost = ssc.recover()
                checkpoint = ssc.checkpoints.latest()
                ckpt_pages = (
                    -(-checkpoint.size_bytes() // page_size) if checkpoint else 0
                )
                # Bound: checkpoint read + ratio-bounded log tail, plus
                # one page of slack for the flush that tripped the limit.
                max_log_pages = -(-int(
                    ratio * (checkpoint.size_bytes() if checkpoint else 4096)
                ) // page_size) + 2
                assert cost <= (ckpt_pages + max_log_pages) * read_cost
