"""Differential layer: a one-shard array IS the single device.

:mod:`repro.core.sharding` claims the array adds zero behaviour of its
own — every cost, every hit/miss decision, every device mutation is a
member device's.  The sharpest statement of that claim is the ``N=1``
case: an array of one shard must be *bit-for-bit* indistinguishable
from driving the bare device, across the serial replay loop, the event
engine at any queue depth, and the device state left behind.

This is the lock that lets the fan-out/aggregation layer evolve
freely: any hidden cost, re-keyed resource, or reordered fan-out breaks
an exact equality here.
"""

import pytest

from repro import CacheMode, ReplayEngine, SystemConfig, SystemKind, build_system
from repro.core.flashtier import build_sharded_system
from repro.perf.wallclock import ZIPF_PROFILE
from repro.traces.replay import replay_trace
from repro.traces.synthetic import HOMES, generate_trace

ALL_COMBOS = [
    (kind, mode)
    for kind in (SystemKind.NATIVE, SystemKind.SSC, SystemKind.SSC_R)
    for mode in (CacheMode.WRITE_THROUGH, CacheMode.WRITE_BACK)
]

WORKLOADS = {
    "zipf": lambda: generate_trace(ZIPF_PROFILE.scaled(0.02), seed=7).records,
    "homes": lambda: generate_trace(HOMES.scaled(0.02), seed=11).records,
}


def _config(kind, mode, shards):
    return SystemConfig(
        kind=kind,
        mode=mode,
        cache_blocks=2048,
        disk_blocks=50_000,
        shards=shards,
    )


def _single(kind, mode):
    return build_system(_config(kind, mode, shards=1))


def _array(kind, mode):
    """The same system assembled through the sharded path, one member."""
    return build_sharded_system(_config(kind, mode, shards=1))


def _instrument(manager, journal):
    original_read, original_write = manager.read, manager.write

    def read(lbn):
        data, completion = original_read(lbn)
        journal.append(("r", completion.hit, float(completion)))
        return data, completion

    def write(lbn, data):
        completion = original_write(lbn, data)
        journal.append(("w", completion.hit, float(completion)))
        return completion

    manager.read, manager.write = read, write


def _assert_stats_identical(array_stats, single_stats):
    assert array_stats.ops == single_stats.ops
    assert array_stats.reads == single_stats.reads
    assert array_stats.writes == single_stats.writes
    assert array_stats.read_hits == single_stats.read_hits
    assert array_stats.read_misses == single_stats.read_misses
    assert array_stats.elapsed_us == single_stats.elapsed_us
    assert array_stats.iops() == single_stats.iops()
    assert array_stats.latency.samples == single_stats.latency.samples
    assert array_stats.service.samples == single_stats.service.samples
    assert array_stats.latency.total_us == single_stats.latency.total_us
    # Busy maps compare by *key name* too: a one-member array must keep
    # the unsharded "plane:<n>" names, or it is observably different.
    assert array_stats.device_busy_us == single_stats.device_busy_us


def _assert_devices_identical(array_system, single_system):
    array_chip = array_system.device.chip
    single_chip = single_system.device.chip
    assert vars(array_chip.stats) == vars(single_chip.stats)
    assert array_chip.total_erases() == single_chip.total_erases()
    assert array_chip.wear_differential() == single_chip.wear_differential()
    assert array_chip.free_blocks_total() == single_chip.free_blocks_total()
    assert (
        array_system.device.device_memory_bytes()
        == single_system.device.device_memory_bytes()
    )
    assert vars(array_system.device_stats) == vars(single_system.device_stats)
    if array_system.ssc is not None:
        assert single_system.ssc is not None
        assert (
            array_system.ssc.cached_blocks() == single_system.ssc.cached_blocks()
        )
        assert sorted(array_system.ssc.engine.iter_cached_lbns()) == sorted(
            single_system.ssc.engine.iter_cached_lbns()
        )
        assert (
            array_system.ssc.exists(0, 50_000)
            == single_system.ssc.exists(0, 50_000)
        )


class TestOneShardArrayIsTheDevice:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("kind,mode", ALL_COMBOS)
    def test_serial_replay_bit_for_bit(self, kind, mode, workload):
        records = WORKLOADS[workload]()

        single_system = _single(kind, mode)
        single_journal = []
        _instrument(single_system.manager, single_journal)
        single = replay_trace(
            single_system.manager, records,
            warmup_fraction=0.15, keep_latencies=True,
        )

        array_system = _array(kind, mode)
        array_journal = []
        _instrument(array_system.manager, array_journal)
        array = replay_trace(
            array_system.manager, records,
            warmup_fraction=0.15, keep_latencies=True,
        )

        _assert_stats_identical(array, single)
        assert array_journal == single_journal
        _assert_devices_identical(array_system, single_system)

    @pytest.mark.parametrize("queue_depth", [1, 8])
    @pytest.mark.parametrize(
        "kind,mode",
        [
            (SystemKind.SSC_R, CacheMode.WRITE_BACK),
            (SystemKind.SSC, CacheMode.WRITE_THROUGH),
            (SystemKind.NATIVE, CacheMode.WRITE_BACK),
        ],
    )
    def test_event_engine_bit_for_bit(self, kind, mode, queue_depth):
        # Queue-depth concurrency resolves resource keys through the
        # array's chip view; at N=1 the timelines must be the very same
        # plane objects, so queueing behaviour is identical too.
        records = WORKLOADS["zipf"]()

        single_system = _single(kind, mode)
        single = ReplayEngine(single_system.manager, queue_depth=queue_depth).run(
            records, warmup_fraction=0.15, keep_latencies=True
        )

        array_system = _array(kind, mode)
        array = ReplayEngine(array_system.manager, queue_depth=queue_depth).run(
            records, warmup_fraction=0.15, keep_latencies=True
        )

        _assert_stats_identical(array, single)
        assert array.queue_wait.samples == single.queue_wait.samples
        _assert_devices_identical(array_system, single_system)

    def test_recovery_identical(self):
        records = WORKLOADS["homes"]()
        single_system = _single(SystemKind.SSC, CacheMode.WRITE_BACK)
        array_system = _array(SystemKind.SSC, CacheMode.WRITE_BACK)
        replay_trace(single_system.manager, records)
        replay_trace(array_system.manager, records)

        assert array_system.ssc.crash() == single_system.ssc.crash()
        single_us = single_system.ssc.recover()
        array_us = array_system.ssc.recover()
        assert array_us == single_us
        assert array_system.ssc.last_recovery_costs == (single_us,)
        # Parallel and serial recovery coincide for one member.
        array_system.ssc.crash()
        single_system.ssc.crash()
        assert array_system.ssc.recover(parallel=False) == single_system.ssc.recover()

    def test_latency_percentiles_identical(self):
        records = WORKLOADS["zipf"]()
        single_system = _single(SystemKind.SSC_R, CacheMode.WRITE_BACK)
        array_system = _array(SystemKind.SSC_R, CacheMode.WRITE_BACK)
        single = replay_trace(
            single_system.manager, records,
            warmup_fraction=0.15, keep_latencies=True,
        )
        array = replay_trace(
            array_system.manager, records,
            warmup_fraction=0.15, keep_latencies=True,
        )
        for quantile in (0.5, 0.9, 0.99, 1.0):
            assert array.latency.percentile(quantile) == single.latency.percentile(
                quantile
            )
