"""System-level integration tests.

These drive complete systems (manager + device + disk) through mixed
workloads, crashes, and restarts, checking end-to-end data integrity —
the property every component must compose to preserve.
"""

import random

import pytest

from repro import CacheMode, SystemConfig, SystemKind, build_system
from repro.traces import HOMES, MAIL, generate_trace
from repro.traces.record import OpKind, TraceRecord
from repro.traces.replay import replay_trace


def tiny(kind, mode, consistency=True):
    return build_system(SystemConfig(
        kind=kind, mode=mode, cache_blocks=1024, disk_blocks=60_000,
        planes=4, pages_per_block=8, consistency=consistency,
    ))


class TestEndToEndIntegrity:
    """Every system variant must behave like one consistent block store."""

    @pytest.mark.parametrize("kind", list(SystemKind))
    @pytest.mark.parametrize("mode", list(CacheMode))
    def test_linearizable_against_shadow(self, kind, mode):
        system = tiny(kind, mode)
        rng = random.Random(hash((kind, mode)) & 0xFFFF)
        shadow = {}
        for i in range(4000):
            lbn = rng.randrange(50_000)
            if rng.random() < 0.55:
                shadow[lbn] = ("v", kind.value, i)
                system.manager.write(lbn, shadow[lbn])
            else:
                data, _ = system.manager.read(lbn)
                assert data == shadow.get(lbn), (kind, mode, lbn)

    @pytest.mark.parametrize("kind", list(SystemKind))
    def test_write_through_disk_always_current(self, kind):
        """In WT mode the disk must hold the newest version of every
        written block at all times."""
        system = tiny(kind, CacheMode.WRITE_THROUGH)
        rng = random.Random(5)
        shadow = {}
        for i in range(1500):
            lbn = rng.randrange(20_000)
            shadow[lbn] = ("wt", i)
            system.manager.write(lbn, shadow[lbn])
        for lbn, expected in shadow.items():
            assert system.disk.peek(lbn) == expected

    def test_write_back_flush_settles_disk(self):
        system = tiny(SystemKind.SSC, CacheMode.WRITE_BACK)
        rng = random.Random(6)
        shadow = {}
        for i in range(1200):
            lbn = rng.randrange(3000)
            shadow[lbn] = ("wb", i)
            system.manager.write(lbn, shadow[lbn])
        system.manager.flush_dirty()
        for lbn, expected in shadow.items():
            assert system.disk.peek(lbn) == expected


class TestCrashDuringWorkload:
    def test_flashtier_wb_crash_midstream(self):
        """Crash in the middle of a workload: after recovery, every
        block reads as its newest version from cache or disk."""
        system = tiny(SystemKind.SSC, CacheMode.WRITE_BACK)
        manager, ssc, disk = system.manager, system.ssc, system.disk
        rng = random.Random(7)
        shadow = {}
        for i in range(2500):
            lbn = rng.randrange(2500)
            shadow[lbn] = ("pre", i)
            manager.write(lbn, shadow[lbn])
        ssc.crash()
        ssc.recover()
        manager.recover_us(disk.capacity_blocks)
        # Continue operating; everything must still be consistent.
        for i in range(1500):
            lbn = rng.randrange(2500)
            if rng.random() < 0.5:
                shadow[lbn] = ("post", i)
                manager.write(lbn, shadow[lbn])
            else:
                data, _ = manager.read(lbn)
                assert data == shadow.get(lbn)

    def test_dirty_data_never_lost_across_crash(self):
        system = tiny(SystemKind.SSC, CacheMode.WRITE_BACK)
        manager, ssc = system.manager, system.ssc
        rng = random.Random(8)
        shadow = {}
        for i in range(1200):
            lbn = rng.randrange(1500)
            shadow[lbn] = ("d", i)
            manager.write(lbn, shadow[lbn])
        ssc.crash()
        ssc.recover()
        for lbn, expected in shadow.items():
            data, _ = manager.read(lbn)
            assert data == expected


class TestTraceDrivenParity:
    def test_all_systems_agree_on_read_values(self):
        """Replaying the same trace, every system must return identical
        data for identical reads (performance differs; contents must
        not)."""
        trace = generate_trace(MAIL.scaled(0.02), seed=4)
        reads = {}
        for kind in SystemKind:
            system = build_system(SystemConfig(
                kind=kind, mode=CacheMode.WRITE_BACK,
                cache_blocks=trace.profile.cache_blocks(),
                disk_blocks=trace.profile.address_range_blocks,
                planes=4, pages_per_block=8,
            ))
            shadow = {}
            observed = []
            for record in trace.records:
                if record.is_write:
                    shadow[record.lbn] = ("w", record.lbn)
                    system.manager.write(record.lbn, shadow[record.lbn])
                else:
                    data, _ = system.manager.read(record.lbn)
                    observed.append((record.lbn, data))
            reads[kind] = observed
        assert reads[SystemKind.NATIVE] == reads[SystemKind.SSC]
        assert reads[SystemKind.SSC] == reads[SystemKind.SSC_R]

    def test_replay_with_latency_percentiles(self):
        system = tiny(SystemKind.SSC_R, CacheMode.WRITE_BACK)
        trace = generate_trace(HOMES.scaled(0.02), seed=2)
        stats = replay_trace(system.manager, trace.records, keep_latencies=True)
        p50 = stats.latency.percentile(50)
        p99 = stats.latency.percentile(99)
        assert 0 < p50 <= p99 <= stats.latency.max_us

    def test_simulated_time_composition(self):
        """Total elapsed time must equal the sum of request latencies."""
        system = tiny(SystemKind.SSC, CacheMode.WRITE_THROUGH)
        trace = [TraceRecord(OpKind.WRITE, i % 500) for i in range(800)]
        stats = replay_trace(system.manager, trace, keep_latencies=True)
        assert stats.elapsed_us == pytest.approx(stats.latency.total_us)
