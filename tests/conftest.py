"""Shared fixtures: small device geometries sized for fast tests."""

import random

import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import TimingModel
from repro.ftl.ssd import SSD
from repro.ssc.device import SolidStateCache, SSCConfig
from repro.ssc.engine import EvictionPolicy


@pytest.fixture
def small_geometry() -> FlashGeometry:
    """4 planes x 16 blocks x 8 pages: big enough for GC, tiny to run."""
    return FlashGeometry(planes=4, blocks_per_plane=16, pages_per_block=8)


@pytest.fixture
def medium_geometry() -> FlashGeometry:
    """4 planes x 32 blocks x 16 pages."""
    return FlashGeometry(planes=4, blocks_per_plane=32, pages_per_block=16)


@pytest.fixture
def timing() -> TimingModel:
    return TimingModel()


@pytest.fixture
def chip(small_geometry) -> FlashChip:
    return FlashChip(small_geometry)


@pytest.fixture
def ssd(medium_geometry) -> SSD:
    return SSD(geometry=medium_geometry)


@pytest.fixture
def ssc(medium_geometry) -> SolidStateCache:
    return SolidStateCache.ssc(medium_geometry)


@pytest.fixture
def ssc_r(medium_geometry) -> SolidStateCache:
    return SolidStateCache.ssc_r(medium_geometry)


@pytest.fixture
def ssc_no_consistency(medium_geometry) -> SolidStateCache:
    return SolidStateCache(
        medium_geometry, config=SSCConfig(policy=EvictionPolicy.UTIL, consistency=False)
    )


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xF1A5)
