"""Event-driven replay engine.

Replays traces through a cache manager with multiple requests in
flight: closed-loop at a fixed queue depth, or open-loop from recorded
arrival timestamps.  See :mod:`repro.engine.replay`.
"""

from repro.engine.replay import ReplayEngine

__all__ = ["ReplayEngine"]
