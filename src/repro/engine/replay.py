"""Event-driven trace replay: queue-depth concurrency over planes.

The legacy :func:`~repro.traces.replay.replay_trace` loop is strictly
serial — one request in flight, IOPS capped at 1/mean-latency no matter
how many flash planes the device has.  The :class:`ReplayEngine` drives
the same cache manager but models *concurrent* requests:

* **Closed loop** — a fixed number of requests (``queue_depth``) is
  kept outstanding; each completion immediately dispatches the next
  trace record, like a benchmark thread pool.
* **Open loop** — requests dispatch at their recorded
  ``arrival_us`` timestamps regardless of completions, like replaying
  a production trace against a faster device.

Each request's :class:`~repro.sim.completion.Completion` carries the
operations it performed, attributed to contended resources (flash
planes, the disk spindle).  The engine schedules those operations onto
per-resource availability timelines: ops on distinct planes overlap,
ops on the same plane — or on the single disk spindle — queue behind
each other, and any service time not bound to a resource (controller
delays, log commits, checkpoints) stays serial within its request.

Functional device state still mutates in trace order at dispatch time
(the hit/miss sequence is identical at every queue depth); concurrency
changes *when* the time is charged, not *what* happens.  At
``queue_depth=1`` the engine reproduces the serial replay loop's
results bit-for-bit: with one request outstanding nothing can queue,
so each request starts exactly when its predecessor finishes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.manager.base import CacheManager
from repro.sim.clock import SimClock
from repro.sim.completion import Completion, is_plane_resource
from repro.sim.events import EventScheduler
from repro.stats.counters import LatencyStats, ReplayStats
from repro.traces.record import TraceRecord
from repro.traces.replay import _issue, _trace_request


class _FallbackResource:
    """Availability timeline for a resource the engine cannot map onto
    a device object (forward compatibility with new resource keys)."""

    __slots__ = ("busy_until_us",)

    def __init__(self):
        self.busy_until_us = 0.0

    def reserve(self, start_us: float, duration_us: float):
        start = start_us if start_us >= self.busy_until_us else self.busy_until_us
        finish = start + duration_us
        self.busy_until_us = finish
        return start, finish

    def reset_busy(self) -> None:
        self.busy_until_us = 0.0


class ReplayEngine:
    """Replays traces through a manager at a configurable queue depth."""

    def __init__(
        self,
        manager: CacheManager,
        queue_depth: int = 1,
        clock: Optional[SimClock] = None,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.manager = manager
        self.queue_depth = queue_depth
        self.clock = clock or SimClock()
        self._chip = self._find_chip(manager)
        self._disk = getattr(manager, "disk", None)
        self._resources: Dict[str, Any] = {}

    @staticmethod
    def _find_chip(manager: CacheManager):
        for attr in ("ssc", "ssd"):
            device = getattr(manager, attr, None)
            if device is not None and hasattr(device, "chip"):
                return device.chip
        return None

    def _resource(self, key: str):
        """Map a resource key to its availability timeline."""
        resource = self._resources.get(key)
        if resource is not None:
            return resource
        if key == "disk" and self._disk is not None:
            resource = self._disk
        elif is_plane_resource(key) and self._chip is not None:
            plane_id = int(key.split(":", 1)[1])
            planes = self._chip.planes
            resource = planes[plane_id] if plane_id < len(planes) else _FallbackResource()
        else:
            # Sharded arrays re-key their planes as "s<k>:plane:<n>" and
            # expose plane_for_resource on the chip view to resolve them.
            resolver = getattr(self._chip, "plane_for_resource", None)
            plane = resolver(key) if resolver is not None else None
            resource = plane if plane is not None else _FallbackResource()
        self._resources[key] = resource
        return resource

    def _reset_availability(self) -> None:
        """Start a measurement epoch with every resource idle."""
        if self._chip is not None:
            self._chip.reset_availability()
        if self._disk is not None and hasattr(self._disk, "reset_busy"):
            self._disk.reset_busy()
        for resource in self._resources.values():
            if isinstance(resource, _FallbackResource):
                resource.reset_busy()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _execute(
        self,
        completion: Completion,
        at_us: float,
        stats: ReplayStats,
        serial: bool,
        tracer=None,
    ):
        """Place one request's operations on the resource timelines.

        Returns ``(queue_wait_us, finish_us)``.  ``queue_wait_us`` is
        the total time the request's operations spent waiting for busy
        resources; untraced service time (controller/log overhead) is
        serial within the request and never waits.  With a ``tracer``
        attached, each operation's op.device slice is emitted at the
        time it actually ran (its resource reservation).
        """
        busy = stats.device_busy_us
        if serial:
            # One outstanding request: every resource is idle at
            # dispatch by construction, so the request runs exactly as
            # in serial replay — finish is computed from the total
            # service time alone, which is what makes queue_depth=1
            # reproduce replay_trace() bit-for-bit.
            cursor = at_us
            for resource_key, kind, duration_us in completion.ops:
                busy[resource_key] = busy.get(resource_key, 0.0) + duration_us
                if tracer is not None:
                    tracer.emit(
                        "op.device", lane=resource_key, ts_us=cursor,
                        dur_us=duration_us, kind=kind,
                    )
                    cursor += duration_us
            return 0.0, at_us + float(completion)
        wait_us = 0.0
        cursor = at_us
        resources = self._resources
        for resource_key, kind, duration_us in completion.ops:
            resource = resources.get(resource_key)
            if resource is None:
                resource = self._resource(resource_key)
            start, finish = resource.reserve(cursor, duration_us)
            wait_us += start - cursor
            cursor = finish
            busy[resource_key] = busy.get(resource_key, 0.0) + duration_us
            if tracer is not None:
                tracer.emit(
                    "op.device", lane=resource_key, ts_us=start,
                    dur_us=duration_us, kind=kind,
                )
        return wait_us, at_us + wait_us + float(completion)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def run(
        self,
        trace: Sequence[TraceRecord],
        warmup_fraction: float = 0.0,
        keep_latencies: bool = False,
        open_loop: bool = False,
    ) -> ReplayStats:
        """Replay ``trace``; returns measured statistics.

        The first ``warmup_fraction`` of requests warm the cache
        without timing.  In closed-loop mode (default) ``queue_depth``
        requests are kept outstanding; with ``open_loop=True`` every
        measured record must carry an ``arrival_us`` timestamp and is
        dispatched at its recorded arrival instead.
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        warmup_ops = int(len(trace) * warmup_fraction)

        stats = ReplayStats(
            queue_depth=self.queue_depth,
            latency=LatencyStats(keep_samples=keep_latencies),
        )
        scheduler = EventScheduler(self.clock)
        hits_before = self.manager.stats.read_hits
        misses_before = self.manager.stats.read_misses
        start_us = self.clock.now_us
        tracer = self.manager.tracer  # None unless instrumented
        arrival_origin: Optional[float] = None
        dispatch_us = start_us
        end_us = start_us

        for index, record in enumerate(trace):
            if index == warmup_ops:
                # Measurement starts here: warm-up consumed no simulated
                # time, every resource timeline starts idle.
                self._reset_availability()
                hits_before = self.manager.stats.read_hits
                misses_before = self.manager.stats.read_misses
                start_us = self.clock.now_us
                dispatch_us = start_us
            if index < warmup_ops:
                completion = _issue(self.manager, record)
                if tracer is not None:
                    _trace_request(tracer, record, completion,
                                   queue_wait_us=0.0)
                continue

            dispatch_wait_us = 0.0
            if open_loop:
                if record.arrival_us is None:
                    raise ValueError(
                        "open-loop replay requires arrival_us on every "
                        f"measured record (record {index} has none)"
                    )
                if arrival_origin is None:
                    arrival_origin = record.arrival_us
                arrival = start_us + (record.arrival_us - arrival_origin)
                # Records dispatch in trace order; a late predecessor
                # delays this request past its arrival.
                dispatch_us = max(dispatch_us, arrival)
                dispatch_wait_us = dispatch_us - arrival
            elif len(scheduler) >= self.queue_depth:
                freed = scheduler.pop()
                dispatch_us = max(dispatch_us, freed.time_us)

            if tracer is not None:
                tracer.advance_to(dispatch_us)
            completion = _issue(self.manager, record)
            wait_us, finish_us = self._execute(
                completion, dispatch_us, stats,
                serial=not open_loop and self.queue_depth == 1,
                tracer=tracer,
            )
            wait_us += dispatch_wait_us
            scheduler.schedule_at(max(finish_us, self.clock.now_us))
            if finish_us > end_us:
                end_us = finish_us

            stats.ops += 1
            if record.is_write:
                stats.writes += 1
            else:
                stats.reads += 1
            latency_us = wait_us + float(completion)
            stats.latency.record(latency_us)
            stats.service.record(float(completion))
            stats.queue_wait.record(wait_us)
            if tracer is not None:
                tracer.emit(
                    "op.issue", lane="requests", ts_us=dispatch_us,
                    dur_us=latency_us,
                    kind="write" if record.is_write else "read",
                    lbn=record.lbn, hit=completion.hit,
                    queue_wait_us=wait_us,
                )

        # Drain: run simulated time forward to the last completion.
        while scheduler:
            scheduler.pop()
        if end_us > self.clock.now_us:
            self.clock.advance_to(end_us)

        stats.elapsed_us = self.clock.now_us - start_us
        stats.read_hits = self.manager.stats.read_hits - hits_before
        stats.read_misses = self.manager.stats.read_misses - misses_before
        return stats
