"""Command-line interface.

Everything the examples and benchmarks do, driveable from a shell::

    python -m repro workloads
    python -m repro generate --workload homes --scale 0.1 -o homes.trace
    python -m repro analyze homes.trace
    python -m repro replay --workload mail --system ssc-r --mode wb
    python -m repro compare --workload homes --scale 0.1
    python -m repro recover --workload homes --scale 0.1

External traces work too: ``analyze`` and ``replay`` accept a trace
file (``--trace``), in the native line format or MSR Cambridge CSV
(``--msr``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import CacheMode, SystemConfig, SystemKind, build_system
from repro.stats.report import format_table
from repro.traces.analyze import analyze
from repro.traces.filefmt import read_trace, write_trace
from repro.traces.fiu import read_fiu_trace
from repro.traces.msr import read_msr_trace
from repro.traces.record import TraceRecord
from repro.traces.synthetic import PROFILES, generate_trace


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", choices=sorted(PROFILES), default="homes",
        help="synthetic workload profile (Table 3)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="profile scale factor (1.0 = full synthetic size)",
    )
    parser.add_argument("--seed", type=int, default=1, help="trace RNG seed")


def _add_trace_source_args(parser: argparse.ArgumentParser) -> None:
    _add_workload_args(parser)
    parser.add_argument(
        "--trace", help="replay a trace file instead of a synthetic workload"
    )
    parser.add_argument(
        "--msr", action="store_true",
        help="the --trace file is MSR Cambridge CSV",
    )
    parser.add_argument(
        "--fiu", action="store_true",
        help="the --trace file is FIU (SyLab) format",
    )
    parser.add_argument(
        "--limit", type=int, default=None,
        help="cap the number of requests taken from --trace",
    )


def _load_records(args) -> List[TraceRecord]:
    if args.trace:
        if args.msr:
            return read_msr_trace(args.trace, limit=args.limit)
        if getattr(args, "fiu", False):
            return read_fiu_trace(args.trace, limit=args.limit)
        records = read_trace(args.trace)
        return records[: args.limit] if args.limit else records
    profile = PROFILES[args.workload].scaled(args.scale)
    return generate_trace(profile, seed=args.seed).records


def _system_config(args, kind: SystemKind, records) -> SystemConfig:
    if args.trace:
        stats = analyze(records)
        cache_blocks = max(256, stats.unique_blocks // 4)
        disk_blocks = stats.max_lbn + 1
    else:
        profile = PROFILES[args.workload].scaled(args.scale)
        cache_blocks = profile.cache_blocks()
        disk_blocks = profile.address_range_blocks
    return SystemConfig(
        kind=kind,
        mode=CacheMode(args.mode),
        cache_blocks=cache_blocks,
        disk_blocks=disk_blocks,
        consistency=not args.no_consistency,
        shards=getattr(args, "shards", 1),
        routing=getattr(args, "routing", "stripe"),
    )


def _add_shard_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=int, default=1,
        help="split the cache into this many devices at fixed total "
             "capacity (default 1: a single device)",
    )
    parser.add_argument(
        "--routing", choices=("stripe", "hash"), default="stripe",
        help="erase-group-to-shard assignment policy (default stripe)",
    )


def cmd_workloads(_args) -> int:
    rows = []
    for name in sorted(PROFILES):
        profile = PROFILES[name]
        rows.append([
            name,
            f"{profile.address_range_blocks * 4096 / 1e9:.1f} GB",
            f"{profile.unique_blocks:,}",
            f"{profile.total_ops:,}",
            f"{profile.write_fraction:.1%}",
        ])
    print(format_table(
        ["workload", "range", "unique blocks", "ops", "writes"],
        rows,
        title="Synthetic workload profiles (scaled from Table 3)",
    ))
    return 0


def cmd_generate(args) -> int:
    profile = PROFILES[args.workload].scaled(args.scale)
    trace = generate_trace(profile, seed=args.seed)
    count = write_trace(args.output, trace.records)
    print(f"wrote {count:,} requests to {args.output}")
    return 0


def cmd_analyze(args) -> int:
    records = _load_records(args)
    if not records:
        print("trace is empty", file=sys.stderr)
        return 1
    print(analyze(records).summary())
    return 0


def cmd_replay(args) -> int:
    records = _load_records(args)
    kind = SystemKind(args.system)
    system = build_system(_system_config(args, kind, records))

    # Observability is opt-in: without these flags no tracer is
    # attached and the replay runs the zero-cost default path.
    # (--trace names the *input* trace file; the capture outputs are
    # --trace-out / --events-out / --metrics.)
    tracer = None
    sinks = []
    if args.trace_out or args.events_out:
        from repro.obs import JsonlSink, RingBufferSink, Tracer, instrument_system

        if args.trace_out:
            sinks.append(RingBufferSink())
        if args.events_out:
            sinks.append(JsonlSink(args.events_out))
        tracer = Tracer(*sinks)
        instrument_system(system, tracer)

    stats = system.replay(
        records,
        warmup_fraction=args.warmup,
        queue_depth=args.queue_depth,
        open_loop=args.open_loop,
        keep_latencies=bool(args.metrics),
    )

    if tracer is not None:
        from repro.obs import write_chrome_trace

        if args.trace_out:
            entries = write_chrome_trace(tracer.ring.events, args.trace_out)
            dropped = tracer.ring.dropped
            note = f" ({dropped:,} oldest events dropped)" if dropped else ""
            print(f"wrote {entries:,} Chrome trace entries to "
                  f"{args.trace_out}{note}")
        tracer.close()
        if args.events_out:
            print(f"wrote {tracer.events_emitted:,} events to {args.events_out}")
    if args.metrics:
        import json

        from repro.obs import collect

        snapshot = collect(system, stats)
        with open(args.metrics, "w") as handle:
            json.dump(snapshot.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote metrics snapshot to {args.metrics}")
    device = system.device_stats
    loop = "open loop" if args.open_loop else f"QD={stats.queue_depth}"
    if args.shards > 1:
        loop += f", {args.shards} shards/{args.routing}"
    print(f"system:              {kind.value} ({args.mode}, {loop})")
    print(f"requests measured:   {stats.ops:,}")
    print(f"IOPS:                {stats.iops():,.0f}")
    print(f"mean latency:        {stats.latency.mean_us:.0f} us")
    print(f"  service time:      {stats.service.mean_us:.0f} us")
    print(f"  queueing delay:    {stats.queue_wait.mean_us:.0f} us")
    print(f"read miss rate:      {stats.miss_rate():.1f} %")
    print(f"write amplification: {device.write_amplification():.2f}")
    print(f"erases:              {system.device.chip.total_erases():,}")
    print(f"device memory:       {system.device.device_memory_bytes() / 1024:.0f} KiB")
    print(f"host memory:         {system.manager.host_memory_bytes() / 1024:.1f} KiB")
    utilization = stats.utilization()
    if utilization:
        disk_util = utilization.get("disk", 0.0)
        plane_utils = [
            value for key, value in utilization.items()
            if key.startswith("plane:") or ":plane:" in key
        ]
        if plane_utils:
            mean_plane = sum(plane_utils) / len(plane_utils)
            print(f"plane utilization:   {100 * mean_plane:.1f} % "
                  f"(mean of {len(plane_utils)} active planes)")
        print(f"disk utilization:    {100 * disk_util:.1f} %")
    return 0


def cmd_compare(args) -> int:
    records = _load_records(args)
    rows = []
    base_iops = None
    for kind in (SystemKind.NATIVE, SystemKind.SSC, SystemKind.SSC_R):
        system = build_system(_system_config(args, kind, records))
        stats = system.replay(records, warmup_fraction=args.warmup)
        if base_iops is None:
            base_iops = stats.iops()
        rows.append([
            kind.value,
            f"{stats.iops():,.0f}",
            f"{100 * stats.iops() / base_iops:.0f}%",
            f"{stats.miss_rate():.1f}%",
            f"{system.device_stats.write_amplification():.2f}",
            f"{system.device.chip.total_erases():,}",
        ])
    print(format_table(
        ["system", "IOPS", "vs native", "miss", "write amp", "erases"],
        rows,
        title=f"System comparison ({args.mode} mode)",
    ))
    return 0


def cmd_recover(args) -> int:
    records = _load_records(args)
    system = build_system(_system_config(args, SystemKind.SSC, records))
    system.replay(records, warmup_fraction=0.0)
    assert system.ssc is not None
    cached = system.ssc.cached_blocks()
    lost = system.ssc.crash()
    recovery_us = system.ssc.recover()
    print(f"cache held {cached:,} blocks at the crash "
          f"({lost} buffered log records lost)")
    print(f"FlashTier recovery:  {recovery_us / 1000:.2f} ms (simulated)")
    per_shard = getattr(system.ssc, "last_recovery_costs", ())
    if len(per_shard) > 1:
        rows = [
            [f"shard{shard_id}", f"{cost / 1000:.2f} ms"]
            for shard_id, cost in enumerate(per_shard)
        ]
        rows.append(["serial total", f"{sum(per_shard) / 1000:.2f} ms"])
        print(format_table(
            ["shard", "recovery"], rows,
            title=f"Parallel recovery across {len(per_shard)} shards",
        ))

    native = build_system(_system_config(args, SystemKind.NATIVE, records))
    native.replay(records, warmup_fraction=0.0)
    print(f"Native-FC reload:    {native.manager.recover_manager_us() / 1000:.2f} ms")
    print(f"Native-SSD OOB scan: {native.manager.recover_device_us() / 1000:.2f} ms")
    return 0


def cmd_bench(args) -> int:
    import json

    from repro.perf import (
        compare_reports,
        default_matrix,
        quick_matrix,
        run_bench,
        validate_report,
    )

    matrix = quick_matrix() if args.quick else default_matrix()
    if args.workloads:
        matrix["workloads"] = tuple(args.workloads.split(","))
    if args.queue_depths:
        matrix["queue_depths"] = tuple(
            int(depth) for depth in args.queue_depths.split(",")
        )
    if args.scale is not None:
        matrix["scale"] = args.scale
    if args.seed is not None:
        matrix["seed"] = args.seed

    shard_note = f", shards {args.shards}" if args.shards > 1 else ""
    print(f"benchmarking (scale {matrix['scale']}, seed {matrix['seed']}"
          f"{shard_note}):")
    report = run_bench(
        workloads=matrix["workloads"],
        queue_depths=matrix["queue_depths"],
        scale=matrix["scale"],
        seed=matrix["seed"],
        shards=args.shards,
        progress=print,
    )
    validate_report(report)

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)
        failures, warnings = compare_reports(
            report, baseline, max_regress=args.max_regress
        )
        for warning in warnings:
            print(f"warning: {warning}")
        if failures:
            print(f"\nPERF REGRESSION ({len(failures)}):", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(
            f"no wall-clock regression beyond "
            f"{100 * args.max_regress:.0f}% vs {args.compare}"
        )
    return 0


def cmd_trace_report(args) -> int:
    from repro.obs import format_report, load_events, summarize

    try:
        events = load_events(args.events)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not events:
        print("trace is empty", file=sys.stderr)
        return 1
    print(format_report(summarize(events), top=args.top))
    return 0


def cmd_obs_schema(args) -> int:
    from repro.obs import metrics_markdown

    rendered = metrics_markdown()
    if args.check:
        target = args.output or "docs/metrics.md"
        try:
            with open(target) as handle:
                committed = handle.read()
        except OSError as exc:
            print(f"error: cannot read {target}: {exc}", file=sys.stderr)
            return 1
        if committed != rendered:
            print(
                f"{target} is stale: regenerate with\n"
                f"  python -m repro obs schema --markdown -o {target}",
                file=sys.stderr,
            )
            return 1
        print(f"{target} matches the registry")
        return 0
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        print(f"wrote {args.output}")
    else:
        print(rendered, end="")
    return 0


def cmd_crashcheck(args) -> int:
    from repro.check.explorer import explore

    report = explore(
        ops=args.ops,
        seed=args.seed,
        stride=args.stride,
        torn=not args.no_torn,
        bitflips=args.bitflips,
        shards=args.shards,
    )
    shard_note = f", {args.shards} shards" if args.shards > 1 else ""
    print(f"workload:            {args.ops} ops (seed {args.seed}{shard_note})")
    print(f"durability boundaries: {report.boundaries}")
    print(f"trials run:          {report.trials} "
          f"(stride {args.stride}, torn={'off' if args.no_torn else 'on'}, "
          f"bitflips {report.bitflip_trials})")
    print(f"crashes explored:    {report.explored}")
    for name in sorted(report.fired_counts):
        print(f"  {name:<20} {report.fired_counts[name]}")
    if report.violations:
        print(f"\nVIOLATIONS ({len(report.violations)}):")
        for violation in report.violations:
            print(f"  {violation}")
        return 1
    print("no contract violations")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlashTier (EuroSys 2012) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "workloads", help="list the synthetic workload profiles"
    ).set_defaults(func=cmd_workloads)

    generate = subparsers.add_parser("generate", help="write a trace file")
    _add_workload_args(generate)
    generate.add_argument("-o", "--output", required=True, help="output path")
    generate.set_defaults(func=cmd_generate)

    analyze_cmd = subparsers.add_parser("analyze", help="trace statistics")
    _add_trace_source_args(analyze_cmd)
    analyze_cmd.set_defaults(func=cmd_analyze)

    replay = subparsers.add_parser("replay", help="replay through one system")
    _add_trace_source_args(replay)
    replay.add_argument(
        "--system", choices=[kind.value for kind in SystemKind], default="ssc-r"
    )
    replay.add_argument(
        "--mode", choices=[mode.value for mode in CacheMode], default="wb"
    )
    replay.add_argument("--warmup", type=float, default=0.15)
    replay.add_argument("--no-consistency", action="store_true")
    replay.add_argument(
        "--queue-depth", type=int, default=1,
        help="outstanding requests in closed-loop replay (default 1)",
    )
    replay.add_argument(
        "--open-loop", action="store_true",
        help="dispatch at recorded arrival_us timestamps instead",
    )
    _add_shard_args(replay)
    replay.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="capture a Chrome trace (Perfetto / chrome://tracing) of "
             "the replay to FILE",
    )
    replay.add_argument(
        "--events-out", default=None, metavar="FILE",
        help="stream trace events as JSON Lines to FILE "
             "(input of 'repro trace report')",
    )
    replay.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write the metrics-registry snapshot (JSON) to FILE",
    )
    replay.set_defaults(func=cmd_replay)

    trace_cmd = subparsers.add_parser(
        "trace", help="work with captured trace-event files"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_report = trace_sub.add_parser(
        "report",
        help="summarize a JSONL event capture: GC cost, write "
             "amplification, recovery phases",
    )
    trace_report.add_argument("events", help="JSONL file from --events-out")
    trace_report.add_argument(
        "--top", type=int, default=10,
        help="rows in the top-GC-cost table (default 10)",
    )
    trace_report.set_defaults(func=cmd_trace_report)

    obs = subparsers.add_parser(
        "obs", help="observability schema utilities"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    schema = obs_sub.add_parser(
        "schema",
        help="render the event/metric catalog (docs/metrics.md source)",
    )
    schema.add_argument(
        "--markdown", action="store_true",
        help="emit Markdown (the only format, kept explicit for clarity)",
    )
    schema.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write to FILE instead of stdout",
    )
    schema.add_argument(
        "--check", action="store_true",
        help="compare against FILE (default docs/metrics.md) and fail "
             "on drift instead of writing",
    )
    schema.set_defaults(func=cmd_obs_schema)

    compare = subparsers.add_parser("compare", help="native vs SSC vs SSC-R")
    _add_trace_source_args(compare)
    compare.add_argument(
        "--mode", choices=[mode.value for mode in CacheMode], default="wb"
    )
    compare.add_argument("--warmup", type=float, default=0.15)
    compare.add_argument("--no-consistency", action="store_true")
    compare.set_defaults(func=cmd_compare)

    bench = subparsers.add_parser(
        "bench",
        help="wall-clock benchmark of the replay pipeline (BENCH_wallclock.json)",
    )
    bench.add_argument("--quick", action="store_true",
                       help="CI-sized subset (one workload, two queue depths)")
    bench.add_argument("--workloads",
                       help="comma-separated workload names (default per matrix)")
    bench.add_argument("--queue-depths",
                       help="comma-separated queue depths (default per matrix)")
    bench.add_argument("--scale", type=float, default=None,
                       help="workload scale factor override")
    bench.add_argument("--seed", type=int, default=None,
                       help="trace RNG seed override")
    bench.add_argument("-o", "--output", default=None,
                       help="write the schema-versioned report to this path")
    bench.add_argument("--compare", default=None,
                       help="baseline BENCH_*.json to gate against")
    bench.add_argument("--max-regress", type=float, default=0.20,
                       help="tolerated wall-clock throughput regression "
                            "(default 0.20 = 20%%)")
    bench.add_argument("--shards", type=int, default=1,
                       help="run every cache device as an array of this many "
                            "shards at fixed total capacity (default 1)")
    bench.set_defaults(func=cmd_bench)

    crashcheck = subparsers.add_parser(
        "crashcheck",
        help="explore every crash point of a workload against the SSC oracle",
    )
    crashcheck.add_argument("--ops", type=int, default=200,
                            help="workload length (default 200)")
    crashcheck.add_argument("--seed", type=int, default=0,
                            help="workload RNG seed (default 0)")
    crashcheck.add_argument("--stride", type=int, default=1,
                            help="sample every Nth boundary (default 1: all)")
    crashcheck.add_argument("--bitflips", type=int, default=12,
                            help="bit-flip fault trials (default 12)")
    crashcheck.add_argument("--no-torn", action="store_true",
                            help="skip the torn-write variant of each boundary")
    crashcheck.add_argument("--shards", type=int, default=1,
                            help="explore against a sharded cache array "
                                 "(default 1: a single device)")
    crashcheck.set_defaults(func=cmd_crashcheck)

    recover = subparsers.add_parser("recover", help="crash-recovery timing demo")
    _add_trace_source_args(recover)
    _add_shard_args(recover)
    recover.add_argument("--mode", default="wb")
    recover.add_argument("--no-consistency", action="store_true", help=argparse.SUPPRESS)
    recover.set_defaults(func=cmd_recover)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
