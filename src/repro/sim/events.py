"""Event scheduler: a time-ordered heap driving event-driven replay.

The original harness was strictly serial — one request in flight, the
clock advanced by each request's latency.  The scheduler decouples
*dispatch* from *completion*: work is scheduled to finish at a future
simulated time, and popping events advances the shared
:class:`~repro.sim.clock.SimClock` to each completion in time order.
Ties break by scheduling order, so replay stays deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional

from repro.sim.clock import SimClock


class Event:
    """One scheduled occurrence: a time, a payload, a live/cancelled bit."""

    __slots__ = ("time_us", "seq", "payload", "cancelled")

    def __init__(self, time_us: float, seq: int, payload: Any):
        self.time_us = time_us
        self.seq = seq
        self.payload = payload
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time_us, self.seq) < (other.time_us, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time_us:.1f}us, seq={self.seq}{state})"


class EventScheduler:
    """Min-heap of future events sharing a simulated clock.

    Scheduling in the past is rejected (simulated time is monotonic);
    popping an event advances the clock to its time.
    """

    __slots__ = ("clock", "_heap", "_seq", "_cancelled")

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        self._heap: List[Event] = []
        self._seq = 0
        self._cancelled = 0

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return len(self._heap) - self._cancelled

    def __bool__(self) -> bool:
        return len(self) > 0

    def schedule_at(self, time_us: float, payload: Any = None) -> Event:
        """Schedule ``payload`` to occur at absolute time ``time_us``."""
        if time_us < self.clock.now_us:
            raise ValueError(
                f"cannot schedule at {time_us} us: clock is already at "
                f"{self.clock.now_us} us"
            )
        event = Event(float(time_us), self._seq, payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delta_us: float, payload: Any = None) -> Event:
        """Schedule ``payload`` to occur ``delta_us`` from now."""
        if delta_us < 0:
            raise ValueError(f"cannot schedule {delta_us} us in the past")
        return self.schedule_at(self.clock.now_us + delta_us, payload)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (lazy removal; no-op if already done)."""
        if not event.cancelled:
            event.cancelled = True
            self._cancelled += 1

    def peek_time_us(self) -> Optional[float]:
        """Time of the earliest pending event, or None when idle."""
        self._drop_cancelled()
        return self._heap[0].time_us if self._heap else None

    def pop(self) -> Event:
        """Remove the earliest pending event, advancing the clock to it."""
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from an idle EventScheduler")
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.time_us)
        return event

    def run_until_idle(self) -> int:
        """Pop every pending event, invoking callable payloads.

        Callable payloads are invoked with the event; events scheduled
        by callbacks are processed too.  Returns the number of events
        processed.
        """
        processed = 0
        while self:
            event = self.pop()
            processed += 1
            if callable(event.payload):
                event.payload(event)
        return processed

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1

    def __repr__(self) -> str:
        return f"EventScheduler(pending={len(self)}, now={self.clock.now_us:.1f}us)"
