"""Simulated clock.

The whole stack does *discrete time accounting*: every device operation
computes its service time in microseconds and advances a shared
:class:`SimClock`.  Trace replay then reports IOPS as ops / elapsed
simulated time.  This mirrors the paper's use of a timing simulator whose
"performance numbers are not parameters but rather the measured output".
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in microseconds."""

    __slots__ = ("_now_us",)

    def __init__(self, start_us: float = 0.0):
        if start_us < 0:
            raise ValueError("clock cannot start before time zero")
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_us / 1e6

    def advance(self, delta_us: float) -> float:
        """Advance time by ``delta_us`` microseconds; returns new time.

        Negative advances are rejected: simulated time is monotonic and a
        negative service time always indicates an accounting bug upstream.
        """
        if delta_us < 0:
            raise ValueError(f"cannot advance clock by {delta_us} us")
        self._now_us += delta_us
        return self._now_us

    def advance_to(self, time_us: float) -> float:
        """Jump to absolute time ``time_us``; returns the new time.

        Used by the event scheduler, whose completion times are absolute;
        moving backwards is rejected for the same monotonicity reason as
        negative :meth:`advance` deltas.
        """
        if time_us < self._now_us:
            raise ValueError(
                f"cannot move clock back to {time_us} us from {self._now_us} us"
            )
        self._now_us = float(time_us)
        return self._now_us

    def reset(self) -> None:
        """Reset to time zero (used between benchmark phases)."""
        self._now_us = 0.0

    def __repr__(self) -> str:
        return f"SimClock(now={self._now_us:.1f}us)"
