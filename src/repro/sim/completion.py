"""Structured request completions and device-operation tracing.

The request path used to hand back a bare latency float: the manager
summed every device cost and the replay loop advanced the clock by the
total.  That representation cannot express *where* the time went, so
nothing above the device layer could overlap independent work — IOPS
was capped at 1/mean-latency regardless of how many flash planes the
device has.

This module is the richer currency the whole stack now trades in:

* :class:`DeviceOp` — one timed operation on one contended resource
  (a flash plane or the disk spindle).
* :class:`OpRecorder` — an ambient per-device-tree recorder; a capture
  brackets one request and collects every timed operation it caused,
  in execution order, across the flash chip and the disk.
* :class:`Completion` — a ``float`` subclass carrying the request's
  total service time (the float value, so every legacy call site that
  sums or compares latencies keeps working) plus the op trace and a
  hit/miss tag.

The :class:`~repro.engine.ReplayEngine` consumes completions to model
queue-depth concurrency: ops on distinct planes overlap, ops on the
same plane (or the one disk spindle) queue behind each other, and any
service time not bound to a resource — controller delays, log commits,
virtual-region metadata writes — stays serial within the request.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional, Tuple

#: Resource key of the (single-spindle) disk tier.
DISK_RESOURCE = "disk"

_PLANE_PREFIX = "plane:"

# Interned resource keys: every traced flash op calls plane_resource,
# and the replay engine keys busy-time dictionaries by the result, so
# one canonical string per plane keeps hashing cheap and allocation off
# the per-op path.
_PLANE_KEYS: dict = {}


def plane_resource(plane_id: int) -> str:
    """Resource key of flash plane ``plane_id`` (interned)."""
    key = _PLANE_KEYS.get(plane_id)
    if key is None:
        key = _PLANE_KEYS.setdefault(plane_id, f"{_PLANE_PREFIX}{plane_id}")
    return key


def is_plane_resource(resource: str) -> bool:
    """True if ``resource`` names a flash plane."""
    return resource.startswith(_PLANE_PREFIX)


# Interned per-shard plane keys, keyed by (shard_id, plane_id).  A
# sharded cache array namespaces each member device's planes so the
# replay engine schedules ops on different shards onto distinct
# availability timelines — that is what lets shards overlap under
# queue-depth concurrency.
_SHARD_PLANE_KEYS: dict = {}


def shard_plane_resource(shard_id: int, plane_id: int) -> str:
    """Resource key of plane ``plane_id`` on array shard ``shard_id``
    (``"s<k>:plane:<n>"``, interned)."""
    key = _SHARD_PLANE_KEYS.get((shard_id, plane_id))
    if key is None:
        key = _SHARD_PLANE_KEYS.setdefault(
            (shard_id, plane_id), f"s{shard_id}:{_PLANE_PREFIX}{plane_id}"
        )
    return key


def parse_shard_resource(resource: str) -> Optional[Tuple[int, str]]:
    """Split a shard-namespaced key into ``(shard_id, base_resource)``.

    ``"s2:plane:0"`` -> ``(2, "plane:0")``; returns None for keys that
    carry no shard namespace (``"plane:0"``, ``"disk"``).
    """
    if not resource.startswith("s"):
        return None
    head, sep, rest = resource.partition(":")
    if not sep or not head[1:].isdigit():
        return None
    return int(head[1:]), rest


class DeviceOp(NamedTuple):
    """One timed device operation attributed to one contended resource."""

    resource: str      # "plane:<n>" or "disk"
    kind: str          # "page_read", "page_write", "erase", "oob_scan", ...
    duration_us: float


class OpRecorder:
    """Collects the timed device operations of in-flight requests.

    Each traced device tree (flash chip, disk) holds a recorder; a
    cache manager shares one recorder across its devices so a request's
    operations come back in execution order.  Captures nest: a
    device-level capture inside a manager-level capture sees only its
    own operations while the outer capture sees everything.  With no
    capture active, recording is disabled and nothing is retained.
    """

    __slots__ = ("_ops", "_depth")

    def __init__(self):
        self._ops: List[DeviceOp] = []
        self._depth = 0

    @property
    def active(self) -> bool:
        """True while at least one capture is open."""
        return self._depth > 0

    def begin(self) -> int:
        """Open a capture; returns the mark to pass to :meth:`end`."""
        self._depth += 1
        return len(self._ops)

    def record(self, resource: str, kind: str, duration_us: float) -> None:
        """Record one timed operation (no-op unless a capture is open)."""
        if self._depth > 0:
            self._ops.append(DeviceOp(resource, kind, duration_us))

    def end(self, mark: int) -> Tuple[DeviceOp, ...]:
        """Close the capture opened at ``mark``; returns its operations."""
        if self._depth <= 0:
            raise RuntimeError("OpRecorder.end() without a matching begin()")
        self._depth -= 1
        ops = tuple(self._ops[mark:] if mark else self._ops)
        if self._depth == 0:
            self._ops.clear()
        return ops


class Completion(float):
    """A request's service time plus its structure.

    Subclasses ``float`` (the value is the total service latency in
    microseconds) so existing call sites that add, compare or record
    latencies keep working unchanged.  The attributes expose the
    breakdown the event-driven engine and the stats layer need:

    ``ops``
        The :class:`DeviceOp` trace, in execution order.
    ``hit``
        ``True``/``False`` for reads served from cache / disk,
        ``None`` where the notion does not apply (writes).
    """

    __slots__ = ("ops", "hit")

    def __new__(
        cls,
        latency_us: float,
        ops: Iterable[DeviceOp] = (),
        hit: Optional[bool] = None,
    ) -> "Completion":
        self = super().__new__(cls, latency_us)
        # Recorder captures already hand back tuples; re-tupling every
        # completion was a measurable per-op allocation.
        self.ops = ops if type(ops) is tuple else tuple(ops)
        self.hit = hit
        return self

    @property
    def latency_us(self) -> float:
        """Total service time (identical to ``float(self)``)."""
        return float(self)

    @property
    def disk_us(self) -> float:
        """Service time spent on the disk tier."""
        return sum(op.duration_us for op in self.ops if op.resource == DISK_RESOURCE)

    @property
    def flash_us(self) -> float:
        """Service time spent occupying flash planes."""
        return sum(op.duration_us for op in self.ops if is_plane_resource(op.resource))

    @property
    def cache_us(self) -> float:
        """Service time on the cache device (flash plus its controller,
        log-commit and metadata overheads) — everything but the disk."""
        return float(self) - self.disk_us

    @property
    def overhead_us(self) -> float:
        """Service time bound to no plane or spindle (control delays,
        log flushes, checkpoint writes).  Stays serial under concurrency."""
        return max(0.0, float(self) - sum(op.duration_us for op in self.ops))

    def __repr__(self) -> str:
        return (
            f"Completion({float(self):.1f}us, ops={len(self.ops)}, "
            f"hit={self.hit})"
        )
