"""Simulation kernel: simulated time, events, completions, crash injection."""

from repro.sim.clock import SimClock
from repro.sim.completion import (
    DISK_RESOURCE,
    Completion,
    DeviceOp,
    OpRecorder,
    is_plane_resource,
    plane_resource,
)
from repro.sim.crash import CrashPoint, CrashInjector
from repro.sim.events import Event, EventScheduler

__all__ = [
    "SimClock",
    "Event",
    "EventScheduler",
    "Completion",
    "DeviceOp",
    "OpRecorder",
    "DISK_RESOURCE",
    "plane_resource",
    "is_plane_resource",
    "CrashPoint",
    "CrashInjector",
]
