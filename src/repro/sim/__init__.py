"""Simulation kernel: simulated time and crash injection."""

from repro.sim.clock import SimClock
from repro.sim.crash import CrashPoint, CrashInjector

__all__ = ["SimClock", "CrashPoint", "CrashInjector"]
