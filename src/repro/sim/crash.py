"""Crash (power-failure) injection.

Section 6.4 of the paper evaluates recovery after a crash.  We model a
crash as the loss of all *volatile* device state: the in-memory mapping
tables, the unflushed log buffer, and any buffered ``write-clean`` data.
Durable state — flash page contents, flushed log records, checkpoints,
out-of-band metadata — survives.

:class:`CrashInjector` lets tests and benchmarks schedule a crash after a
chosen number of durable-write steps, which exercises torn-state corners
(e.g. a crash after the data page is written but before the mapping
commit) without needing real power cuts.  The injector is wired through
the durability path: :meth:`~repro.flash.chip.FlashChip.program_page`
ticks around every page program, the operation log ticks at every flush,
and the checkpoint store ticks after every checkpoint write, so arming
``after_events=k`` enumerates the k-th durability boundary a workload
crosses.  ``torn=True`` additionally models a *partial* program at the
firing boundary: the in-flight page (or log/checkpoint write) is left on
flash as detectably damaged garbage instead of vanishing cleanly.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Dict, Optional

from repro.errors import CrashError


class CrashPoint(Enum):
    """Where, within a compound device operation, a crash fires."""

    BEFORE_DATA_WRITE = auto()
    AFTER_DATA_WRITE = auto()     # data durable, mapping commit lost
    AFTER_LOG_FLUSH = auto()      # data + mapping durable
    AFTER_CHECKPOINT = auto()


class CrashInjector:
    """Arms a crash to fire after N durability events.

    Devices call :meth:`tick` at each internal durability boundary,
    tagging it with a :class:`CrashPoint`.  When the armed countdown hits
    zero at a matching point, :class:`~repro.errors.CrashError` is raised;
    the owner (device) catches it at its public-operation boundary and
    transitions into the crashed state.

    Every tick — armed or not — is also counted (``ticks`` total and
    ``point_counts`` per kind), which is how the crash-state explorer
    enumerates the durability boundaries of a workload: one unarmed
    baseline run yields the boundary count, then one armed run per
    boundary index replays the workload and crashes there.
    """

    def __init__(self):
        self._armed = False
        self._countdown = 0
        self._match: Optional[CrashPoint] = None
        self.fired = False
        self.fired_point: Optional[CrashPoint] = None
        #: When True, the crash models a *torn write*: the durability
        #: boundary it fires at was mid-flight, so the owner leaves
        #: partially-programmed, checksum-damaged state behind instead
        #: of losing the write cleanly.
        self.torn = False
        self.ticks = 0
        self.point_counts: Dict[CrashPoint, int] = {}

    def arm(
        self,
        after_events: int = 0,
        at: Optional[CrashPoint] = None,
        torn: bool = False,
    ) -> None:
        """Fire a crash after ``after_events`` further matching ticks."""
        if after_events < 0:
            raise ValueError("after_events must be >= 0")
        self._armed = True
        self._countdown = after_events
        self._match = at
        self.torn = torn
        self.fired = False
        self.fired_point = None

    def disarm(self) -> None:
        """Cancel any pending crash."""
        self._armed = False
        self._match = None
        self.torn = False

    def tick(self, point: CrashPoint) -> None:
        """Advance the countdown; raise :class:`CrashError` when it fires."""
        self.ticks += 1
        self.point_counts[point] = self.point_counts.get(point, 0) + 1
        if not self._armed:
            return
        if self._match is not None and point is not self._match:
            return
        if self._countdown > 0:
            self._countdown -= 1
            return
        self._armed = False
        self.fired = True
        self.fired_point = point
        raise CrashError(f"simulated power failure at {point.name}")
