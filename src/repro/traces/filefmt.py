"""Trace file I/O.

A minimal, line-oriented text format — one request per line::

    R 123456
    W 123457 1500.0

Comment lines start with ``#``.  The optional third column is the
request's arrival time in microseconds (trace-relative), used by
open-loop replay; lines without it parse with ``arrival_us=None``.
This matches the spirit of the user-space trace-replay framework the
paper added to its cache manager (§5) and lets externally-captured
block traces be replayed through the same harness.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.errors import ReproError
from repro.traces.record import OpKind, TraceRecord

PathLike = Union[str, Path]


class TraceFormatError(ReproError):
    """A trace file line could not be parsed."""


def write_trace(path: PathLike, records: Iterable[TraceRecord]) -> int:
    """Write ``records`` to ``path``; returns the record count."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        handle.write("# repro block trace v1: <op R|W> <lbn> [arrival_us]\n")
        for record in records:
            if record.arrival_us is None:
                handle.write(f"{record.op.value} {record.lbn}\n")
            else:
                handle.write(
                    f"{record.op.value} {record.lbn} {record.arrival_us!r}\n"
                )
            count += 1
    return count


def read_trace(path: PathLike) -> List[TraceRecord]:
    """Read every record from ``path``."""
    return list(iter_trace(path))


def iter_trace(path: PathLike) -> Iterator[TraceRecord]:
    """Stream records from ``path`` without holding them all in memory."""
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise TraceFormatError(
                    f"{path}:{line_number}: expected '<op> <lbn> [arrival_us]',"
                    f" got {line!r}"
                )
            op_text, lbn_text = parts[0], parts[1]
            try:
                op = OpKind(op_text)
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{line_number}: unknown op {op_text!r}"
                ) from None
            try:
                lbn = int(lbn_text)
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{line_number}: bad block number {lbn_text!r}"
                ) from None
            arrival_us = None
            if len(parts) == 3:
                try:
                    arrival_us = float(parts[2])
                except ValueError:
                    raise TraceFormatError(
                        f"{path}:{line_number}: expected numeric arrival time,"
                        f" got {parts[2]!r}"
                    ) from None
                if arrival_us < 0:
                    raise TraceFormatError(
                        f"{path}:{line_number}: expected non-negative arrival"
                        f" time, got {parts[2]!r}"
                    )
            yield TraceRecord(op, lbn, arrival_us)
