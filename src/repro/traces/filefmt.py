"""Trace file I/O.

A minimal, line-oriented text format — one request per line::

    R 123456
    W 123457

Comment lines start with ``#``.  This matches the spirit of the
user-space trace-replay framework the paper added to its cache manager
(§5) and lets externally-captured block traces be replayed through the
same harness.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.errors import ReproError
from repro.traces.record import OpKind, TraceRecord

PathLike = Union[str, Path]


class TraceFormatError(ReproError):
    """A trace file line could not be parsed."""


def write_trace(path: PathLike, records: Iterable[TraceRecord]) -> int:
    """Write ``records`` to ``path``; returns the record count."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        handle.write("# repro block trace v1: <op R|W> <lbn>\n")
        for record in records:
            handle.write(f"{record.op.value} {record.lbn}\n")
            count += 1
    return count


def read_trace(path: PathLike) -> List[TraceRecord]:
    """Read every record from ``path``."""
    return list(iter_trace(path))


def iter_trace(path: PathLike) -> Iterator[TraceRecord]:
    """Stream records from ``path`` without holding them all in memory."""
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise TraceFormatError(
                    f"{path}:{line_number}: expected '<op> <lbn>', got {line!r}"
                )
            op_text, lbn_text = parts
            try:
                op = OpKind(op_text)
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{line_number}: unknown op {op_text!r}"
                ) from None
            try:
                lbn = int(lbn_text)
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{line_number}: bad block number {lbn_text!r}"
                ) from None
            yield TraceRecord(op, lbn)
