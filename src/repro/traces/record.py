"""Trace records: one block-level I/O request each.

All requests are 4,096-byte, sector-aligned block operations, matching
the paper's trace preprocessing (Table 3 caption).
"""

from __future__ import annotations

from enum import Enum


class OpKind(Enum):
    """Request type."""

    READ = "R"
    WRITE = "W"


class TraceRecord:
    """One I/O request: an operation on a 4 KB disk block."""

    __slots__ = ("op", "lbn")

    def __init__(self, op: OpKind, lbn: int):
        if lbn < 0:
            raise ValueError(f"lbn must be >= 0, got {lbn}")
        self.op = op
        self.lbn = lbn

    @property
    def is_write(self) -> bool:
        return self.op is OpKind.WRITE

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return self.op is other.op and self.lbn == other.lbn

    def __hash__(self) -> int:
        return hash((self.op, self.lbn))

    def __repr__(self) -> str:
        return f"TraceRecord({self.op.value}, {self.lbn})"
