"""Trace records: one block-level I/O request each.

All requests are 4,096-byte, sector-aligned block operations, matching
the paper's trace preprocessing (Table 3 caption).
"""

from __future__ import annotations

from enum import Enum
from typing import Optional


class OpKind(Enum):
    """Request type."""

    READ = "R"
    WRITE = "W"


class TraceRecord:
    """One I/O request: an operation on a 4 KB disk block.

    ``arrival_us`` optionally records when the request was issued,
    in microseconds relative to the trace's own origin.  Open-loop
    replay dispatches requests at these timestamps; closed-loop replay
    ignores them.  Traces without timing information leave it ``None``.
    """

    __slots__ = ("op", "lbn", "arrival_us")

    def __init__(self, op: OpKind, lbn: int, arrival_us: Optional[float] = None):
        if lbn < 0:
            raise ValueError(f"lbn must be >= 0, got {lbn}")
        if arrival_us is not None and arrival_us < 0:
            raise ValueError(f"arrival_us must be >= 0, got {arrival_us}")
        self.op = op
        self.lbn = lbn
        self.arrival_us = arrival_us

    @property
    def is_write(self) -> bool:
        return self.op is OpKind.WRITE

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.op is other.op
            and self.lbn == other.lbn
            and self.arrival_us == other.arrival_us
        )

    def __hash__(self) -> int:
        return hash((self.op, self.lbn, self.arrival_us))

    def __repr__(self) -> str:
        if self.arrival_us is None:
            return f"TraceRecord({self.op.value}, {self.lbn})"
        return f"TraceRecord({self.op.value}, {self.lbn}, at={self.arrival_us:.1f}us)"
