"""FIU (SyLab) block-trace converter.

The paper's *homes* and *mail* workloads come from the FIU traces
published with the I/O-deduplication study it cites (Koller &
Rangaswami, FAST '10).  Those distribute as whitespace-separated text::

    timestamp pid process lba size op major minor [md5]

where ``lba`` and ``size`` are in 512-byte sectors and ``op`` is
``W``/``R`` (case-insensitive; some variants spell it ``Write``).
This converter folds each request onto 4 KB block boundaries, matching
the paper's preprocessing ("all requests are sector-aligned and 4,096
bytes"), so holders of the original traces can replay them directly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

from repro.errors import ReproError
from repro.traces.record import OpKind, TraceRecord

PathLike = Union[str, Path]

SECTOR_SIZE = 512
BLOCK_SIZE = 4096
SECTORS_PER_BLOCK = BLOCK_SIZE // SECTOR_SIZE


class FIUFormatError(ReproError):
    """An FIU trace line could not be parsed."""


def _timestamp_us(field: str) -> Optional[float]:
    """Parse the timestamp field (seconds) to microseconds; tolerant —
    a mangled field yields ``None`` rather than an error, since arrival
    times are optional."""
    try:
        seconds = float(field)
    except ValueError:
        return None
    if seconds < 0:
        return None
    return seconds * 1e6


def parse_fiu_line(line: str, line_number: int = 0) -> Sequence[TraceRecord]:
    """Convert one FIU trace line into its 4 KB block requests.

    Each record carries the request's arrival time in microseconds
    (absolute; :func:`iter_fiu_trace` rebases to the trace origin), or
    ``None`` when the timestamp field is unusable.
    """
    parts = line.split()
    if len(parts) < 6:
        raise FIUFormatError(
            f"line {line_number}: expected >=6 fields, got {len(parts)}"
        )
    try:
        lba = int(parts[3])
        size_sectors = int(parts[4])
    except ValueError:
        raise FIUFormatError(
            f"line {line_number}: non-integer lba/size {parts[3]!r},{parts[4]!r}"
        ) from None
    if lba < 0 or size_sectors < 0:
        raise FIUFormatError(f"line {line_number}: negative lba or size")
    op_field = parts[5].strip().lower()
    if op_field.startswith("w"):
        op = OpKind.WRITE
    elif op_field.startswith("r"):
        op = OpKind.READ
    else:
        raise FIUFormatError(f"line {line_number}: unknown op {parts[5]!r}")
    if size_sectors == 0:
        return []
    arrival_us = _timestamp_us(parts[0])
    first = lba // SECTORS_PER_BLOCK
    last = (lba + size_sectors - 1) // SECTORS_PER_BLOCK
    return [TraceRecord(op, lbn, arrival_us) for lbn in range(first, last + 1)]


def iter_fiu_trace(
    path: PathLike, limit: Optional[int] = None
) -> Iterator[TraceRecord]:
    """Stream 4 KB block requests from an FIU trace file."""
    emitted = 0
    origin_us: Optional[float] = None
    with open(path, "r", encoding="ascii", errors="replace") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            for record in parse_fiu_line(line, line_number):
                if record.arrival_us is not None:
                    # Rebase absolute timestamps to the trace's origin.
                    if origin_us is None:
                        origin_us = record.arrival_us
                    record.arrival_us = max(0.0, record.arrival_us - origin_us)
                yield record
                emitted += 1
                if limit is not None and emitted >= limit:
                    return


def read_fiu_trace(path: PathLike, limit: Optional[int] = None) -> List[TraceRecord]:
    """Load an FIU trace into memory as 4 KB block requests."""
    return list(iter_fiu_trace(path, limit=limit))
