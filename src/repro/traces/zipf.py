"""Zipf-distributed sampling over ranked items.

Caching workloads are skew-driven: a small set of hot blocks receives
most accesses (the paper's §2 finds the top 25 % most-accessed blocks
absorb the workload, with hot blocks written 4x more often than
average).  The generator uses a classic Zipf popularity law over block
ranks; the CDF is precomputed once so each sample is a binary search.
"""

from __future__ import annotations

import bisect
import random
from typing import List

from repro.errors import ConfigError


class ZipfSampler:
    """Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^alpha."""

    def __init__(self, n: int, alpha: float, rng: random.Random):
        if n <= 0:
            raise ConfigError("n must be positive")
        if alpha < 0:
            raise ConfigError("alpha must be >= 0")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        cdf: List[float] = []
        total = 0.0
        for rank in range(1, n + 1):
            total += rank ** -alpha
            cdf.append(total)
        self._cdf = cdf
        self._total = total

    def sample(self) -> int:
        """Draw one rank (0 is the hottest)."""
        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cdf, point)

    def probability(self, rank: int) -> float:
        """Probability mass of ``rank``."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range")
        return (rank + 1) ** -self.alpha / self._total
