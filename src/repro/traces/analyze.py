"""Trace analysis: the statistics behind Table 3 and Figure 1.

Given any request sequence — synthetic or converted from a real trace —
this computes the characteristics the paper uses to motivate the SSC
design: write fraction, address-space sparseness (region densities),
overwrite skew, sequentiality, and hot-set concentration.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.traces.record import TraceRecord


@dataclass
class TraceStats:
    """Aggregate characteristics of one trace."""

    ops: int = 0
    reads: int = 0
    writes: int = 0
    unique_blocks: int = 0
    unique_written: int = 0
    min_lbn: int = 0
    max_lbn: int = 0
    overwrite_ratio: float = 0.0      # mean writes per written block
    sequential_fraction: float = 0.0  # requests continuing a +1 run
    hot_quarter_share: float = 0.0    # traffic share of the hottest 25%
    region_blocks: int = 1000
    region_densities: List[float] = field(default_factory=list)

    @property
    def write_fraction(self) -> float:
        return self.writes / self.ops if self.ops else 0.0

    @property
    def address_range_blocks(self) -> int:
        return self.max_lbn - self.min_lbn + 1 if self.ops else 0

    @property
    def footprint_bytes(self) -> int:
        """Bytes of unique data touched (4 KB blocks)."""
        return self.unique_blocks * 4096

    def sparse_region_fraction(self, threshold: float = 0.01) -> float:
        """Fraction of occupied regions below ``threshold`` density
        (Fig. 1's headline: >55 % of regions under 1 %)."""
        if not self.region_densities:
            return 0.0
        below = sum(1 for d in self.region_densities if d < threshold)
        return below / len(self.region_densities)

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"requests:            {self.ops:,} "
            f"({self.write_fraction:.1%} writes)",
            f"unique blocks:       {self.unique_blocks:,} "
            f"({self.footprint_bytes / (1 << 20):,.1f} MiB footprint)",
            f"address range:       blocks {self.min_lbn:,}..{self.max_lbn:,}",
            f"overwrite ratio:     {self.overwrite_ratio:.2f} writes/written block",
            f"sequentiality:       {self.sequential_fraction:.1%} of requests",
            f"hot 25% of blocks:   {self.hot_quarter_share:.1%} of traffic",
            f"regions <1% dense:   {self.sparse_region_fraction():.1%} "
            f"(of {len(self.region_densities)} occupied "
            f"{self.region_blocks}-block regions)",
        ]
        return "\n".join(lines)


def analyze(records: Sequence[TraceRecord], region_blocks: int = 1000) -> TraceStats:
    """Compute :class:`TraceStats` over ``records``."""
    stats = TraceStats(region_blocks=region_blocks)
    if not records:
        return stats

    access_counts: Counter = Counter()
    write_counts: Counter = Counter()
    regions: Dict[int, set] = {}
    sequential = 0
    previous_lbn = None
    min_lbn = max_lbn = records[0].lbn

    for record in records:
        lbn = record.lbn
        stats.ops += 1
        if record.is_write:
            stats.writes += 1
            write_counts[lbn] += 1
        else:
            stats.reads += 1
        access_counts[lbn] += 1
        regions.setdefault(lbn // region_blocks, set()).add(lbn)
        if previous_lbn is not None and lbn == previous_lbn + 1:
            sequential += 1
        previous_lbn = lbn
        if lbn < min_lbn:
            min_lbn = lbn
        if lbn > max_lbn:
            max_lbn = lbn

    stats.unique_blocks = len(access_counts)
    stats.unique_written = len(write_counts)
    stats.min_lbn = min_lbn
    stats.max_lbn = max_lbn
    stats.overwrite_ratio = (
        stats.writes / stats.unique_written if stats.unique_written else 0.0
    )
    stats.sequential_fraction = sequential / stats.ops
    ranked = sorted(access_counts.values(), reverse=True)
    top = ranked[: max(1, len(ranked) // 4)]
    stats.hot_quarter_share = sum(top) / stats.ops
    stats.region_densities = [
        len(blocks) / region_blocks for blocks in regions.values()
    ]
    return stats
