"""Trace replay through a cache manager.

Drives a :class:`~repro.manager.base.CacheManager` with a request
sequence, advancing a simulated clock by each request's service time.
Reported IOPS is requests per second of *simulated* time, mirroring the
paper's trace-replay framework (§5).

Warm-up follows §6.5: "To warm the cache, we replay the first 15 % of
the trace before gathering statistics."
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.manager.base import CacheManager
from repro.sim.clock import SimClock
from repro.stats.counters import LatencyStats, ReplayStats
from repro.traces.record import TraceRecord


def replay_trace(
    manager: CacheManager,
    trace: Sequence[TraceRecord],
    warmup_fraction: float = 0.0,
    clock: Optional[SimClock] = None,
    keep_latencies: bool = False,
) -> ReplayStats:
    """Replay ``trace`` through ``manager``; returns measured statistics.

    The first ``warmup_fraction`` of requests are executed but excluded
    from the returned statistics (their time does not count toward
    IOPS, and hit/miss counters are reset after warm-up).
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    clock = clock or SimClock()
    warmup_ops = int(len(trace) * warmup_fraction)

    for record in trace[:warmup_ops]:
        _issue(manager, record)

    hits_before = manager.stats.read_hits
    misses_before = manager.stats.read_misses
    stats = ReplayStats(latency=LatencyStats(keep_samples=keep_latencies))
    start_us = clock.now_us

    for record in trace[warmup_ops:]:
        latency = _issue(manager, record)
        clock.advance(latency)
        stats.ops += 1
        if record.is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.latency.record(latency)

    stats.elapsed_us = clock.now_us - start_us
    stats.read_hits = manager.stats.read_hits - hits_before
    stats.read_misses = manager.stats.read_misses - misses_before
    return stats


def _issue(manager: CacheManager, record: TraceRecord) -> float:
    if record.is_write:
        return manager.write(record.lbn, ("w", record.lbn))
    _data, latency = manager.read(record.lbn)
    return latency
