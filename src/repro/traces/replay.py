"""Serial trace replay through a cache manager.

Drives a :class:`~repro.manager.base.CacheManager` with a request
sequence, advancing a simulated clock by each request's service time.
Reported IOPS is requests per second of *simulated* time, mirroring the
paper's trace-replay framework (§5).  One request is outstanding at a
time; the event-driven :class:`~repro.engine.ReplayEngine` generalizes
this to higher queue depths and open-loop arrival schedules.

Warm-up follows §6.5: "To warm the cache, we replay the first 15 % of
the trace before gathering statistics."
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.manager.base import CacheManager
from repro.sim.clock import SimClock
from repro.sim.completion import Completion
from repro.stats.counters import LatencyStats, ReplayStats
from repro.traces.record import TraceRecord


def replay_trace(
    manager: CacheManager,
    trace: Sequence[TraceRecord],
    warmup_fraction: float = 0.0,
    clock: Optional[SimClock] = None,
    keep_latencies: bool = False,
) -> ReplayStats:
    """Replay ``trace`` through ``manager``; returns measured statistics.

    The first ``warmup_fraction`` of requests are executed but excluded
    from the returned statistics: their time does not count toward
    IOPS, and the hit/miss baseline is re-snapshotted when measurement
    begins.  The trace is walked once — no sliced copies.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    clock = clock or SimClock()
    warmup_ops = int(len(trace) * warmup_fraction)

    stats = ReplayStats(latency=LatencyStats(keep_samples=keep_latencies))
    hits_before = manager.stats.read_hits
    misses_before = manager.stats.read_misses
    start_us = clock.now_us
    tracer = manager.tracer  # None unless instrument_system attached one

    for index, record in enumerate(trace):
        if index == warmup_ops:
            # Warm-up ends here: re-baseline the counters and the clock
            # origin before this request is issued.
            hits_before = manager.stats.read_hits
            misses_before = manager.stats.read_misses
            start_us = clock.now_us
        if tracer is not None:
            tracer.advance_to(clock.now_us)
        completion = _issue(manager, record)
        if tracer is not None:
            _trace_request(tracer, record, completion, queue_wait_us=0.0)
        if index < warmup_ops:
            continue
        latency_us = float(completion)
        clock.advance(latency_us)
        stats.ops += 1
        if record.is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.latency.record(latency_us)
        stats.service.record(latency_us)
        stats.queue_wait.record(0.0)
        for op in completion.ops:
            stats.add_busy(op.resource, op.duration_us)

    stats.elapsed_us = clock.now_us - start_us
    stats.read_hits = manager.stats.read_hits - hits_before
    stats.read_misses = manager.stats.read_misses - misses_before
    return stats


def _issue(manager: CacheManager, record: TraceRecord) -> Completion:
    if record.is_write:
        return manager.write(record.lbn, ("w", record.lbn))
    _data, completion = manager.read(record.lbn)
    return completion


def _trace_request(
    tracer,
    record: TraceRecord,
    completion: Completion,
    queue_wait_us: float,
    start_us: Optional[float] = None,
) -> None:
    """Emit one request's op.issue slice plus its per-device op.device
    slices, laid back-to-back from the issue time (the serial loop's
    timing; the event engine passes real reservation times instead)."""
    issue_ts = tracer.now_us if start_us is None else start_us
    tracer.emit(
        "op.issue", lane="requests", ts_us=issue_ts,
        dur_us=float(completion),
        kind="write" if record.is_write else "read",
        lbn=record.lbn, hit=completion.hit, queue_wait_us=queue_wait_us,
    )
    cursor = issue_ts
    for op in completion.ops:
        tracer.emit(
            "op.device", lane=op.resource, ts_us=cursor,
            dur_us=op.duration_us, kind=op.kind,
        )
        cursor += op.duration_us
