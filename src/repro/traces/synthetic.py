"""Synthetic workload generation calibrated to the paper's traces.

Table 3 characterizes the four evaluation workloads; Figure 1 shows how
sparsely their hot blocks cover the disk address space.  The production
traces themselves (FIU *homes*/*mail*, MSR *usr*/*proj*) are not
redistributable, so each profile here reproduces, at ~1/30 scale, the
properties the paper's arguments rest on:

* **Sparse region density** (Fig. 1): unique blocks are scattered over
  regions of the address space with a heavy-tailed density law, so most
  occupied regions hold under 1 % of their blocks while a few are dense.
* **Spatial clustering**: within a region, blocks are laid out as
  contiguous extents, giving the erase-block-level group density that
  block-level mapping and contiguous dirty-block cleaning exploit.
* **Popularity skew**: extents are ranked by a Zipf law (hot extents
  absorb most traffic; the paper finds hot blocks written ~4x more than
  average).  *mail*'s larger alpha reproduces its 3x-higher
  overwrites-per-block ratio versus *homes*.
* **Write fraction** per Table 3 (95.9 / 88.5 / 5.9 / 14.2 %).
* **Sequential runs**: a fraction of requests continue runs over
  contiguous blocks, as file- and mail-server traffic does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.traces.record import OpKind, TraceRecord
from repro.traces.zipf import ZipfSampler


@dataclass(frozen=True)
class WorkloadProfile:
    """Parameters of one synthetic workload."""

    name: str
    address_range_blocks: int
    unique_blocks: int
    total_ops: int
    write_fraction: float
    zipf_alpha: float = 1.0
    sequential_prob: float = 0.12
    run_length_mean: int = 8
    region_blocks: int = 1000          # Fig. 1 granularity, scaled from 100k
    region_density_alpha: float = 1.1  # heavy tail over region densities
    extent_max: int = 64
    # Optional Poisson arrival process for open-loop replay: mean request
    # rate in IOPS.  None (the default) generates untimed records, which
    # keeps existing profiles bit-identical.
    arrival_rate_iops: Optional[float] = None

    def __post_init__(self):
        if self.unique_blocks > self.address_range_blocks:
            raise ConfigError("unique_blocks cannot exceed the address range")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigError("write_fraction must be in [0, 1]")
        if self.total_ops < 1 or self.unique_blocks < 1:
            raise ConfigError("total_ops and unique_blocks must be positive")
        if self.arrival_rate_iops is not None and self.arrival_rate_iops <= 0:
            raise ConfigError("arrival_rate_iops must be positive when set")

    def scaled(self, factor: float) -> "WorkloadProfile":
        """Return a proportionally smaller/larger profile (for tests).

        The Fig.-1 region granularity scales along with the address
        range so the density CDF keeps its shape across scales.
        """
        if factor <= 0:
            raise ConfigError("factor must be positive")
        return replace(
            self,
            address_range_blocks=max(1000, int(self.address_range_blocks * factor)),
            unique_blocks=max(64, int(self.unique_blocks * factor)),
            total_ops=max(256, int(self.total_ops * factor)),
            region_blocks=max(250, int(self.region_blocks * factor)),
        )

    def cache_blocks(self, fraction: float = 0.25) -> int:
        """Cache size for the top ``fraction`` most-accessed blocks,
        the paper's sizing rule (§6.1)."""
        return max(64, int(self.unique_blocks * fraction))


# Profiles scaled from Table 3 (ranges in 4 KB blocks; ops preserve the
# write fractions and the relative ops-per-unique-block ratios).
HOMES = WorkloadProfile(
    name="homes",
    address_range_blocks=500_000,
    unique_blocks=16_000,
    total_ops=120_000,
    write_fraction=0.959,
    zipf_alpha=1.05,
    sequential_prob=0.70,   # file-server traffic is file-granular
    run_length_mean=24,
)
MAIL = WorkloadProfile(
    name="mail",
    address_range_blocks=280_000,
    unique_blocks=24_000,
    total_ops=160_000,
    write_fraction=0.885,
    zipf_alpha=1.25,  # mail overwrites each block ~3x more than homes
    sequential_prob=0.60,   # message appends stream into mailbox files
    run_length_mean=16,
    region_density_alpha=1.6,  # mailboxes pack into few very dense regions
)
USR = WorkloadProfile(
    name="usr",
    address_range_blocks=520_000,
    unique_blocks=36_000,
    total_ops=100_000,
    write_fraction=0.059,
    zipf_alpha=0.90,
    sequential_prob=0.55,   # home-directory file scans
    run_length_mean=24,
)
PROJ = WorkloadProfile(
    name="proj",
    address_range_blocks=800_000,
    unique_blocks=32_000,
    total_ops=140_000,
    write_fraction=0.142,
    zipf_alpha=0.90,
    sequential_prob=0.60,   # project-tree scans and builds
    run_length_mean=24,
)

PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile for profile in (HOMES, MAIL, USR, PROJ)
}


class SyntheticTrace:
    """A generated trace: block layout plus the request sequence."""

    def __init__(self, profile: WorkloadProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed
        rng = random.Random(seed)
        self.extents = _place_extents(profile, rng)
        self.blocks = [
            lbn for start, length in self.extents for lbn in range(start, start + length)
        ]
        self.records = _generate_ops(profile, self.extents, rng)
        if profile.arrival_rate_iops is not None:
            # A separate, seed-derived RNG keeps the op/address stream
            # bit-identical with and without arrival timing.
            _assign_arrivals(
                self.records,
                profile.arrival_rate_iops,
                random.Random(f"arrivals:{seed}"),
            )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def unique_blocks_touched(self) -> int:
        return len({record.lbn for record in self.records})

    def write_fraction(self) -> float:
        if not self.records:
            return 0.0
        writes = sum(1 for record in self.records if record.is_write)
        return writes / len(self.records)

    def region_densities(self) -> List[float]:
        """Per-occupied-region fraction of blocks referenced (Fig. 1)."""
        region_blocks = self.profile.region_blocks
        counts: Dict[int, set] = {}
        for record in self.records:
            counts.setdefault(record.lbn // region_blocks, set()).add(record.lbn)
        return [len(blocks) / region_blocks for blocks in counts.values()]


def generate_trace(profile: WorkloadProfile, seed: int = 0) -> SyntheticTrace:
    """Generate a reproducible synthetic trace for ``profile``."""
    return SyntheticTrace(profile, seed)


# ----------------------------------------------------------------------
# Placement: heavy-tailed region densities, contiguous extents within.
# ----------------------------------------------------------------------

def _place_extents(
    profile: WorkloadProfile, rng: random.Random
) -> List[Tuple[int, int]]:
    """Lay out ``unique_blocks`` as extents over the address space.

    Regions receive block budgets proportional to 1/(i+1)^alpha over a
    random region order, reproducing Figure 1's skew: a few dense
    regions, a long tail of nearly-empty ones.
    """
    num_regions = max(1, profile.address_range_blocks // profile.region_blocks)
    order = list(range(num_regions))
    rng.shuffle(order)

    weights = [(i + 1) ** -profile.region_density_alpha for i in range(num_regions)]
    total_weight = sum(weights)

    # Reserve a small budget of isolated single-block regions — the
    # sparse tail of Figure 1.  Capped at ~2 % of the unique blocks so
    # the sparse singles never dominate cache behaviour.
    singles = min(num_regions // 2, max(4, profile.unique_blocks // 50))

    # Assign the rest over multiple passes: one pass can fall short when
    # the weight distribution concentrates more blocks into a region
    # than its cap allows (dense-trace profiles like mail).
    cap = max(1, int(profile.region_blocks * 0.8))
    budgets = [0] * num_regions
    remaining = profile.unique_blocks - singles
    while remaining > 0:
        progressed = False
        for rank in range(num_regions):
            if remaining <= 0:
                break
            share = int(round(profile.unique_blocks * weights[rank] / total_weight))
            add = min(share, cap - budgets[rank], remaining)
            if add > 0:
                budgets[rank] += add
                remaining -= add
                progressed = True
        if not progressed:
            break  # every region at cap; the address space is exhausted

    # Sprinkle the singles over otherwise-empty regions, tail first.
    for rank in range(num_regions - 1, -1, -1):
        if singles <= 0:
            break
        if budgets[rank] == 0:
            budgets[rank] = 1
            singles -= 1

    extents: List[Tuple[int, int]] = []
    for rank, region in enumerate(order):
        if budgets[rank] > 0:
            extents.extend(_extents_in_region(profile, region, budgets[rank], rng))
    return extents


def _extents_in_region(
    profile: WorkloadProfile, region: int, budget: int, rng: random.Random
) -> List[Tuple[int, int]]:
    """Lay ``budget`` blocks into ``region`` as contiguous extents.

    Dense regions (large budgets) get large, tightly packed extents —
    file-server hot sets are clustered, which is what gives cached data
    the erase-block-group density that block-level mapping needs.
    Sparse regions get one small extent.
    """
    base = region * profile.region_blocks
    end = base + profile.region_blocks
    placed: List[Tuple[int, int]] = []
    if budget <= 16:
        start = base + rng.randrange(max(1, profile.region_blocks - budget))
        placed.append((start, budget))
        return placed

    # Dense regions: extents are laid out like file-system allocations —
    # aligned to 256 KB boundaries (64 blocks) and contiguous, so hot
    # files cover whole erase-block groups.
    align = 64
    cursor = base + rng.randrange(max(1, profile.region_blocks // (4 * align))) * align
    while budget > 0 and cursor < end:
        length = min(
            budget,
            rng.randint(1, max(1, profile.extent_max * 2 // align)) * align,
            end - cursor,
        )
        placed.append((cursor, length))
        budget -= length
        cursor += length
        if rng.random() < 0.3:  # occasional allocation gap
            cursor += align
    return placed


# ----------------------------------------------------------------------
# Request generation: Zipf over extents, runs within extents.
# ----------------------------------------------------------------------

def _generate_ops(
    profile: WorkloadProfile,
    extents: Sequence[Tuple[int, int]],
    rng: random.Random,
) -> List[TraceRecord]:
    sampler = ZipfSampler(len(extents), profile.zipf_alpha, rng)
    # Shuffle popularity ranks so hot extents are spread over the space.
    rank_to_extent = list(range(len(extents)))
    rng.shuffle(rank_to_extent)

    records: List[TraceRecord] = []
    while len(records) < profile.total_ops:
        extent = extents[rank_to_extent[sampler.sample()]]
        start, length = extent
        is_write = rng.random() < profile.write_fraction
        op = OpKind.WRITE if is_write else OpKind.READ
        if rng.random() < profile.sequential_prob:
            # A file access: streams from the extent's start (whole-file
            # read/rewrite) half the time, from a random offset otherwise.
            offset = 0 if rng.random() < 0.5 else rng.randrange(length)
            run = 1 + min(
                int(rng.expovariate(1.0 / profile.run_length_mean)),
                length - offset - 1,
            )
        else:
            offset = rng.randrange(length)
            run = 1
        for step in range(run):
            if len(records) >= profile.total_ops:
                break
            records.append(TraceRecord(op, start + offset + step))
    return records


def _assign_arrivals(
    records: Sequence[TraceRecord], rate_iops: float, rng: random.Random
) -> None:
    """Stamp Poisson arrival times onto ``records`` in place.

    Exponential inter-arrival gaps at ``rate_iops`` mean requests per
    second.  Runs as a post-pass with its own RNG so the op/address
    stream of a profile is bit-identical with and without arrivals.
    """
    rate_per_us = rate_iops / 1e6
    arrival_us = 0.0
    for record in records:
        arrival_us += rng.expovariate(rate_per_us)
        record.arrival_us = arrival_us
