"""MSR Cambridge block-trace converter.

The paper's *usr* and *proj* workloads come from the MSR Cambridge
traces (Narayanan et al., FAST '08), distributed as CSV with fields::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

where Offset and Size are in bytes.  This module converts them into the
library's 4 KB block requests (each multi-block request expands to one
record per 4 KB block, matching the paper's "all requests are
sector-aligned and 4,096 bytes" preprocessing), so anyone with the real
traces can replay them through the same harness as the synthetic ones.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

from repro.errors import ReproError
from repro.traces.record import OpKind, TraceRecord

PathLike = Union[str, Path]

BLOCK_SIZE = 4096


#: Windows filetime ticks (100 ns) per microsecond — the MSR Timestamp
#: field's unit.
_TICKS_PER_US = 10.0


class MSRFormatError(ReproError):
    """An MSR trace line could not be parsed."""


def _timestamp_us(field: str) -> Optional[float]:
    """Parse the Timestamp field to microseconds; None if unusable.

    Timestamps are Windows filetime ticks (100 ns).  Some republished
    MSR variants blank or mangle the field; arrival times are optional,
    so parsing stays tolerant.
    """
    try:
        ticks = float(field)
    except ValueError:
        return None
    if ticks < 0:
        return None
    return ticks / _TICKS_PER_US


def parse_msr_line(line: str, line_number: int = 0) -> Sequence[TraceRecord]:
    """Convert one MSR CSV line into its 4 KB block requests.

    Each record carries the request's arrival time in microseconds
    (absolute filetime; :func:`iter_msr_trace` rebases to the trace
    origin), or ``None`` when the Timestamp field is unusable.
    """
    parts = line.strip().split(",")
    if len(parts) < 6:
        raise MSRFormatError(
            f"line {line_number}: expected >=6 CSV fields, got {len(parts)}"
        )
    type_field = parts[3].strip().lower()
    if type_field == "read":
        op = OpKind.READ
    elif type_field == "write":
        op = OpKind.WRITE
    else:
        raise MSRFormatError(f"line {line_number}: unknown type {parts[3]!r}")
    try:
        offset = int(parts[4])
        size = int(parts[5])
    except ValueError:
        raise MSRFormatError(
            f"line {line_number}: non-integer offset/size {parts[4]!r},{parts[5]!r}"
        ) from None
    if offset < 0 or size < 0:
        raise MSRFormatError(f"line {line_number}: negative offset or size")
    if size == 0:
        return []
    arrival_us = _timestamp_us(parts[0])
    first = offset // BLOCK_SIZE
    last = (offset + size - 1) // BLOCK_SIZE
    return [TraceRecord(op, lbn, arrival_us) for lbn in range(first, last + 1)]


def iter_msr_trace(
    path: PathLike,
    disks: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
) -> Iterator[TraceRecord]:
    """Stream block requests from an MSR CSV trace.

    ``disks`` restricts to particular DiskNumber values (the MSR files
    multiplex several volumes); ``limit`` caps the number of emitted
    block requests (the paper itself replays only trace prefixes).
    """
    wanted = set(disks) if disks is not None else None
    emitted = 0
    origin_us: Optional[float] = None
    with open(path, "r", encoding="ascii", errors="replace") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if wanted is not None:
                parts = line.split(",", 3)
                if len(parts) < 3:
                    raise MSRFormatError(
                        f"line {line_number}: expected CSV fields"
                    )
                try:
                    disk = int(parts[2])
                except ValueError:
                    raise MSRFormatError(
                        f"line {line_number}: bad disk number {parts[2]!r}"
                    ) from None
                if disk not in wanted:
                    continue
            for record in parse_msr_line(line, line_number):
                if record.arrival_us is not None:
                    # Rebase absolute filetimes to the trace's origin.
                    if origin_us is None:
                        origin_us = record.arrival_us
                    record.arrival_us = max(0.0, record.arrival_us - origin_us)
                yield record
                emitted += 1
                if limit is not None and emitted >= limit:
                    return


def read_msr_trace(
    path: PathLike,
    disks: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
) -> List[TraceRecord]:
    """Load an MSR CSV trace into memory as block requests."""
    return list(iter_msr_trace(path, disks=disks, limit=limit))
