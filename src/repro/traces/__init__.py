"""Workloads: trace records, synthetic generators, file I/O, replay.

The paper evaluates on four production traces (Table 3): *homes* and
*mail* (FIU, write-heavy) and *usr* and *proj* (MSR Cambridge,
read-heavy).  Those traces are not redistributable, so this package
generates synthetic equivalents that preserve the properties the
paper's design arguments rest on: sparse region density (Fig. 1),
write fraction, overwrite skew, spatial clustering of hot blocks, and
sequential runs.  See DESIGN.md for the substitution rationale.
"""

from repro.traces.record import TraceRecord, OpKind
from repro.traces.zipf import ZipfSampler
from repro.traces.synthetic import (
    WorkloadProfile,
    SyntheticTrace,
    generate_trace,
    HOMES,
    MAIL,
    USR,
    PROJ,
    PROFILES,
)
from repro.traces.filefmt import read_trace, write_trace
from repro.traces.replay import replay_trace
from repro.traces.analyze import TraceStats, analyze
from repro.traces.msr import iter_msr_trace, read_msr_trace
from repro.traces.fiu import iter_fiu_trace, read_fiu_trace

__all__ = [
    "TraceRecord",
    "OpKind",
    "ZipfSampler",
    "WorkloadProfile",
    "SyntheticTrace",
    "generate_trace",
    "HOMES",
    "MAIL",
    "USR",
    "PROJ",
    "PROFILES",
    "read_trace",
    "write_trace",
    "replay_trace",
    "TraceStats",
    "analyze",
    "read_msr_trace",
    "iter_msr_trace",
    "read_fiu_trace",
    "iter_fiu_trace",
]
