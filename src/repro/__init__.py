"""FlashTier: a lightweight, consistent and durable storage cache.

A complete, from-scratch reproduction of the EuroSys 2012 paper by
Saxena, Swift and Zhang.  The package provides:

* :mod:`repro.flash` — a NAND flash chip model (planes, erase blocks,
  pages, OOB areas, Table 2 timing);
* :mod:`repro.ftl` — a FAST-style hybrid FTL and the conventional
  ``SSD`` baseline device;
* :mod:`repro.ssc` — the paper's contribution: the ``SolidStateCache``
  device with a sparse unified address space, the six-operation
  consistent cache interface, silent eviction (SE-Util / SE-Merge),
  and log/checkpoint crash recovery;
* :mod:`repro.manager` — the FlashTier write-through and write-back
  cache managers plus the native FlashCache-style baseline;
* :mod:`repro.disk`, :mod:`repro.traces`, :mod:`repro.sim`,
  :mod:`repro.stats` — the disk tier, synthetic Table 3 workloads,
  simulation kernel, and measurement plumbing;
* :mod:`repro.engine` — the event-driven replay engine (closed-loop
  queue-depth and open-loop arrival-timed replay);
* :mod:`repro.core` — one-call assembly of complete systems.

Quickstart::

    from repro import build_system, SystemConfig, SystemKind, CacheMode
    from repro.traces import HOMES, generate_trace

    system = build_system(SystemConfig(kind=SystemKind.SSC_R,
                                       mode=CacheMode.WRITE_BACK,
                                       cache_blocks=4096,
                                       disk_blocks=500_000))
    stats = system.replay(generate_trace(HOMES.scaled(0.1)).records,
                          warmup_fraction=0.15)
    print(f"{stats.iops():.0f} IOPS, {stats.miss_rate():.1f}% miss rate")
"""

from repro.core import (
    CacheMode,
    FlashTierSystem,
    SystemConfig,
    SystemKind,
    build_system,
)
from repro.engine import ReplayEngine
from repro.errors import (
    CacheFullError,
    ConfigError,
    NotPresentError,
    RecoveryError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "build_system",
    "ReplayEngine",
    "FlashTierSystem",
    "SystemConfig",
    "SystemKind",
    "CacheMode",
    "ReproError",
    "ConfigError",
    "NotPresentError",
    "CacheFullError",
    "RecoveryError",
    "__version__",
]
