"""The SSC oracle: a pure model of what a crash may legally leave behind.

The oracle tracks, per logical block, the *committed* state implied by
the sequence of completed operations, plus the single operation that was
in flight when a crash struck.  From those it derives the set of states
the device may legally present after recovery:

===============  =====================================================
committed state  legal post-crash states
===============  =====================================================
never written    absent
write-dirty v    present, value v, dirty   (must survive — §3.5 G1)
write-clean v    present, value v, clean; or absent (silent eviction)
dirty v, then    present, value v, dirty or clean; or absent
``clean``        (clean is asynchronous — the flag may revert, §4.2.1)
evicted          absent (evict is synchronous — never resurrects)
===============  =====================================================

An operation in flight at the crash may or may not have taken effect, so
its target block's legal set is the *union* of the before and after
sets.  Internal device activity (garbage collection, checkpointing,
group commit) never changes the logical contents, so no other block's
set is affected.

The oracle is deliberately independent of the device implementation: it
never looks at flash pages, logs or checkpoints, only at the operation
stream.  Anything the recovered device presents outside these sets is a
bug in the device's durability discipline, not in the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import NotPresentError
from repro.flash.block import TORN_PAGE

#: Sentinel member of a legal-state set meaning "block is absent".
#: Present states are ``(value, dirty)`` tuples.
ABSENT = None


@dataclass(frozen=True)
class Violation:
    """One observed breach of the SSC durability contract."""

    rule: str          # short machine-readable rule name
    lbn: Optional[int]
    detail: str
    trial: str = ""    # which exploration trial observed it

    def __str__(self) -> str:
        where = f" [{self.trial}]" if self.trial else ""
        return f"{self.rule}(lbn={self.lbn}): {self.detail}{where}"


# Committed per-block kinds.
_DIRTY = "dirty"      # write-dirty completed; must survive as-is
_CLEAN = "clean"      # write-clean completed; droppable, never corrupt
_CLEANED = "cleaned"  # was dirty, clean() completed; flag may revert


class SSCOracle:
    """Tracks committed logical state and derives legal crash outcomes."""

    def __init__(self):
        #: lbn -> (kind, value) for blocks the model believes present.
        self.committed: Dict[int, Tuple[str, Any]] = {}
        #: lbn -> every value ever written to it (relaxed-check universe).
        self.history: Dict[int, Set[Any]] = {}
        #: The operation begun but not yet committed (None if quiescent).
        self.in_flight = None

    # ------------------------------------------------------------------
    # Operation lifecycle
    # ------------------------------------------------------------------

    def begin(self, op) -> None:
        """Record that ``op`` is about to be issued to the device."""
        self.in_flight = op
        if op.lbn is not None and op.kind in ("write_dirty", "write_clean"):
            self.history.setdefault(op.lbn, set()).add(op.data)
        elif op.lbn is not None and op.kind in ("read", "evict", "clean"):
            self.history.setdefault(op.lbn, set())

    def commit(self) -> None:
        """The in-flight operation completed; fold it into committed state."""
        op = self.in_flight
        self.in_flight = None
        if op is None:
            return
        if op.kind == "write_dirty":
            self.committed[op.lbn] = (_DIRTY, op.data)
        elif op.kind == "write_clean":
            self.committed[op.lbn] = (_CLEAN, op.data)
        elif op.kind == "evict":
            self.committed.pop(op.lbn, None)
        elif op.kind == "clean":
            current = self.committed.get(op.lbn)
            if current is not None and current[0] == _DIRTY:
                self.committed[op.lbn] = (_CLEANED, current[1])
        # read / exists / gc / checkpoint change no logical state

    def observe_absent(self, lbn: int) -> None:
        """A live read found ``lbn`` absent (silently evicted).

        Eviction is durable — the mapping-removal records are flushed
        before the erase — so the block can never reappear; committed
        state collapses to absent.
        """
        current = self.committed.get(lbn)
        if current is not None and current[0] in (_CLEAN, _CLEANED):
            del self.committed[lbn]

    # ------------------------------------------------------------------
    # Legal-state computation
    # ------------------------------------------------------------------

    def _legal_committed(self, lbn: int) -> Set:
        entry = self.committed.get(lbn)
        if entry is None:
            return {ABSENT}
        kind, value = entry
        if kind == _DIRTY:
            return {(value, True)}
        if kind == _CLEAN:
            return {(value, False), ABSENT}
        return {(value, True), (value, False), ABSENT}  # _CLEANED

    def _legal_completed(self, op) -> Set:
        """Legal states of ``op.lbn`` had the in-flight op fully committed."""
        if op.kind == "write_dirty":
            return {(op.data, True)}
        if op.kind == "write_clean":
            return {(op.data, False), ABSENT}
        if op.kind == "evict":
            return {ABSENT}
        if op.kind == "clean":
            current = self.committed.get(op.lbn)
            if current is None:
                return {ABSENT}
            value = current[1]
            return {(value, True), (value, False), ABSENT}
        return self._legal_committed(op.lbn)

    def legal_states(self, lbn: int) -> Set:
        """Every state ``lbn`` may legally hold after crash + recovery."""
        legal = self._legal_committed(lbn)
        op = self.in_flight
        if op is not None and op.lbn == lbn:
            legal = legal | self._legal_completed(op)
        return legal

    # ------------------------------------------------------------------
    # Post-recovery verification
    # ------------------------------------------------------------------

    def check(self, ssc, strict: bool = True, trial: str = "") -> List[Violation]:
        """Diff the recovered device against the legal-state sets.

        ``strict`` applies the full contract.  With ``strict=False``
        (used after bit-flip fault injection, where the contract's
        no-loss guarantees legitimately do not hold — see
        docs/crash_testing.md) only the *integrity* rules are enforced:
        every readable value must be one this block actually held, torn
        pages must never surface, and no unknown block may appear.
        """
        violations: List[Violation] = []
        known = set(self.history)

        for lbn in sorted(known):
            legal = self.legal_states(lbn)
            try:
                value, _completion = ssc.read(lbn)
                present = True
            except NotPresentError:
                present = False
            if present:
                if value == TORN_PAGE:
                    violations.append(Violation(
                        "torn-page-surfaced", lbn,
                        "read returned the torn-program sentinel", trial,
                    ))
                    continue
                dirty = ssc.is_dirty(lbn)
                if strict:
                    if (value, dirty) not in legal:
                        violations.append(Violation(
                            "illegal-state", lbn,
                            f"recovered ({value!r}, dirty={dirty}) not in "
                            f"legal set {_fmt(legal)}", trial,
                        ))
                elif value not in self.history[lbn]:
                    violations.append(Violation(
                        "garbage-value", lbn,
                        f"recovered {value!r} was never written here", trial,
                    ))
            elif strict and ABSENT not in legal:
                violations.append(Violation(
                    "lost-dirty", lbn,
                    f"block absent but legal set {_fmt(legal)} requires "
                    "it present", trial,
                ))

        violations.extend(self._check_exists(ssc, strict, known, trial))
        violations.extend(self._check_unknown(ssc, known, trial))
        return violations

    def _check_exists(self, ssc, strict: bool, known: Set[int],
                      trial: str) -> List[Violation]:
        """``exists`` must agree with the recovered mapping's dirty view."""
        violations: List[Violation] = []
        if not known:
            return violations
        reported, _cost = ssc.exists(0, max(known) + 1)
        reported_set = set(reported)
        for lbn in sorted(reported_set):
            if lbn not in known:
                violations.append(Violation(
                    "exists-unknown", lbn,
                    "exists reported a block never written", trial,
                ))
            elif strict and not any(
                state is not ABSENT and state[1]
                for state in self.legal_states(lbn)
            ):
                violations.append(Violation(
                    "exists-false-dirty", lbn,
                    "exists reported dirty but no legal state is dirty",
                    trial,
                ))
        if strict:
            for lbn in sorted(known):
                legal = self.legal_states(lbn)
                must_be_dirty = all(
                    state is not ABSENT and state[1] for state in legal
                )
                if must_be_dirty and lbn not in reported_set:
                    violations.append(Violation(
                        "exists-missing-dirty", lbn,
                        "every legal state is present-dirty but exists "
                        "omitted the block", trial,
                    ))
        return violations

    def _check_unknown(self, ssc, known: Set[int],
                       trial: str) -> List[Violation]:
        """The cache must not materialize blocks that were never written."""
        violations: List[Violation] = []
        for lbn in ssc.engine.iter_cached_lbns():
            if lbn not in known:
                violations.append(Violation(
                    "unknown-lbn", lbn,
                    "recovered mapping contains a block never written",
                    trial,
                ))
        return violations


def _fmt(legal: Set) -> str:
    parts = []
    for state in sorted(legal, key=repr):
        if state is ABSENT:
            parts.append("absent")
        else:
            parts.append(f"({state[0]!r}, {'dirty' if state[1] else 'clean'})")
    return "{" + ", ".join(parts) + "}"
