"""Workload generation for the crash-state explorer.

A workload is a flat list of :class:`Op` covering all six SSC
operations plus two device-internal triggers (background collection and
an explicit checkpoint) so crashes land inside garbage collection and
checkpoint writes too, not only inside the request path.

Generation is deterministic in ``seed``: the explorer replays the exact
same list once per durability boundary, so every trial's prefix is
identical to the baseline run — that is what makes "crash at boundary
k" well-defined.  Every written value is unique (``d<n>``), so a stale
read is distinguishable from a lost write.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional


@dataclass(frozen=True)
class Op:
    """One step of a generated workload.

    ``kind`` is one of ``write_dirty``, ``write_clean``, ``read``,
    ``evict``, ``clean``, ``exists``, ``gc``, ``checkpoint``.  ``lbn``
    is the target block (for ``exists`` the exclusive upper bound of the
    scanned range; None for gc/checkpoint).  ``data`` is the payload for
    writes.
    """

    kind: str
    lbn: Optional[int] = None
    data: Optional[Any] = None


#: (kind, weight) — writes dominate, as in the paper's write-heavy
#: traces; clean appears often enough that silent eviction stays
#: reachable and the cache never wedges full of dirty data.
_MIX = [
    ("write_dirty", 28),
    ("write_clean", 26),
    ("read", 16),
    ("clean", 14),
    ("evict", 8),
    ("exists", 4),
    ("gc", 3),
    ("checkpoint", 1),
]


def generate_workload(ops: int, seed: int, lbn_range: int = 64) -> List[Op]:
    """Deterministically generate ``ops`` operations over ``lbn_range``.

    A small address range relative to the device keeps replace-writes,
    cleans and evictions landing on populated blocks, which is where the
    interesting durability transitions happen.
    """
    if ops < 1:
        raise ValueError("ops must be >= 1")
    rng = random.Random(seed)
    kinds = [kind for kind, weight in _MIX for _ in range(weight)]
    workload: List[Op] = []
    serial = 0
    for _ in range(ops):
        kind = rng.choice(kinds)
        if kind in ("gc", "checkpoint"):
            workload.append(Op(kind))
        elif kind == "exists":
            workload.append(Op(kind, lbn=lbn_range))
        elif kind in ("write_dirty", "write_clean"):
            serial += 1
            workload.append(Op(kind, lbn=rng.randrange(lbn_range),
                               data=f"d{serial}"))
        else:
            workload.append(Op(kind, lbn=rng.randrange(lbn_range)))
    return workload


def op_strategy(lbn_range: int = 16):
    """Hypothesis strategy producing one :class:`Op` (for property tests).

    Imported lazily so the library itself never depends on hypothesis.
    """
    import hypothesis.strategies as st

    lbns = st.integers(min_value=0, max_value=lbn_range - 1)
    serials = st.integers(min_value=0, max_value=999_999)
    return st.one_of(
        st.builds(lambda l, s: Op("write_dirty", l, f"d{s}"), lbns, serials),
        st.builds(lambda l, s: Op("write_clean", l, f"d{s}"), lbns, serials),
        st.builds(lambda l: Op("read", l), lbns),
        st.builds(lambda l: Op("clean", l), lbns),
        st.builds(lambda l: Op("evict", l), lbns),
        st.just(Op("exists", lbn_range)),
        st.just(Op("gc")),
        st.just(Op("checkpoint")),
    )


def workload_strategy(max_ops: int = 30, lbn_range: int = 16):
    """Hypothesis strategy producing a whole workload list."""
    import hypothesis.strategies as st

    return st.lists(op_strategy(lbn_range), min_size=1, max_size=max_ops)
