"""The crash-state explorer.

For a deterministic workload, the explorer:

1. runs it once against a fresh SSC with an *unarmed* injector wired
   into every durability boundary (page programs, log flushes,
   checkpoint writes) — the tick count of that baseline run enumerates
   every boundary the workload crosses;
2. re-runs the workload once per boundary index, arms the injector to
   crash exactly there, recovers the device, and checks the recovered
   state against the :class:`~repro.check.oracle.SSCOracle`'s legal
   sets — once with a clean power cut and once with a *torn* write at
   the firing boundary;
3. optionally runs bit-flip trials: the workload completes, a bit is
   flipped in durable state (a flushed log record, a flash page, a
   checkpoint), and recovery must *discard* the damaged state rather
   than surface it (checked under the relaxed integrity rules — see
   docs/crash_testing.md for why strictness is impossible under log
   bit rot).

During every run the explorer also performs live checks: reads must
return the exact committed value, dirty blocks must never vanish, and
``exists`` must match the model's dirty set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.check import faults
from repro.check.oracle import SSCOracle, Violation
from repro.check.workload import Op, generate_workload
from repro.core.sharding import ShardedSSC
from repro.errors import CrashError, NotPresentError
from repro.flash.geometry import FlashGeometry
from repro.sim.crash import CrashInjector
from repro.ssc.device import SolidStateCache, SSCConfig
from repro.ssc.engine import EvictionPolicy

#: Idle budget handed to each generated ``gc`` op (microseconds).
_GC_BUDGET_US = 2_000.0


def build_device(geometry: Optional[FlashGeometry] = None, shards: int = 1):
    """A small SSC tuned so short workloads cross many boundary kinds.

    Group commit every 8 buffered ops and a checkpoint every 50 writes
    make asynchronous flushes and checkpoint writes occur within a
    ~200-op workload; the 4x16x8 geometry is large enough for garbage
    collection and silent eviction to trigger.

    ``shards > 1`` builds a :class:`~repro.core.sharding.ShardedSSC` of
    that many such devices (every member keeps the full geometry — the
    exploration wants each shard exercising its whole boundary set, not
    a capacity-scaling experiment).
    """
    geometry = geometry or FlashGeometry(
        planes=4, blocks_per_plane=16, pages_per_block=8
    )
    config = SSCConfig(
        policy=EvictionPolicy.UTIL,
        group_commit_ops=8,
        checkpoint_interval_writes=50,
    )
    if shards == 1:
        return SolidStateCache(geometry, config=config)
    return ShardedSSC(
        [
            SolidStateCache(geometry, config=config, name=f"shard{shard_id}")
            for shard_id in range(shards)
        ]
    )


def apply_op(
    ssc: SolidStateCache,
    oracle: SSCOracle,
    op: Op,
    violations: List[Violation],
    trial: str = "",
) -> None:
    """Issue ``op`` to the device, mirroring it into the oracle.

    Live-checks reads and ``exists`` against the committed model.  A
    :class:`CrashError` propagates with the oracle's in-flight marker
    still set, which is exactly what the post-crash check needs.
    """
    oracle.begin(op)
    if op.kind == "write_dirty":
        ssc.write_dirty(op.lbn, op.data)
    elif op.kind == "write_clean":
        ssc.write_clean(op.lbn, op.data)
    elif op.kind == "evict":
        ssc.evict(op.lbn)
    elif op.kind == "clean":
        ssc.clean(op.lbn)
    elif op.kind == "gc":
        ssc.background_collect(_GC_BUDGET_US)
    elif op.kind == "checkpoint":
        ssc.checkpoint_now()
    elif op.kind == "read":
        _live_read(ssc, oracle, op, violations, trial)
    elif op.kind == "exists":
        _live_exists(ssc, oracle, op, violations, trial)
    else:  # pragma: no cover - generator is closed
        raise ValueError(f"unknown op kind {op.kind}")
    oracle.commit()


def _live_read(ssc, oracle, op, violations, trial) -> None:
    committed = oracle.committed.get(op.lbn)
    try:
        value, _completion = ssc.read(op.lbn)
    except NotPresentError:
        if committed is not None and committed[0] == "dirty":
            violations.append(Violation(
                "live-lost-dirty", op.lbn,
                f"dirty block vanished during normal operation "
                f"(expected {committed[1]!r})", trial,
            ))
        else:
            oracle.observe_absent(op.lbn)
        return
    if committed is None:
        violations.append(Violation(
            "live-resurrection", op.lbn,
            f"read returned {value!r} for an absent block", trial,
        ))
    elif value != committed[1]:
        violations.append(Violation(
            "live-wrong-value", op.lbn,
            f"read returned {value!r}, committed value is "
            f"{committed[1]!r}", trial,
        ))


def _live_exists(ssc, oracle, op, violations, trial) -> None:
    reported, _cost = ssc.exists(0, op.lbn)
    expected = {
        lbn
        for lbn, (kind, _value) in oracle.committed.items()
        if kind == "dirty" and 0 <= lbn < op.lbn
    }
    observed = set(reported)
    if observed != expected:
        violations.append(Violation(
            "live-exists-mismatch", None,
            f"exists reported {sorted(observed)}, model expects "
            f"{sorted(expected)}", trial,
        ))


def run_workload(
    ssc: SolidStateCache,
    oracle: SSCOracle,
    workload: List[Op],
    violations: List[Violation],
    trial: str = "",
) -> bool:
    """Run the whole workload; returns True if a crash fired mid-way."""
    try:
        for op in workload:
            apply_op(ssc, oracle, op, violations, trial)
    except CrashError:
        return True
    return False


@dataclass
class ExplorationReport:
    """What one full exploration covered and found."""

    boundaries: int                 # durability boundaries in the workload
    trials: int                     # armed runs performed
    explored: int                   # trials whose crash actually fired
    point_counts: Dict[str, int] = field(default_factory=dict)
    fired_counts: Dict[str, int] = field(default_factory=dict)
    bitflip_trials: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def run_trial(
    workload: List[Op],
    boundary: int,
    torn: bool = False,
    geometry: Optional[FlashGeometry] = None,
    fault: Optional[Callable[[SolidStateCache, random.Random], bool]] = None,
    fault_rng: Optional[random.Random] = None,
    strict: bool = True,
    trial: str = "",
    shards: int = 1,
) -> tuple:
    """One armed run: crash at ``boundary``, recover, check.

    Returns ``(violations, fired_point_name)``; ``fired_point_name`` is
    None when the workload finished before the armed boundary (only
    possible when ``boundary`` exceeds the baseline tick count).

    With ``shards > 1`` the workload runs against a sharded array (the
    injector is wired into *every* member, so the armed boundary fires
    wherever the routed operation stream crosses it), and a bit-flip
    ``fault`` damages one member device chosen by ``fault_rng``.
    """
    ssc = build_device(geometry, shards=shards)
    injector = CrashInjector()
    ssc.attach_injector(injector)
    injector.arm(after_events=boundary - 1, torn=torn)
    oracle = SSCOracle()
    violations: List[Violation] = []
    crashed = run_workload(ssc, oracle, workload, violations, trial)
    if not crashed:
        injector.disarm()
        ssc.crash()
    if fault is not None:
        rng = fault_rng or random.Random(boundary)
        members = getattr(ssc, "shards", None)
        target = members[rng.randrange(len(members))] if members else ssc
        fault(target, rng)
    ssc.recover()
    violations.extend(oracle.check(ssc, strict=strict, trial=trial))
    fired = injector.fired_point.name if injector.fired_point else None
    return violations, fired


def explore(
    ops: int = 200,
    seed: int = 0,
    stride: int = 1,
    torn: bool = True,
    bitflips: int = 0,
    lbn_range: int = 64,
    geometry: Optional[FlashGeometry] = None,
    shards: int = 1,
) -> ExplorationReport:
    """Full exploration of one generated workload.

    ``stride`` samples every ``stride``-th boundary (1 = exhaustive).
    ``torn`` adds a torn-write variant of every sampled boundary.
    ``bitflips`` adds that many bit-flip trials (checked under the
    relaxed integrity rules).  ``shards`` runs every trial against a
    sharded cache array instead of a single device.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    workload = generate_workload(ops, seed, lbn_range=lbn_range)

    # Baseline: enumerate the boundaries an uninterrupted run crosses.
    baseline_ssc = build_device(geometry, shards=shards)
    baseline_injector = CrashInjector()
    baseline_ssc.attach_injector(baseline_injector)
    baseline_oracle = SSCOracle()
    report = ExplorationReport(boundaries=0, trials=0, explored=0)
    crashed = run_workload(
        baseline_ssc, baseline_oracle, workload, report.violations, "baseline"
    )
    if crashed:  # pragma: no cover - unarmed injector never fires
        raise RuntimeError("baseline run crashed with an unarmed injector")
    report.boundaries = baseline_injector.ticks
    report.point_counts = {
        point.name: count
        for point, count in baseline_injector.point_counts.items()
    }

    for boundary in range(1, report.boundaries + 1, stride):
        for is_torn in ((False, True) if torn else (False,)):
            label = f"boundary={boundary}{'/torn' if is_torn else ''}"
            violations, fired = run_trial(
                workload, boundary, torn=is_torn, geometry=geometry,
                trial=label, shards=shards,
            )
            report.trials += 1
            if fired is not None:
                report.explored += 1
                report.fired_counts[fired] = report.fired_counts.get(fired, 0) + 1
            report.violations.extend(violations)

    fault_cycle = [faults.flip_log_record, faults.flip_page_data,
                   faults.flip_checkpoint]
    for index in range(bitflips):
        rng = random.Random((seed << 16) ^ index)
        boundary = 1 + rng.randrange(max(1, report.boundaries))
        label = f"bitflip={index}"
        violations, _fired = run_trial(
            workload, boundary, geometry=geometry,
            fault=fault_cycle[index % len(fault_cycle)], fault_rng=rng,
            strict=False, trial=label, shards=shards,
        )
        report.trials += 1
        report.bitflip_trials += 1
        report.violations.extend(violations)

    return report
