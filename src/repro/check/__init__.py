"""Crash-state exploration: model-based crash-consistency checking.

The SSC makes three durability promises (paper §3.5): write-dirty and
evict are durable on completion, write-clean may be silently dropped but
never corrupted, and clean may revert to dirty after a crash.  This
package checks those promises *exhaustively* for a workload:

* :mod:`repro.check.oracle` — a pure in-memory model of the six-op SSC
  interface that, for every logical block, knows the set of post-crash
  states the contract permits.
* :mod:`repro.check.workload` — deterministic pseudo-random workload
  generation (plus a hypothesis strategy for property tests).
* :mod:`repro.check.explorer` — runs the workload once to enumerate
  every durability boundary it crosses, then re-runs it once per
  boundary, crashes there, recovers, and diffs the recovered device
  against the oracle's legal states.
* :mod:`repro.check.faults` — torn-write and bit-flip fault injection
  into durable state, exercising the checksum-based damage detection in
  recovery.

Drive it from the command line with ``repro crashcheck``.
"""

from repro.check.oracle import ABSENT, SSCOracle, Violation
from repro.check.workload import Op, generate_workload
from repro.check.explorer import ExplorationReport, explore

__all__ = [
    "ABSENT",
    "SSCOracle",
    "Violation",
    "Op",
    "generate_workload",
    "ExplorationReport",
    "explore",
]
