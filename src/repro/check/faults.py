"""Bit-flip fault injection into *durable* state.

Torn writes (handled inside the device model, ``CrashInjector.torn``)
damage the write that was in flight at the power cut.  Bit flips model
the other hazard class: state that was durably written and later rots —
a flipped cell in a flushed log record, a flash page payload, or a
checkpoint region.

Every injector here corrupts the data while leaving the *stored
checksum* untouched, so the damage is detectable: recovery must notice
the mismatch and discard the damaged record/page/checkpoint instead of
surfacing it.  The crash-state explorer checks such trials under the
relaxed integrity rules — discarding a damaged log tail may legally
lose committed work, but must never produce a value the host did not
write (docs/crash_testing.md).

Each injector returns True if it found something to corrupt.
"""

from __future__ import annotations

import dataclasses
import random

from repro.flash.page import PageState
from repro.ssc.device import SolidStateCache


def flip_log_record(ssc: SolidStateCache, rng: random.Random) -> bool:
    """Flip a bit in one durably-flushed log record."""
    flushed = ssc.oplog.flushed
    if not flushed:
        return False
    index = rng.randrange(len(flushed))
    record = flushed[index]
    # Damage the physical address; the stored CRC no longer matches.
    flushed[index] = dataclasses.replace(record, ppn=record.ppn ^ 1)
    return True


def flip_page_data(ssc: SolidStateCache, rng: random.Random) -> bool:
    """Corrupt the payload of one programmed flash page.

    The OOB checksum keeps its original value, so the page reads back
    as damaged (checksum mismatch) — recovery must not map it.
    """
    candidates = [
        page
        for plane in ssc.chip.planes
        for block in plane.blocks.values()
        for page in block.pages
        if page.state is PageState.VALID and page.oob is not None
    ]
    if not candidates:
        return False
    page = rng.choice(candidates)
    page.data = ("<bitrot>", page.data)
    return True


def flip_checkpoint(ssc: SolidStateCache, rng: random.Random) -> bool:
    """Corrupt the most recent checkpoint's serialized mapping.

    Its checksum no longer verifies, so recovery must fall back to the
    other (older) slot, or to pure log replay if none is intact.
    """
    checkpoint = ssc.checkpoints.latest()
    if checkpoint is None:
        return False
    if checkpoint.page_entries:
        lbn, ppn, dirty = checkpoint.page_entries[0]
        checkpoint.page_entries[0] = (lbn ^ 1, ppn, dirty)
    elif checkpoint.block_entries:
        group, pbn, dirty_bm, valid_bm = checkpoint.block_entries[0]
        checkpoint.block_entries[0] = (group ^ 1, pbn, dirty_bm, valid_bm)
    else:
        checkpoint.checksum ^= 0x1
    # In-place entry mutation bypasses the memoized entry CRC; drop it
    # so is_intact() re-reads the damaged contents.
    checkpoint.invalidate_checksum_memo()
    return True
