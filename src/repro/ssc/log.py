"""The SSC operation log.

Paper §4.2.2: "An SSC uses an operation log to persist changes to the
sparse hash map.  A log record consists of a monotonically increasing
log sequence number, the logical and physical block addresses, and an
identifier indicating whether this is a page-level or block-level
mapping.  For operations that may be buffered, such as clean and
write-clean, an SSC uses asynchronous group commit to flush the log
records from device memory to flash periodically.  For operations with
immediate consistency guarantees, such as write-dirty and evict, the
log is flushed as part of the operation using a synchronous commit."

The log region is modeled as a dedicated flash area: flushes are charged
page-program latency for however many pages the pending records occupy,
and a block-erase is charged per 64 log pages retired at checkpoint
truncation.  Flushed records are durable (they survive a crash); the
buffer is volatile.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass
from enum import Enum, auto
from typing import List, Optional, Tuple

from repro.errors import CrashError
from repro.flash.timing import TimingModel
from repro.sim.crash import CrashInjector, CrashPoint


class RecordKind(Enum):
    """What a log record describes."""

    INSERT_PAGE = auto()      # page-level mapping insert: lbn -> ppn
    REMOVE_PAGE = auto()      # page-level mapping remove
    INSERT_BLOCK = auto()     # block-level mapping insert: group -> pbn
    REMOVE_BLOCK = auto()     # block-level mapping remove
    INVALIDATE_PAGE = auto()  # a block-mapped page's copy became stale
    CLEAN = auto()            # block marked clean (future-evictable)


def record_checksum(seq: int, kind: "RecordKind", lbn: int, ppn: int,
                    extra: int) -> int:
    """Per-record CRC over every field; detects torn log pages and bit rot.

    Single-format encoding of ``crc32_of(seq, kind.name, lbn, ppn,
    extra)`` — bit-identical, and this runs once per logged mapping
    change so the generic chunk loop was measurable.
    """
    return zlib.crc32(
        b"i%d|s%s|i%d|i%d|i%d|"
        % (seq, kind.name.encode("ascii"), lbn, ppn, extra)
    ) & 0xFFFFFFFF


@dataclass(frozen=True)
class LogRecord:
    """One durable mapping-change record.

    ``extra`` carries the dirty flag for page inserts; for block inserts
    it packs the dirty-page bitmap in the low 64 bits and the valid-page
    bitmap in the next 64 (the paper persists per-page state through
    out-of-band writes "near its associated data"; we journal it, which
    has the same durability and a simpler replay).

    ``checksum`` covers every other field.  Recovery verifies it and
    discards the log tail from the first damaged record onward, so a
    torn log flush or flipped bit can lose buffered work but never
    materialize a garbage mapping.  ``None`` (hand-built records in
    tests) is treated as intact.
    """

    seq: int
    kind: RecordKind
    lbn: int
    ppn: int = 0
    extra: int = 0
    checksum: Optional[int] = None

    def is_intact(self) -> bool:
        if self.checksum is None:
            return True
        return self.checksum == record_checksum(
            self.seq, self.kind, self.lbn, self.ppn, self.extra
        )


#: Modeled on-flash size of one record: 8 B sequence number, 8 B logical
#: address, 8 B physical address, 2 B kind/flags (paper §4.2.2 fields),
#: plus a 4 B record CRC.
RECORD_BYTES = 30


class OperationLog:
    """Buffered operation log with synchronous and group commit."""

    #: Optional trace bus (repro.obs); None keeps the log zero-cost.
    tracer = None

    def __init__(self, timing: TimingModel, page_size: int = 4096,
                 pages_per_block: int = 64, name: str = ""):
        self.timing = timing
        self.page_size = page_size
        self.pages_per_block = pages_per_block
        # Diagnostic label ("shard3/log" in a sharded array); purely
        # informational — it never affects behaviour.
        self.name = name
        # Optional fault hook: ticks AFTER_LOG_FLUSH at every flush.
        self.injector: Optional[CrashInjector] = None
        self._next_seq = 1
        self.buffer: List[LogRecord] = []
        self.flushed: List[LogRecord] = []
        # Total durable log footprint since the covering checkpoint.
        self.flushed_bytes = 0
        # Counters for the consistency-cost evaluation (Fig. 4).
        self.sync_flushes = 0
        self.async_flushes = 0
        self.records_written = 0
        self.pages_written = 0
        self.erases = 0

    @property
    def enabled(self) -> bool:
        return True

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._next_seq - 1

    @property
    def last_flushed_seq(self) -> int:
        """Sequence number of the most recent *durable* record."""
        return self.flushed[-1].seq if self.flushed else 0

    def append(self, kind: RecordKind, lbn: int, ppn: int = 0, extra: int = 0) -> LogRecord:
        """Buffer a record; it becomes durable at the next flush."""
        record = LogRecord(
            self._next_seq, kind, lbn, ppn, extra,
            checksum=record_checksum(self._next_seq, kind, lbn, ppn, extra),
        )
        self._next_seq += 1
        self.buffer.append(record)
        if self.tracer is not None:
            self.tracer.emit(
                "log.append", lane=self.name or "log",
                kind=kind.name, seq=record.seq, lbn=lbn,
            )
        return record

    def pending(self) -> int:
        """Number of buffered (volatile) records."""
        return len(self.buffer)

    def flush(self, sync: bool) -> float:
        """Make buffered records durable; returns the flash cost in us.

        ``sync`` only affects accounting (Fig. 4 distinguishes
        synchronous commits, which sit on the request path, from group
        commits): the durability effect is identical.
        """
        if not self.buffer:
            return 0.0
        count = len(self.buffer)
        bytes_needed = count * RECORD_BYTES
        pages = -(-bytes_needed // self.page_size)  # ceil
        self.flushed.extend(self.buffer)
        self.buffer.clear()
        self.flushed_bytes += bytes_needed
        self.records_written += count
        self.pages_written += pages
        if sync:
            self.sync_flushes += 1
        else:
            self.async_flushes += 1
        if self.injector is not None:
            try:
                self.injector.tick(CrashPoint.AFTER_LOG_FLUSH)
            except CrashError:
                if self.injector.torn:
                    self._tear_flush_tail(count)
                raise
        cost = pages * self.timing.write_cost()
        if self.tracer is not None:
            self.tracer.emit(
                "log.flush", lane=self.name or "log", dur_us=cost,
                sync=sync, records=count, pages=pages,
            )
        return cost

    def _tear_flush_tail(self, count: int) -> None:
        """Power failed mid-flush: only a prefix of the ``count`` records
        just written reached flash whole.

        NAND tears at *page* granularity: log pages programmed before the
        cut are complete, the page being programmed when power failed
        reads back damaged, and later pages were never started.  So the
        survivors are the records of the whole pages, plus the first
        record of the torn page persisted with damaged contents (its
        stored CRC no longer matches); everything after it is lost.  A
        flush smaller than one log page is therefore all-or-nothing —
        which is what keeps multi-record operations (REMOVE + INSERT of
        a replace, a merge's record group) atomic under torn writes.
        """
        records_per_page = max(1, self.page_size // RECORD_BYTES)
        start = len(self.flushed) - count
        keep = ((count // 2) // records_per_page) * records_per_page
        survivors = self.flushed[: start + keep]
        if keep < count:
            torn = self.flushed[start + keep]
            # Field damaged by the cut; the stored checksum goes stale.
            survivors.append(dataclasses.replace(torn, lbn=torn.lbn ^ (1 << 61)))
        self.flushed = survivors
        self.flushed_bytes = len(self.flushed) * RECORD_BYTES

    def truncate_through(self, seq: int) -> float:
        """Drop durable records with sequence <= ``seq`` (checkpointed).

        Returns the cost of erasing the retired log blocks.
        """
        keep = [record for record in self.flushed if record.seq > seq]
        dropped_bytes = (len(self.flushed) - len(keep)) * RECORD_BYTES
        self.flushed = keep
        self.flushed_bytes = len(keep) * RECORD_BYTES
        dropped_pages = dropped_bytes // self.page_size
        blocks = dropped_pages // self.pages_per_block
        self.erases += blocks
        return blocks * self.timing.erase_cost()

    def records_after(self, seq: int) -> List[LogRecord]:
        """Durable records with sequence > ``seq`` (for roll-forward)."""
        return [record for record in self.flushed if record.seq > seq]

    def intact_records_after(self, seq: int) -> Tuple[List[LogRecord], int]:
        """Checksum-verified roll-forward records, plus the discard count.

        The log is a sequential structure: once one record fails its CRC
        (torn flush, bit rot), nothing after it can be trusted — replay
        order matters — so recovery discards the tail from the first
        damaged record onward rather than materializing garbage mappings.
        """
        candidates = self.records_after(seq)
        for index, record in enumerate(candidates):
            if not record.is_intact():
                return candidates[:index], len(candidates) - index
        return candidates, 0

    def drop_buffer(self) -> int:
        """Simulate a crash: volatile records are lost; returns the count."""
        lost = len(self.buffer)
        self.buffer.clear()
        return lost

    def replay_read_cost(self, from_seq: int) -> float:
        """Flash read cost of loading records after ``from_seq``."""
        count = len(self.records_after(from_seq))
        pages = -(-count * RECORD_BYTES // self.page_size)
        return pages * self.timing.read_cost()


class NvramOperationLog(OperationLog):
    """A log backed by non-volatile RAM.

    Paper §6.4: "On a system with non-volatile memory or that can flush
    RAM contents to flash on a power failure, consistency imposes no
    performance cost because there is no need to write logs or
    checkpoints."  Records become durable the instant they are appended
    and every flush is free; nothing is lost at a crash.
    """

    def append(self, kind: RecordKind, lbn: int, ppn: int = 0, extra: int = 0) -> LogRecord:
        record = LogRecord(
            self._next_seq, kind, lbn, ppn, extra,
            checksum=record_checksum(self._next_seq, kind, lbn, ppn, extra),
        )
        self._next_seq += 1
        self.flushed.append(record)
        self.flushed_bytes += RECORD_BYTES
        self.records_written += 1
        if self.tracer is not None:
            self.tracer.emit(
                "log.append", lane=self.name or "log",
                kind=kind.name, seq=record.seq, lbn=lbn,
            )
        return record

    def flush(self, sync: bool) -> float:
        return 0.0

    def drop_buffer(self) -> int:
        return 0  # nothing volatile to lose

    def replay_read_cost(self, from_seq: int) -> float:
        return 0.0  # NVRAM reads are memory-speed


class NullOperationLog(OperationLog):
    """A disabled log (the paper's no-consistency configuration).

    Appends and flushes are free no-ops; recovery from it is impossible,
    matching a device that keeps its mapping only in RAM.
    """

    @property
    def enabled(self) -> bool:
        return False

    def append(self, kind: RecordKind, lbn: int, ppn: int = 0, extra: int = 0) -> LogRecord:
        record = LogRecord(self._next_seq, kind, lbn, ppn, extra)
        self._next_seq += 1
        return record

    def flush(self, sync: bool) -> float:
        return 0.0

    def truncate_through(self, seq: int) -> float:
        return 0.0
