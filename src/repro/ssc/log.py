"""The SSC operation log.

Paper §4.2.2: "An SSC uses an operation log to persist changes to the
sparse hash map.  A log record consists of a monotonically increasing
log sequence number, the logical and physical block addresses, and an
identifier indicating whether this is a page-level or block-level
mapping.  For operations that may be buffered, such as clean and
write-clean, an SSC uses asynchronous group commit to flush the log
records from device memory to flash periodically.  For operations with
immediate consistency guarantees, such as write-dirty and evict, the
log is flushed as part of the operation using a synchronous commit."

The log region is modeled as a dedicated flash area: flushes are charged
page-program latency for however many pages the pending records occupy,
and a block-erase is charged per 64 log pages retired at checkpoint
truncation.  Flushed records are durable (they survive a crash); the
buffer is volatile.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import List

from repro.flash.timing import TimingModel


class RecordKind(Enum):
    """What a log record describes."""

    INSERT_PAGE = auto()      # page-level mapping insert: lbn -> ppn
    REMOVE_PAGE = auto()      # page-level mapping remove
    INSERT_BLOCK = auto()     # block-level mapping insert: group -> pbn
    REMOVE_BLOCK = auto()     # block-level mapping remove
    INVALIDATE_PAGE = auto()  # a block-mapped page's copy became stale
    CLEAN = auto()            # block marked clean (future-evictable)


@dataclass(frozen=True)
class LogRecord:
    """One durable mapping-change record.

    ``extra`` carries the dirty flag for page inserts; for block inserts
    it packs the dirty-page bitmap in the low 64 bits and the valid-page
    bitmap in the next 64 (the paper persists per-page state through
    out-of-band writes "near its associated data"; we journal it, which
    has the same durability and a simpler replay).
    """

    seq: int
    kind: RecordKind
    lbn: int
    ppn: int = 0
    extra: int = 0


#: Modeled on-flash size of one record: 8 B sequence number, 8 B logical
#: address, 8 B physical address, 2 B kind/flags (paper §4.2.2 fields).
RECORD_BYTES = 26


class OperationLog:
    """Buffered operation log with synchronous and group commit."""

    def __init__(self, timing: TimingModel, page_size: int = 4096,
                 pages_per_block: int = 64):
        self.timing = timing
        self.page_size = page_size
        self.pages_per_block = pages_per_block
        self._next_seq = 1
        self.buffer: List[LogRecord] = []
        self.flushed: List[LogRecord] = []
        # Total durable log footprint since the covering checkpoint.
        self.flushed_bytes = 0
        # Counters for the consistency-cost evaluation (Fig. 4).
        self.sync_flushes = 0
        self.async_flushes = 0
        self.records_written = 0
        self.pages_written = 0
        self.erases = 0

    @property
    def enabled(self) -> bool:
        return True

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._next_seq - 1

    @property
    def last_flushed_seq(self) -> int:
        """Sequence number of the most recent *durable* record."""
        return self.flushed[-1].seq if self.flushed else 0

    def append(self, kind: RecordKind, lbn: int, ppn: int = 0, extra: int = 0) -> LogRecord:
        """Buffer a record; it becomes durable at the next flush."""
        record = LogRecord(self._next_seq, kind, lbn, ppn, extra)
        self._next_seq += 1
        self.buffer.append(record)
        return record

    def pending(self) -> int:
        """Number of buffered (volatile) records."""
        return len(self.buffer)

    def flush(self, sync: bool) -> float:
        """Make buffered records durable; returns the flash cost in us.

        ``sync`` only affects accounting (Fig. 4 distinguishes
        synchronous commits, which sit on the request path, from group
        commits): the durability effect is identical.
        """
        if not self.buffer:
            return 0.0
        count = len(self.buffer)
        bytes_needed = count * RECORD_BYTES
        pages = -(-bytes_needed // self.page_size)  # ceil
        self.flushed.extend(self.buffer)
        self.buffer.clear()
        self.flushed_bytes += bytes_needed
        self.records_written += count
        self.pages_written += pages
        if sync:
            self.sync_flushes += 1
        else:
            self.async_flushes += 1
        return pages * self.timing.write_cost()

    def truncate_through(self, seq: int) -> float:
        """Drop durable records with sequence <= ``seq`` (checkpointed).

        Returns the cost of erasing the retired log blocks.
        """
        keep = [record for record in self.flushed if record.seq > seq]
        dropped_bytes = (len(self.flushed) - len(keep)) * RECORD_BYTES
        self.flushed = keep
        self.flushed_bytes = len(keep) * RECORD_BYTES
        dropped_pages = dropped_bytes // self.page_size
        blocks = dropped_pages // self.pages_per_block
        self.erases += blocks
        return blocks * self.timing.erase_cost()

    def records_after(self, seq: int) -> List[LogRecord]:
        """Durable records with sequence > ``seq`` (for roll-forward)."""
        return [record for record in self.flushed if record.seq > seq]

    def drop_buffer(self) -> int:
        """Simulate a crash: volatile records are lost; returns the count."""
        lost = len(self.buffer)
        self.buffer.clear()
        return lost

    def replay_read_cost(self, from_seq: int) -> float:
        """Flash read cost of loading records after ``from_seq``."""
        count = len(self.records_after(from_seq))
        pages = -(-count * RECORD_BYTES // self.page_size)
        return pages * self.timing.read_cost()


class NvramOperationLog(OperationLog):
    """A log backed by non-volatile RAM.

    Paper §6.4: "On a system with non-volatile memory or that can flush
    RAM contents to flash on a power failure, consistency imposes no
    performance cost because there is no need to write logs or
    checkpoints."  Records become durable the instant they are appended
    and every flush is free; nothing is lost at a crash.
    """

    def append(self, kind: RecordKind, lbn: int, ppn: int = 0, extra: int = 0) -> LogRecord:
        record = LogRecord(self._next_seq, kind, lbn, ppn, extra)
        self._next_seq += 1
        self.flushed.append(record)
        self.flushed_bytes += RECORD_BYTES
        self.records_written += 1
        return record

    def flush(self, sync: bool) -> float:
        return 0.0

    def drop_buffer(self) -> int:
        return 0  # nothing volatile to lose

    def replay_read_cost(self, from_seq: int) -> float:
        return 0.0  # NVRAM reads are memory-speed


class NullOperationLog(OperationLog):
    """A disabled log (the paper's no-consistency configuration).

    Appends and flushes are free no-ops; recovery from it is impossible,
    matching a device that keeps its mapping only in RAM.
    """

    @property
    def enabled(self) -> bool:
        return False

    def append(self, kind: RecordKind, lbn: int, ppn: int = 0, extra: int = 0) -> LogRecord:
        record = LogRecord(self._next_seq, kind, lbn, ppn, extra)
        self._next_seq += 1
        return record

    def flush(self, sync: bool) -> float:
        return 0.0

    def truncate_through(self, seq: int) -> float:
        return 0.0
