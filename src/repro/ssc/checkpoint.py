"""SSC mapping checkpoints.

Paper §4.2.2: "SSCs checkpoint the mapping data structure periodically
so that the log size is less than a fixed fraction of the size of the
checkpoint...  It only checkpoints the forward mappings because of the
high degree of sparseness in the logical address space.  FlashTier
maintains two checkpoints on dedicated regions spread across different
planes of the SSC that bypass address translation."

A checkpoint is a snapshot of the forward maps: page-level entries
(lbn, ppn, dirty) and block-level entries (group, pbn, dirty-bitmap).
The store keeps two slots and alternates between them, so a crash during
checkpointing always leaves one intact checkpoint (the previous one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import CrashError
from repro.flash.timing import TimingModel
from repro.sim.crash import CrashInjector, CrashPoint
from repro.util.checksum import crc32_of_pairs

#: Serialized entry sizes: page entries carry lbn + ppn + flags; block
#: entries additionally carry the 8-byte dirty-page bitmap (§4.1) and an
#: 8-byte valid-page bitmap (recovery must know which pages of a
#: block-mapped group were stale at checkpoint time, or a read after
#: recovery could return stale data).
PAGE_ENTRY_BYTES = 17
BLOCK_ENTRY_BYTES = 33
HEADER_BYTES = 32


@dataclass
class Checkpoint:
    """One immutable snapshot of the forward mappings."""

    seq: int                                        # covers log records <= seq
    page_entries: List[Tuple[int, int, bool]]       # (lbn, ppn, dirty)
    block_entries: List[Tuple[int, int, int, int]]  # (group, pbn, dirty_bm, valid_bm)
    checksum: int = 0

    def __post_init__(self):
        if not self.checksum:
            self.checksum = self.compute_checksum()

    def compute_checksum(self) -> int:
        pairs = [(lbn, ppn) for lbn, ppn, _ in self.page_entries]
        pairs += [
            (group ^ dirty_bm, pbn ^ valid_bm)
            for group, pbn, dirty_bm, valid_bm in self.block_entries
        ]
        pairs.append((self.seq, len(pairs)))
        return crc32_of_pairs(pairs)

    def is_intact(self) -> bool:
        """True if the checksum matches (detects torn checkpoint writes).

        The entry lists are snapshots taken at checkpoint time and never
        mutated afterwards, so their CRC is computed once and memoized;
        fault injection models damage by flipping the *stored*
        ``checksum`` field (or an entry, which the fault library pairs
        with dropping the memo), and the comparison still catches it.
        """
        computed = self.__dict__.get("_computed_checksum")
        if computed is None:
            computed = self.compute_checksum()
            self.__dict__["_computed_checksum"] = computed
        return self.checksum == computed

    def invalidate_checksum_memo(self) -> None:
        """Drop the memoized entry CRC after mutating the entry lists.

        Only fault injection ever mutates a checkpoint in place; it must
        call this so :meth:`is_intact` re-reads the damaged contents.
        """
        self.__dict__.pop("_computed_checksum", None)

    def size_bytes(self) -> int:
        """Serialized footprint on flash."""
        return (
            HEADER_BYTES
            + len(self.page_entries) * PAGE_ENTRY_BYTES
            + len(self.block_entries) * BLOCK_ENTRY_BYTES
        )


class CheckpointStore:
    """Two alternating checkpoint slots on dedicated flash regions."""

    #: Optional trace bus (repro.obs); None keeps writes zero-cost.
    tracer = None

    def __init__(self, timing: TimingModel, page_size: int = 4096,
                 pages_per_block: int = 64, name: str = ""):
        self.timing = timing
        self.page_size = page_size
        self.pages_per_block = pages_per_block
        # Diagnostic label ("shard3/checkpoint" in a sharded array);
        # purely informational — it never affects behaviour.
        self.name = name
        # Optional fault hook: ticks AFTER_CHECKPOINT at every write.
        self.injector: Optional[CrashInjector] = None
        self._slots: List[Optional[Checkpoint]] = [None, None]
        self._active = 0
        self.writes = 0
        self.pages_written = 0

    def latest(self) -> Optional[Checkpoint]:
        """The most recent intact checkpoint, or None."""
        candidates = [
            checkpoint
            for checkpoint in self._slots
            if checkpoint is not None and checkpoint.is_intact()
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda checkpoint: checkpoint.seq)

    def write(self, checkpoint: Checkpoint) -> float:
        """Persist ``checkpoint`` into the non-active slot; returns cost.

        The cost covers erasing the slot's region and programming the
        serialized mapping.
        """
        slot = 1 - self._active
        self._slots[slot] = checkpoint
        self._active = slot
        pages = -(-checkpoint.size_bytes() // self.page_size)  # ceil
        blocks = -(-pages // self.pages_per_block)
        self.writes += 1
        self.pages_written += pages
        if self.injector is not None:
            try:
                self.injector.tick(CrashPoint.AFTER_CHECKPOINT)
            except CrashError:
                if self.injector.torn:
                    # Power failed mid-write: the slot holds a torn
                    # checkpoint whose checksum cannot verify, so
                    # latest() falls back to the other (intact) slot.
                    checkpoint.checksum ^= 0x1
                raise
        cost = pages * self.timing.write_cost() + blocks * self.timing.erase_cost()
        if self.tracer is not None:
            self.tracer.emit(
                "checkpoint.commit", lane=self.name or "checkpoint",
                dur_us=cost, seq=checkpoint.seq, pages=pages,
                bytes=checkpoint.size_bytes(),
            )
        return cost

    def read_cost(self, checkpoint: Checkpoint) -> float:
        """Flash read cost of loading ``checkpoint`` at recovery."""
        pages = -(-checkpoint.size_bytes() // self.page_size)
        return pages * self.timing.read_cost()
