"""Sparse hash map — the SSC's memory-efficient mapping structure.

Paper §4.1: "The SSC optimizes for sparseness in the blocks it caches
with a sparse hash map data structure, developed at Google.  ...  The
map is a hash table with t buckets divided into t/M groups of M buckets
each.  Each group is stored sparsely as an array that holds values for
allocated block addresses and an occupancy bitmap of size M, with one
bit for each bucket.  A lookup for bucket i calculates the value
location from the number of 1s in the bitmap before location i."

This is that structure, from scratch: open addressing (linear probing
after a 64-bit hash mix) over buckets, each group storing only its
occupied entries in a packed array ranked by the occupancy bitmap.  The
table is fully associative, so entries store the complete key.

Memory accounting mirrors the paper's Table 4 arithmetic: each occupied
entry costs :data:`ENTRY_BYTES` (key + value + structure state, the same
constant the dense SSD tables use so the comparison is fair), and each
*allocated group* additionally costs its occupancy bitmap plus array
pointer — the ~8.4 bytes/entry sparse overhead the paper quotes for
M = 32.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import ConfigError
from repro.ftl.mapping import ENTRY_BYTES

#: Buckets per group (the paper sets M = 32).
DEFAULT_GROUP_SIZE = 32

#: Per-allocated-group overhead: M/8 bitmap bytes + an 8-byte pointer to
#: the group's packed value array.
GROUP_OVERHEAD_BYTES = 8

_MASK = (1 << 64) - 1


def _hash_key(key: int) -> int:
    """splitmix64-style mixer; block addresses are too regular for id-hash."""
    value = (key + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK
    return value ^ (value >> 31)


class _Group:
    """One group of M buckets: occupancy bits + packed (key, value) array."""

    __slots__ = ("bits", "entries")

    def __init__(self):
        self.bits = 0
        self.entries: List[Tuple[int, int]] = []

    def rank(self, slot: int) -> int:
        """Packed-array index for bucket ``slot`` (popcount below it)."""
        return (self.bits & ((1 << slot) - 1)).bit_count()

    def occupied(self, slot: int) -> bool:
        return bool(self.bits >> slot & 1)

    def get(self, slot: int) -> Tuple[int, int]:
        return self.entries[self.rank(slot)]

    def put(self, slot: int, key: int, value: int) -> None:
        index = self.rank(slot)
        if self.occupied(slot):
            self.entries[index] = (key, value)
        else:
            self.entries.insert(index, (key, value))
            self.bits |= 1 << slot

    def delete(self, slot: int) -> None:
        if not self.occupied(slot):
            return
        del self.entries[self.rank(slot)]
        self.bits &= ~(1 << slot)


class SparseHashMap:
    """Open-addressed sparse hash map from int keys to int values.

    Grows by doubling when load factor exceeds ``max_load``; shrinks are
    unnecessary for the SSC's workloads (the cache stays near capacity).
    """

    def __init__(
        self,
        initial_buckets: int = 64,
        group_size: int = DEFAULT_GROUP_SIZE,
        max_load: float = 0.75,
    ):
        if group_size <= 0 or group_size > 64:
            raise ConfigError("group_size must be in [1, 64]")
        if not 0.1 <= max_load < 1.0:
            raise ConfigError("max_load must be in [0.1, 1.0)")
        self.group_size = group_size
        self.max_load = max_load
        self._buckets = self._round_up(max(initial_buckets, group_size))
        self._groups: List[Optional[_Group]] = [None] * (self._buckets // group_size)
        self._count = 0
        # Probe-length statistics ("typically no more than 4-5 probes").
        self.total_probes = 0
        self.total_lookups = 0

    @staticmethod
    def _round_up(value: int) -> int:
        power = 1
        while power < value:
            power <<= 1
        return power

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: int) -> bool:
        return self.lookup(key) is not None

    @property
    def buckets(self) -> int:
        return self._buckets

    @property
    def allocated_groups(self) -> int:
        """Groups that hold at least one entry (they cost real memory)."""
        return sum(1 for group in self._groups if group is not None and group.bits)

    # ------------------------------------------------------------------

    def _probe(self, key: int) -> Iterator[int]:
        """Linear probe sequence over bucket indexes.

        Linear probing (after a strong 64-bit mix) keeps chains short at
        our load factor and — unlike quadratic probing — admits
        tombstone-free deletion by re-inserting the run that follows the
        removed bucket (see :meth:`_rehash_cluster_after`).
        """
        mask = self._buckets - 1
        index = _hash_key(key) & mask
        while True:
            yield index
            index = (index + 1) & mask

    def _locate(self, bucket: int) -> Tuple[_Group, int]:
        group_index, slot = divmod(bucket, self.group_size)
        group = self._groups[group_index]
        if group is None:
            group = _Group()
            self._groups[group_index] = group
        return group, slot

    def lookup(self, key: int) -> Optional[int]:
        """Return the value mapped to ``key``, or None."""
        self.total_lookups += 1
        for probes, bucket in enumerate(self._probe(key), start=1):
            group_index, slot = divmod(bucket, self.group_size)
            group = self._groups[group_index]
            if group is None or not group.occupied(slot):
                self.total_probes += probes
                return None
            stored_key, value = group.get(slot)
            if stored_key == key:
                self.total_probes += probes
                return value
            if probes > self._buckets:  # pragma: no cover - table invariant
                raise RuntimeError("probe loop exceeded table size")

    def insert(self, key: int, value: int) -> Optional[int]:
        """Map ``key`` to ``value``; returns the previous value if any."""
        if (self._count + 1) / self._buckets > self.max_load:
            self._grow()
        for bucket in self._probe(key):
            group, slot = self._locate(bucket)
            if not group.occupied(slot):
                group.put(slot, key, value)
                self._count += 1
                return None
            stored_key, old_value = group.get(slot)
            if stored_key == key:
                group.put(slot, key, value)
                return old_value

    def remove(self, key: int) -> Optional[int]:
        """Unmap ``key``; returns the value it held, or None.

        Deletion is tombstone-free: the occupied run following the
        removed bucket is re-inserted, which keeps probe chains short —
        important because the SSC removes entries constantly during
        silent eviction.
        """
        for bucket in self._probe(key):
            group_index, slot = divmod(bucket, self.group_size)
            group = self._groups[group_index]
            if group is None or not group.occupied(slot):
                return None
            stored_key, value = group.get(slot)
            if stored_key == key:
                group.delete(slot)
                self._count -= 1
                self._rehash_cluster_after(bucket)
                return value

    def _rehash_cluster_after(self, bucket: int) -> None:
        """Re-insert entries whose probe chain may pass through ``bucket``.

        With linear probing, any entry whose probe chain passed through
        the removed bucket lives in the contiguous occupied run that
        follows it.  Deleting and re-inserting that run restores the
        invariant that every entry is reachable from its hash position.
        """
        mask = self._buckets - 1
        index = (bucket + 1) & mask
        displaced: List[Tuple[int, int]] = []
        # Collect the contiguous run of occupied buckets after the hole.
        # Any entry in it might have probed through the removed bucket.
        steps = 0
        while steps < self._buckets:
            group_index, slot = divmod(index, self.group_size)
            group = self._groups[group_index]
            if group is None or not group.occupied(slot):
                break
            displaced.append(group.get(slot))
            group.delete(slot)
            self._count -= 1
            index = (index + 1) & mask
            steps += 1
        for key, value in displaced:
            self.insert(key, value)

    def _grow(self) -> None:
        entries = list(self.items())
        self._buckets *= 2
        self._groups = [None] * (self._buckets // self.group_size)
        self._count = 0
        for key, value in entries:
            self.insert(key, value)

    def items(self) -> Iterator[Tuple[int, int]]:
        """Yield (key, value) pairs in unspecified order."""
        for group in self._groups:
            if group is not None:
                yield from group.entries

    def keys(self) -> Iterator[int]:
        for key, _value in self.items():
            yield key

    # ------------------------------------------------------------------

    def mean_probes(self) -> float:
        """Average probes per lookup so far."""
        if self.total_lookups == 0:
            return 0.0
        return self.total_probes / self.total_lookups

    def memory_bytes(self) -> int:
        """Modeled memory of a C implementation of this structure.

        Occupied entries cost ENTRY_BYTES each; allocated groups cost
        their bitmap plus array pointer.  Empty groups cost only a null
        pointer in the group directory, folded into the per-group
        overhead of allocated groups for simplicity.
        """
        return (
            self._count * ENTRY_BYTES
            + self.allocated_groups * (self.group_size // 8 + GROUP_OVERHEAD_BYTES)
        )
