"""Sparse hash map — the SSC's memory-efficient mapping structure.

Paper §4.1: "The SSC optimizes for sparseness in the blocks it caches
with a sparse hash map data structure, developed at Google.  ...  The
map is a hash table with t buckets divided into t/M groups of M buckets
each.  Each group is stored sparsely as an array that holds values for
allocated block addresses and an occupancy bitmap of size M, with one
bit for each bucket.  A lookup for bucket i calculates the value
location from the number of 1s in the bitmap before location i."

This is that structure, from scratch: open addressing (linear probing
after a 64-bit hash mix) over buckets, each group storing only its
occupied entries in a packed array ranked by the occupancy bitmap.  The
table is fully associative, so entries store the complete key.

Memory accounting mirrors the paper's Table 4 arithmetic: each occupied
entry costs :data:`ENTRY_BYTES` (key + value + structure state, the same
constant the dense SSD tables use so the comparison is fair), and each
*allocated group* additionally costs its occupancy bitmap plus array
pointer — the ~8.4 bytes/entry sparse overhead the paper quotes for
M = 32.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import ConfigError
from repro.ftl.mapping import ENTRY_BYTES

#: Buckets per group (the paper sets M = 32).
DEFAULT_GROUP_SIZE = 32

#: Per-allocated-group overhead: M/8 bitmap bytes + an 8-byte pointer to
#: the group's packed value array.
GROUP_OVERHEAD_BYTES = 8

_MASK = (1 << 64) - 1


def _hash_key(key: int) -> int:
    """splitmix64-style mixer; block addresses are too regular for id-hash."""
    value = (key + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK
    return value ^ (value >> 31)


class _Group:
    """One group of M buckets: occupancy bits + packed (key, value) array.

    A bucket ``slot`` is occupied iff bit ``slot`` of ``bits`` is set;
    its entry lives at packed index ``popcount(bits & ((1 << slot) - 1))``
    (the paper's rank-by-bitmap lookup).  The map's probe loops inline
    that arithmetic, so the group is pure state.
    """

    __slots__ = ("bits", "entries")

    def __init__(self):
        self.bits = 0
        self.entries: List[Tuple[int, int]] = []


class SparseHashMap:
    """Open-addressed sparse hash map from int keys to int values.

    Grows by doubling when load factor exceeds ``max_load``; shrinks are
    unnecessary for the SSC's workloads (the cache stays near capacity).
    """

    def __init__(
        self,
        initial_buckets: int = 64,
        group_size: int = DEFAULT_GROUP_SIZE,
        max_load: float = 0.75,
    ):
        if group_size <= 0 or group_size > 64:
            raise ConfigError("group_size must be in [1, 64]")
        if not 0.1 <= max_load < 1.0:
            raise ConfigError("max_load must be in [0.1, 1.0)")
        self.group_size = group_size
        self.max_load = max_load
        self._buckets = self._round_up(max(initial_buckets, group_size))
        self._groups: List[Optional[_Group]] = [None] * (self._buckets // group_size)
        self._count = 0
        # Probe-length statistics ("typically no more than 4-5 probes").
        self.total_probes = 0
        self.total_lookups = 0

    @staticmethod
    def _round_up(value: int) -> int:
        power = 1
        while power < value:
            power <<= 1
        return power

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: int) -> bool:
        return self.lookup(key) is not None

    @property
    def buckets(self) -> int:
        return self._buckets

    @property
    def allocated_groups(self) -> int:
        """Groups that hold at least one entry (they cost real memory)."""
        return sum(1 for group in self._groups if group is not None and group.bits)

    # ------------------------------------------------------------------

    # The probe order is linear: start at _hash_key(key) & (buckets-1)
    # and step by +1 mod buckets.  Linear probing (after a strong 64-bit
    # mix) keeps chains short at our load factor and — unlike quadratic
    # probing — admits tombstone-free deletion by re-inserting the run
    # that follows the removed bucket (see _rehash_cluster_after).  The
    # hot paths below inline the loop together with the group/slot and
    # rank-by-bitmap arithmetic.

    def lookup(self, key: int) -> Optional[int]:
        """Return the value mapped to ``key``, or None."""
        self.total_lookups += 1
        mask = self._buckets - 1
        group_size = self.group_size
        groups = self._groups
        index = _hash_key(key) & mask
        probes = 1
        while True:
            group = groups[index // group_size]
            if group is None:
                self.total_probes += probes
                return None
            slot = index % group_size
            bits = group.bits
            if not (bits >> slot) & 1:
                self.total_probes += probes
                return None
            entry = group.entries[(bits & ((1 << slot) - 1)).bit_count()]
            if entry[0] == key:
                self.total_probes += probes
                return entry[1]
            if probes > self._buckets:  # pragma: no cover - table invariant
                raise RuntimeError("probe loop exceeded table size")
            index = (index + 1) & mask
            probes += 1

    def insert(self, key: int, value: int) -> Optional[int]:
        """Map ``key`` to ``value``; returns the previous value if any."""
        if (self._count + 1) / self._buckets > self.max_load:
            self._grow()
        return self._insert_no_grow(key, value)

    def _insert_no_grow(self, key: int, value: int) -> Optional[int]:
        """Insert fast path: the load-factor check already happened.

        Bulk callers (:meth:`_grow`, :meth:`_rehash_cluster_after`) use
        this directly — re-insertion can never push the table past
        ``max_load``, so re-checking per entry would be pure overhead.
        """
        mask = self._buckets - 1
        group_size = self.group_size
        groups = self._groups
        index = _hash_key(key) & mask
        while True:
            group_index = index // group_size
            group = groups[group_index]
            if group is None:
                group = _Group()
                groups[group_index] = group
            slot = index % group_size
            bits = group.bits
            rank = (bits & ((1 << slot) - 1)).bit_count()
            if not (bits >> slot) & 1:
                group.entries.insert(rank, (key, value))
                group.bits = bits | (1 << slot)
                self._count += 1
                return None
            entry = group.entries[rank]
            if entry[0] == key:
                group.entries[rank] = (key, value)
                return entry[1]
            index = (index + 1) & mask

    def remove(self, key: int) -> Optional[int]:
        """Unmap ``key``; returns the value it held, or None.

        Deletion is tombstone-free: the occupied run following the
        removed bucket is re-inserted, which keeps probe chains short —
        important because the SSC removes entries constantly during
        silent eviction.
        """
        mask = self._buckets - 1
        group_size = self.group_size
        groups = self._groups
        index = _hash_key(key) & mask
        while True:
            group = groups[index // group_size]
            if group is None:
                return None
            slot = index % group_size
            bits = group.bits
            if not (bits >> slot) & 1:
                return None
            rank = (bits & ((1 << slot) - 1)).bit_count()
            entry = group.entries[rank]
            if entry[0] == key:
                del group.entries[rank]
                group.bits = bits & ~(1 << slot)
                self._count -= 1
                self._rehash_cluster_after(index)
                return entry[1]
            index = (index + 1) & mask

    def _rehash_cluster_after(self, bucket: int) -> None:
        """Re-insert entries whose probe chain may pass through ``bucket``.

        With linear probing, any entry whose probe chain passed through
        the removed bucket lives in the contiguous occupied run that
        follows it.  Deleting and re-inserting that run restores the
        invariant that every entry is reachable from its hash position.
        """
        mask = self._buckets - 1
        group_size = self.group_size
        groups = self._groups
        index = (bucket + 1) & mask
        displaced: List[Tuple[int, int]] = []
        # Collect the contiguous run of occupied buckets after the hole.
        # Any entry in it might have probed through the removed bucket.
        steps = 0
        while steps < self._buckets:
            group = groups[index // group_size]
            if group is None:
                break
            slot = index % group_size
            bits = group.bits
            if not (bits >> slot) & 1:
                break
            rank = (bits & ((1 << slot) - 1)).bit_count()
            displaced.append(group.entries[rank])
            del group.entries[rank]
            group.bits = bits & ~(1 << slot)
            self._count -= 1
            index = (index + 1) & mask
            steps += 1
        for key, value in displaced:
            self._insert_no_grow(key, value)

    def _grow(self) -> None:
        entries = list(self.items())
        self._buckets *= 2
        # One doubling suffices at any max_load >= 0.5; the loop keeps
        # the end state identical to repeated growth for smaller loads.
        while len(entries) / self._buckets > self.max_load:
            self._buckets *= 2
        self._groups = [None] * (self._buckets // self.group_size)
        self._count = 0
        for key, value in entries:
            self._insert_no_grow(key, value)

    def items(self) -> Iterator[Tuple[int, int]]:
        """Yield (key, value) pairs in unspecified order."""
        for group in self._groups:
            if group is not None:
                yield from group.entries

    def keys(self) -> Iterator[int]:
        for key, _value in self.items():
            yield key

    # ------------------------------------------------------------------

    def mean_probes(self) -> float:
        """Average probes per lookup so far."""
        if self.total_lookups == 0:
            return 0.0
        return self.total_probes / self.total_lookups

    def memory_bytes(self) -> int:
        """Modeled memory of a C implementation of this structure.

        Occupied entries cost ENTRY_BYTES each; allocated groups cost
        their bitmap plus array pointer.  Empty groups cost only a null
        pointer in the group directory, folded into the per-group
        overhead of allocated groups for simplicity.
        """
        return (
            self._count * ENTRY_BYTES
            + self.allocated_groups * (self.group_size // 8 + GROUP_OVERHEAD_BYTES)
        )
