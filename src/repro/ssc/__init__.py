"""The solid-state cache (SSC) — the paper's primary contribution.

An SSC is a flash device whose interface is designed for caching rather
than storage (paper §4):

* a **unified, sparse address space**: the host writes at *disk* logical
  block numbers and a sparse hash map translates them to flash pages;
* a six-operation **consistent cache interface**: ``write-dirty``,
  ``write-clean``, ``read``, ``evict``, ``clean``, ``exists``;
* **silent eviction**: garbage collection may drop clean cached blocks
  instead of copying them (policies SE-Util and SE-Merge);
* **durability machinery**: an operation log with group commit, periodic
  checkpoints, and roll-forward recovery, so cache contents survive a
  crash.
"""

from repro.ssc.sparse_map import SparseHashMap
from repro.ssc.log import LogRecord, OperationLog, RecordKind
from repro.ssc.checkpoint import Checkpoint, CheckpointStore
from repro.ssc.engine import CacheFTL, EvictionPolicy
from repro.ssc.device import SolidStateCache, SSCConfig

__all__ = [
    "SparseHashMap",
    "LogRecord",
    "OperationLog",
    "RecordKind",
    "Checkpoint",
    "CheckpointStore",
    "CacheFTL",
    "EvictionPolicy",
    "SolidStateCache",
    "SSCConfig",
]
