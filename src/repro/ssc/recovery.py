"""Roll-forward recovery for the SSC.

Paper §4.2.2 (Recovery): "The recovery operation reconstructs the
different mappings in device memory after a power failure or reboot.
It first computes the difference between the sequence number of the
most recent committed log record and the log sequence number
corresponding to the beginning of the most recent checkpoint.  It then
loads the mapping checkpoint and replays the log records falling in the
range of the computed difference.  The SSC performs roll-forward
recovery for both the page-level and block-level maps, and reconstructs
the reverse-mapping table from the forward tables."

The replay produces a *logical* picture — page-level entries
(lbn → ppn, dirty) and block-level entries (group → pbn, dirty/valid
bitmaps) — which is then materialized onto the flash chip: every
programmed page not referenced by the recovered mapping is marked
invalid (it is an orphan: its mapping record was still buffered when
power failed, which the write-clean contract explicitly permits), and
block roles, valid counts and dirty flags are reset to match.

The returned recovery *time* covers only the flash reads the paper
charges: loading the checkpoint and reading the log tail.  Rebuilding
in-memory indexes is free at this scale on a device controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import RecoveryError
from repro.flash.block import BlockKind
from repro.flash.page import Page, PageState
from repro.ssc.checkpoint import Checkpoint
from repro.ssc.log import LogRecord, RecordKind
from repro.util.checksum import crc32_of_payload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ssc.engine import CacheFTL


_VALID_SHIFT = 64
_LOW64 = (1 << 64) - 1


def _page_intact(page: Page) -> bool:
    """True if the page's OOB checksum matches its payload.

    A torn program (power cut mid-write) or bit rot leaves a page whose
    stored checksum cannot verify; recovery must treat it as damaged and
    never surface its contents.  Pages stamped before checksums existed
    (``checksum is None``) are trusted, matching the log-record rule.
    """
    if page.oob is None:
        return False
    if page.oob.checksum is None:
        return True
    return page.oob.checksum == crc32_of_payload(page.oob.lbn, page.data)


@dataclass
class _BlockEntry:
    pbn: int
    dirty_bitmap: int
    valid_bitmap: int


@dataclass
class RecoveredState:
    """The logical mapping picture produced by checkpoint + log replay."""

    page_entries: Dict[int, Tuple[int, bool]] = field(default_factory=dict)
    block_entries: Dict[int, _BlockEntry] = field(default_factory=dict)
    replayed_records: int = 0


def replay(
    checkpoint: Optional[Checkpoint],
    records: List[LogRecord],
    pages_per_block: int,
) -> RecoveredState:
    """Apply ``records`` (in sequence order) on top of ``checkpoint``."""
    state = RecoveredState()
    if checkpoint is not None:
        if not checkpoint.is_intact():
            raise RecoveryError("checkpoint failed checksum validation")
        for lbn, ppn, dirty in checkpoint.page_entries:
            state.page_entries[lbn] = (ppn, dirty)
        for group, pbn, dirty_bitmap, valid_bitmap in checkpoint.block_entries:
            state.block_entries[group] = _BlockEntry(pbn, dirty_bitmap, valid_bitmap)

    last_seq = checkpoint.seq if checkpoint is not None else 0
    for record in records:
        if record.seq <= last_seq:
            raise RecoveryError(
                f"log record {record.seq} out of order (after {last_seq})"
            )
        last_seq = record.seq
        _apply(state, record, pages_per_block)
        state.replayed_records += 1
    return state


def _apply(state: RecoveredState, record: LogRecord, pages_per_block: int) -> None:
    kind = record.kind
    if kind is RecordKind.INSERT_PAGE:
        state.page_entries[record.lbn] = (record.ppn, bool(record.extra & 1))
    elif kind is RecordKind.REMOVE_PAGE:
        current = state.page_entries.get(record.lbn)
        if current is not None and current[0] == record.ppn:
            del state.page_entries[record.lbn]
    elif kind is RecordKind.INSERT_BLOCK:
        state.block_entries[record.lbn] = _BlockEntry(
            pbn=record.ppn,
            dirty_bitmap=record.extra & _LOW64,
            valid_bitmap=record.extra >> _VALID_SHIFT,
        )
    elif kind is RecordKind.REMOVE_BLOCK:
        entry = state.block_entries.get(record.lbn)
        if entry is not None and entry.pbn == record.ppn:
            del state.block_entries[record.lbn]
    elif kind is RecordKind.INVALIDATE_PAGE:
        group, offset = divmod(record.lbn, pages_per_block)
        entry = state.block_entries.get(group)
        if entry is not None:
            bit = 1 << offset
            entry.valid_bitmap &= ~bit
            entry.dirty_bitmap &= ~bit
    elif kind is RecordKind.CLEAN:
        current = state.page_entries.get(record.lbn)
        if current is not None:
            state.page_entries[record.lbn] = (current[0], False)
        else:
            group, offset = divmod(record.lbn, pages_per_block)
            entry = state.block_entries.get(group)
            if entry is not None:
                entry.dirty_bitmap &= ~(1 << offset)
    else:  # pragma: no cover - enum is closed
        raise RecoveryError(f"unknown record kind {kind}")


def materialize(engine: "CacheFTL", state: RecoveredState) -> None:
    """Install ``state`` into the engine and reconcile the flash chip.

    After this returns: the forward maps match ``state`` exactly; every
    flash page is VALID iff the recovered mapping references it; block
    kinds, valid/dirty counts and the free lists are consistent; and the
    engine's transient cursors (active log block, sequential-run state)
    are reset.
    """
    chip = engine.chip
    geometry = chip.geometry

    expected_pages: Dict[int, Tuple[int, bool]] = {
        ppn: (lbn, dirty) for lbn, (ppn, dirty) in state.page_entries.items()
    }
    expected_blocks: Dict[int, Tuple[int, _BlockEntry]] = {
        entry.pbn: (group, entry) for group, entry in state.block_entries.items()
    }

    log_blocks: List[Tuple[int, int]] = []  # (oldest page seq, pbn)
    for plane in chip.planes:
        for block in plane.blocks.values():
            _reconcile_block(
                engine, plane, block, expected_pages, expected_blocks, log_blocks
            )

    engine._log_blocks.clear()
    for _seq, pbn in sorted(log_blocks):
        engine._log_blocks.append(pbn)
    engine._active_log = None
    engine._seq_log = None
    engine._seq_next_lpn = None
    engine._last_lpn = None
    # A crash may have struck mid-merge or mid-eviction; none of that
    # transient state survives into the recovered engine.
    engine._gc_protected.clear()
    engine._pending_cost = 0.0
    engine._allocate_hot = False

    # Rebuild the forward maps without journaling (the log already
    # holds, or held, these mappings).  Page entries are installed only
    # when the target page corroborates them — VALID after reconcile
    # and OOB-stamped with the same logical block — so a stale entry
    # can never route reads to some other block's data.
    engine.log_map.inner = type(engine.log_map.inner)()
    for lbn, (ppn, _dirty) in state.page_entries.items():
        page = chip.page(ppn)
        if (
            page.state is PageState.VALID
            and page.oob is not None
            and page.oob.lbn == lbn
        ):
            engine.log_map.inner.insert(lbn, ppn)
    engine.data_map.inner = type(engine.data_map.inner)()
    for group, entry in state.block_entries.items():
        engine.data_map.inner.insert(group, entry.pbn)
    engine.data_map.rebuild_reverse()


def recover_device(ssc) -> float:
    """Roll-forward recovery entry point for one device (or array shard).

    Replays the device's latest intact checkpoint plus the verified log
    tail into its engine, reconciles the flash chip, and returns the
    simulated recovery time (checkpoint + log flash reads).  A sharded
    array invokes this once per shard; the shards' recoveries are
    independent, so an array can run them concurrently.
    """
    if not ssc.oplog.enabled:
        raise RecoveryError(
            "no-consistency configuration: mapping was never persisted"
        )
    checkpoint = ssc.checkpoints.latest()
    from_seq = checkpoint.seq if checkpoint is not None else 0
    records, discarded = ssc.oplog.intact_records_after(from_seq)
    ssc.last_recovery_discarded = discarded
    checkpoint_cost = (
        ssc.checkpoints.read_cost(checkpoint) if checkpoint is not None else 0.0
    )
    log_cost = ssc.oplog.replay_read_cost(from_seq)
    state = replay(checkpoint, records, ssc.engine.pages_per_block)
    materialize(ssc.engine, state)
    ssc._crashed = False
    tracer = ssc.tracer
    if tracer is not None:
        lane = f"{ssc.name}/recovery" if ssc.name else "recovery"
        start = tracer.now_us
        entries = 0
        if checkpoint is not None:
            entries = len(checkpoint.page_entries) + len(checkpoint.block_entries)
        tracer.emit(
            "recovery.phase", lane=lane, ts_us=start, dur_us=checkpoint_cost,
            phase="load_checkpoint", count=entries,
        )
        tracer.emit(
            "recovery.phase", lane=lane, ts_us=start + checkpoint_cost,
            dur_us=log_cost, phase="replay_log", count=state.replayed_records,
        )
        tracer.emit(
            "recovery.phase", lane=lane,
            ts_us=start + checkpoint_cost + log_cost, dur_us=0.0,
            phase="materialize",
            count=len(state.page_entries) + len(state.block_entries),
        )
    return checkpoint_cost + log_cost


def _reconcile_block(engine, plane, block, expected_pages, expected_blocks,
                     log_blocks) -> None:
    chip = engine.chip
    geometry = chip.geometry
    block.valid_count = 0
    block.dirty_count = 0

    if block.pbn in expected_blocks:
        group, entry = expected_blocks[block.pbn]
        base = group * engine.pages_per_block
        block.kind = BlockKind.DATA
        for offset, page in enumerate(block.pages):
            if page.oob is None:
                continue  # hole: never programmed since last erase
            # The OOB reverse map must agree with the forward mapping:
            # a stale block entry (recovered from an old checkpoint over
            # a gapped log) may reference a block since erased and
            # reused, whose pages now hold other logical blocks' data.
            if (
                entry.valid_bitmap >> offset & 1
                and page.oob.lbn == base + offset
                and _page_intact(page)
            ):
                page.state = PageState.VALID
                page.oob.dirty = bool(entry.dirty_bitmap >> offset & 1)
                block.valid_count += 1
                if page.oob.dirty:
                    block.dirty_count += 1
            else:
                page.state = PageState.INVALID
        return

    programmed = [
        (offset, page) for offset, page in enumerate(block.pages) if page.oob is not None
    ]
    if not programmed:
        # Fully erased.  It may have been allocated (e.g. a just-opened
        # log block whose first write never happened); return it to the
        # free pool.
        block.kind = BlockKind.FREE
        block.write_pointer = 0
        block.sequential = True
        block.first_lbn = None
        if not plane.is_free(block.pbn):
            plane.release(block)
        return

    # A (former or current) log block: pages are live iff the recovered
    # page map points at them.  Orphans — programmed pages whose mapping
    # record was lost with the log buffer — become invalid, exactly the
    # "as if silently evicted" semantics write-clean promises.
    oldest_seq = None
    for offset, page in programmed:
        ppn = geometry.make_ppn(block.pbn, offset)
        expected = expected_pages.get(ppn)
        if expected is not None and page.oob.lbn == expected[0] and _page_intact(page):
            page.state = PageState.VALID
            page.oob.dirty = expected[1]
            block.valid_count += 1
            if page.oob.dirty:
                block.dirty_count += 1
        else:
            page.state = PageState.INVALID
        if oldest_seq is None or page.oob.seq < oldest_seq:
            oldest_seq = page.oob.seq
    block.kind = BlockKind.LOG
    log_blocks.append((oldest_seq or 0, block.pbn))
