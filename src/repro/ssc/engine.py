"""The SSC's flash translation engine.

``CacheFTL`` specializes the conventional hybrid FTL for caching
(paper §4):

* the mapping is keyed by *disk* logical block numbers — a sparse,
  effectively unbounded address space — using sparse hash maps instead
  of dense tables (unified address space, §4.1);
* mapping mutations are recorded in the operation log via the
  ``Logged*Map`` wrappers, so the mapping is recoverable (§4.2.2);
* garbage collection integrates **silent eviction** (§4.3): when free
  blocks run low the engine drops clean cached blocks instead of
  copying live data, falling back to copy-based merges only when no
  clean victim exists.

Two policies configure eviction and log provisioning:

* ``EvictionPolicy.UTIL`` (the paper's *SSC* configuration, SE-Util):
  the log-block pool is fixed at ``log_fraction`` of capacity; evicted
  blocks become data blocks only.
* ``EvictionPolicy.MERGE`` (the paper's *SSC-R*, SE-Merge): the log
  pool may grow up to ``max_log_fraction``, deferring merges and
  enabling more switch merges, at the cost of provisioning device
  memory for the larger page-mapped region.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import CacheFullError, ConfigError, InvalidAddressError
from repro.flash.block import BlockKind, EraseBlock
from repro.flash.chip import FlashChip
from repro.flash.page import PageState
from repro.ftl.hybrid import HybridFTL, HybridFTLConfig
from repro.ftl.base import FTLStats
from repro.ftl.wear import WearConfig, WearLeveler
from repro.ssc.log import OperationLog, RecordKind
from repro.ssc.sparse_map import SparseHashMap


class EvictionPolicy(Enum):
    """Silent-eviction / log-provisioning policy (paper §4.3)."""

    UTIL = auto()    # SE-Util: fixed log pool, utilization-based eviction
    MERGE = auto()   # SE-Merge: growable log pool, switch-merge friendly


@dataclass(frozen=True)
class CacheFTLConfig:
    """Tunables for the cache engine.

    Field names ``spare_blocks`` / ``sequential_log`` intentionally match
    :class:`~repro.ftl.hybrid.HybridFTLConfig`, since the merge machinery
    is inherited.
    """

    policy: EvictionPolicy = EvictionPolicy.UTIL
    log_fraction: float = 0.07
    max_log_fraction: float = 0.20
    spare_blocks: int = 8
    sequential_log: bool = True
    evict_batch: int = 4
    wear: WearConfig = WearConfig()

    def __post_init__(self):
        if not 0.0 < self.log_fraction < 0.5:
            raise ConfigError("log_fraction must be in (0, 0.5)")
        if not self.log_fraction <= self.max_log_fraction < 0.5:
            raise ConfigError("max_log_fraction must be in [log_fraction, 0.5)")
        if self.spare_blocks < 4:
            raise ConfigError("spare_blocks must be >= 4")
        if self.evict_batch < 1:
            raise ConfigError("evict_batch must be >= 1")


class LoggedPageMap:
    """Sparse lbn->ppn map that journals every mutation.

    The dirty flag carried on insert records is read from the just-
    programmed page's OOB, which the engine always writes first.
    """

    def __init__(self, chip: FlashChip, oplog: OperationLog):
        self.inner = SparseHashMap()
        self._chip = chip
        self._log = oplog

    def lookup(self, lbn: int) -> Optional[int]:
        return self.inner.lookup(lbn)

    def insert(self, lbn: int, ppn: int) -> Optional[int]:
        page = self._chip.page(ppn)
        dirty = bool(page.oob is not None and page.oob.dirty)
        self._log.append(RecordKind.INSERT_PAGE, lbn, ppn, extra=int(dirty))
        return self.inner.insert(lbn, ppn)

    def remove(self, lbn: int) -> Optional[int]:
        previous = self.inner.remove(lbn)
        if previous is not None:
            self._log.append(RecordKind.REMOVE_PAGE, lbn, previous)
        return previous

    def __contains__(self, lbn: int) -> bool:
        return lbn in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def items(self) -> Iterator[Tuple[int, int]]:
        return self.inner.items()

    def memory_bytes(self) -> int:
        return self.inner.memory_bytes()


class LoggedBlockMap:
    """Sparse group->pbn map that journals mutations and keeps the
    reverse (pbn->group) index the engine needs for eviction."""

    def __init__(self, chip: FlashChip, oplog: OperationLog, pages_per_block: int):
        self.inner = SparseHashMap()
        self.reverse: Dict[int, int] = {}
        self._chip = chip
        self._log = oplog
        self._pages_per_block = pages_per_block

    def _state_bitmaps(self, pbn: int) -> int:
        """Pack the block's dirty (low 64) and valid (high 64) bitmaps."""
        block = self._chip.block(pbn)
        dirty_bitmap = 0
        valid_bitmap = 0
        for offset, page in enumerate(block.pages):
            if page.state is not PageState.VALID:
                continue
            valid_bitmap |= 1 << offset
            if page.oob is not None and page.oob.dirty:
                dirty_bitmap |= 1 << offset
        return dirty_bitmap | (valid_bitmap << 64)

    def lookup(self, group: int) -> Optional[int]:
        return self.inner.lookup(group)

    def insert(self, group: int, pbn: int) -> Optional[int]:
        self._log.append(
            RecordKind.INSERT_BLOCK, group, pbn, extra=self._state_bitmaps(pbn)
        )
        previous = self.inner.insert(group, pbn)
        if previous is not None:
            self.reverse.pop(previous, None)
        self.reverse[pbn] = group
        return previous

    def remove(self, group: int) -> Optional[int]:
        previous = self.inner.remove(group)
        if previous is not None:
            self._log.append(RecordKind.REMOVE_BLOCK, group, previous)
            self.reverse.pop(previous, None)
        return previous

    def group_of(self, pbn: int) -> Optional[int]:
        return self.reverse.get(pbn)

    def rebuild_reverse(self) -> None:
        """Regenerate the reverse index after recovery replay."""
        self.reverse = {pbn: group for group, pbn in self.inner.items()}

    def __contains__(self, group: int) -> bool:
        return group in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def items(self) -> Iterator[Tuple[int, int]]:
        return self.inner.items()

    def memory_bytes(self) -> int:
        return self.inner.memory_bytes()


class CacheFTL(HybridFTL):
    """Hybrid FTL specialized for caching (sparse, logging, eviction)."""

    def __init__(
        self,
        chip: FlashChip,
        oplog: OperationLog,
        config: Optional[CacheFTLConfig] = None,
    ):
        # Deliberately not calling HybridFTL.__init__: the SSC has no
        # fixed logical capacity, so the layout differs; the merge and
        # log-write machinery is inherited unchanged.
        self.chip = chip
        self.config = config or CacheFTLConfig()
        self.oplog = oplog
        self.stats = FTLStats()
        geometry = chip.geometry

        total = geometry.total_blocks
        self.pages_per_block = geometry.pages_per_block
        self.log_blocks_target = max(1, int(total * self.config.log_fraction))
        if self.config.policy is EvictionPolicy.MERGE:
            self.max_log_blocks = max(
                self.log_blocks_target, int(total * self.config.max_log_fraction)
            )
        else:
            self.max_log_blocks = self.log_blocks_target
        if total <= self.max_log_blocks + self.config.spare_blocks:
            raise ConfigError("chip too small for log pool + spare blocks")

        self.data_map = LoggedBlockMap(chip, oplog, self.pages_per_block)
        self.log_map = LoggedPageMap(chip, oplog)
        self._log_blocks = deque()
        self._active_log: Optional[EraseBlock] = None
        self._seq_log: Optional[EraseBlock] = None
        self._seq_next_lpn: Optional[int] = None
        self._last_lpn: Optional[int] = None
        self._gc_protected: set = set()
        self.wear = WearLeveler(chip, self.config.wear)
        self._allocate_hot = False
        # Eviction cost incurred inside block allocation (mid-merge) is
        # parked here and drained into the enclosing operation's cost.
        self._pending_cost = 0.0

    # ------------------------------------------------------------------
    # Sparse address space: any non-negative disk block number is legal.
    # ------------------------------------------------------------------

    def _check_lpn(self, lpn: int) -> None:
        if lpn < 0:
            raise InvalidAddressError(f"logical block {lpn} is negative")

    def write(self, lpn: int, data, dirty: bool = False) -> float:
        cost = super().write(lpn, data, dirty=dirty)
        return cost + self._drain_pending()

    def trim(self, lpn: int) -> float:
        cost = super().trim(lpn)
        return cost + self._drain_pending()

    def _drain_pending(self) -> float:
        pending, self._pending_cost = self._pending_cost, 0.0
        return pending

    def _pre_erase_barrier(self) -> float:
        """Flush the operation log before any erase (write-ahead rule).

        Mapping records superseding pages in the doomed block may still
        sit in the volatile buffer; erasing first would let a crash
        recover durable mappings that reference erased — and possibly
        since-reused — flash.  Forcing the log makes the supersession
        durable before the data is destroyed.
        """
        return self.oplog.flush(sync=True)

    # ------------------------------------------------------------------
    # Allocation: merges in a sparse address space can consume blocks
    # faster than they free them (most groups have no old data block to
    # erase), so allocation itself may have to evict.
    # ------------------------------------------------------------------

    def _allocate_block(self, kind: BlockKind) -> EraseBlock:
        if self.free_blocks() < 2:
            self._pending_cost += self._silent_evict(2)
        if self.free_blocks() == 0:
            raise CacheFullError(
                "cache is full of dirty or in-flight data; the cache "
                "manager must issue clean or evict before writing more"
            )
        return super()._allocate_block(kind)

    # ------------------------------------------------------------------
    # Invalidation must be journaled even for block-mapped pages, which
    # mutate no forward map (the paper persists this via OOB updates).
    # ------------------------------------------------------------------

    def _retire_block_copy(self, lpn: int, pbn: int) -> None:
        offset = self._offset_of(lpn)
        page = self.chip.block(pbn).pages[offset]
        if page.state is PageState.VALID:
            self.chip.block(pbn).invalidate(offset)
            self.oplog.append(
                RecordKind.INVALIDATE_PAGE,
                lpn,
                self.chip.geometry.make_ppn(pbn, offset),
            )

    def _invalidate(self, lpn: int) -> float:
        # Retire BOTH map levels: a recovered mapping may reference the
        # same logical block through the page map and a block entry at
        # once (e.g. after replaying a stale checkpoint), and leaving
        # either copy live would resurrect the block after an evict.
        ppn = self.log_map.lookup(lpn)
        if ppn is not None:
            self.log_map.remove(lpn)  # journals REMOVE_PAGE
            pbn = self.chip.geometry.ppn_to_pbn(ppn)
            self.chip.block(pbn).invalidate(self.chip.geometry.ppn_to_offset(ppn))
        pbn = self.data_map.lookup(self._group_of(lpn))
        if pbn is not None:
            offset = self._offset_of(lpn)
            page = self.chip.block(pbn).pages[offset]
            if page.state is PageState.VALID:
                self.chip.block(pbn).invalidate(offset)
                self.oplog.append(
                    RecordKind.INVALIDATE_PAGE,
                    lpn,
                    self.chip.geometry.make_ppn(pbn, offset),
                )
        return 0.0

    # ------------------------------------------------------------------
    # Free-space management: silent eviction before copy-based GC.
    # ------------------------------------------------------------------

    def _open_log_block(self) -> float:
        cost = self.ensure_headroom()
        if (
            self.config.policy is EvictionPolicy.MERGE
            and len(self._log_blocks) >= self.log_blocks_target
            and self.log_blocks_target < self.max_log_blocks
            and self.free_blocks() > self.config.spare_blocks + 1
        ):
            # SE-Merge: grow the log pool instead of merging (paper §4.3:
            # "allows the number of log blocks to increase, which reduces
            # garbage collection costs").
            self.log_blocks_target += 1

        # Recycle log blocks once the pool is at target.
        while len(self._log_blocks) >= self.log_blocks_target:
            cost += self._merge_victim_log_block()
            cost += self.ensure_headroom()

        # Fallback GC (§4.3: "If there are not enough candidate blocks to
        # provide free space, it reverts to regular garbage collection"):
        # silent eviction found no clean victim, so merge remaining log
        # blocks in the hope of freeing mostly-invalid ones.
        guard = 0
        while self.free_blocks() <= 1 and (self._log_blocks or self._seq_log):
            cost += self._merge_victim_log_block()
            guard += 1
            if guard > self.chip.geometry.total_blocks:  # pragma: no cover
                raise CacheFullError("garbage collection cannot make progress")
        if self.free_blocks() == 0:
            raise CacheFullError(
                "cache is full of dirty data; the cache manager must "
                "issue clean or evict before writing more"
            )
        block = self._allocate_block(BlockKind.LOG)
        self._log_blocks.append(block.pbn)
        self._active_log = block
        return cost

    def ensure_headroom(self) -> float:
        """Run silent eviction if the free pool is at or below the floor."""
        if self.free_blocks() > self.config.spare_blocks:
            return 0.0
        return self._silent_evict(self.config.spare_blocks + self.config.evict_batch)

    def _pick_eviction_victims(self, limit: int):
        """Clean data blocks, lowest utilization first (SE victim policy).

        The collector prefers the plane under the most free-space
        pressure; if it has no clean candidates, all planes are
        considered.
        """
        def candidates_in(blocks):
            return [
                block
                for block in blocks
                if block.kind is BlockKind.DATA
                and block.dirty_count == 0
                and block.pbn not in self._gc_protected
                and self.data_map.group_of(block.pbn) is not None
            ]

        plane = min(self.chip.planes, key=lambda plane: plane.free_count)
        pool = candidates_in(plane.blocks.values())
        if not pool:
            pool = candidates_in(
                block
                for chip_plane in self.chip.planes
                for block in chip_plane.blocks.values()
            )
        # Heap selection of the ``limit`` least-utilized victims: same
        # (valid_count, pbn) order as a full sort, without sorting the
        # whole candidate pool every eviction round.
        return heapq.nsmallest(
            limit, pool, key=lambda block: (block.valid_count, block.pbn)
        )

    def _silent_evict(self, min_free: int) -> float:
        """Evict clean data blocks until ``min_free`` blocks are free.

        Returns the accumulated cost.  Stops early (without raising) if
        no clean victim remains; callers fall back to copy-based GC.
        """
        cost = 0.0
        evicted_any = False
        while self.free_blocks() < min_free:
            victims = self._pick_eviction_victims(self.config.evict_batch)
            if not victims:
                break
            for victim in victims:
                cost += self._evict_block(victim)
            evicted_any = True
        if evicted_any:
            # Eviction churn concentrates erases; give static wear
            # leveling a chance to rotate cold blocks too.
            cost += self._maybe_static_relocation()
        return cost

    def _evict_block(self, victim: EraseBlock) -> float:
        """Silently evict one clean data block: drop mappings, erase."""
        group = self.data_map.group_of(victim.pbn)
        evicted = victim.valid_count
        if group is not None:
            self.data_map.remove(group)  # journals REMOVE_BLOCK
        for offset in victim.valid_offsets():
            victim.invalidate(offset)
        cost = self._erase(victim.pbn)
        self.stats.silent_evictions += 1
        self.stats.evicted_valid_pages += evicted
        if self.tracer is not None:
            self.tracer.emit(
                "evict.silent", lane="gc", dur_us=cost,
                pbn=victim.pbn, group=group if group is not None else -1,
                valid_pages=evicted,
            )
        return cost

    # ------------------------------------------------------------------
    # Background garbage collection (paper §5: silent eviction is
    # integrated "with background and foreground garbage collection")
    # ------------------------------------------------------------------

    def background_step(self) -> float:
        """One idle-time increment: evict ahead of demand, else merge."""
        headroom = self.config.spare_blocks + self.config.evict_batch
        if self.free_blocks() <= headroom:
            cost = self._silent_evict(headroom + 1)
            if cost:
                return cost
        if (
            len(self._log_blocks) >= max(1, self.log_blocks_target // 2)
            and self.free_blocks() > self.config.spare_blocks
        ):
            return self._merge_victim_log_block()
        return 0.0

    # ------------------------------------------------------------------
    # Cache-interface helpers used by the device layer
    # ------------------------------------------------------------------

    def _group_of_data_block(self, pbn: int) -> Optional[int]:
        return self.data_map.group_of(pbn)

    def current_location(self, lbn: int) -> Optional[Tuple[int, int, int]]:
        """Return (pbn, offset, ppn) of ``lbn``'s live flash copy, or None."""
        ppn = self.log_map.lookup(lbn)
        if ppn is None:
            pbn = self.data_map.lookup(self._group_of(lbn))
            if pbn is None:
                return None
            offset = self._offset_of(lbn)
            if self.chip.block(pbn).pages[offset].state is not PageState.VALID:
                return None
            ppn = self.chip.geometry.make_ppn(pbn, offset)
        pbn = self.chip.geometry.ppn_to_pbn(ppn)
        offset = self.chip.geometry.ppn_to_offset(ppn)
        if self.chip.block(pbn).pages[offset].state is not PageState.VALID:
            return None
        return pbn, offset, ppn

    def is_dirty(self, lbn: int) -> bool:
        """True if ``lbn`` is cached and its newest copy is dirty."""
        location = self.current_location(lbn)
        if location is None:
            return False
        pbn, offset, _ppn = location
        page = self.chip.block(pbn).pages[offset]
        return bool(page.oob is not None and page.oob.dirty)

    def set_clean(self, lbn: int) -> bool:
        """Clear the dirty flag on ``lbn``'s flash copy; True if present."""
        location = self.current_location(lbn)
        if location is None:
            return False
        pbn, offset, _ppn = location
        self.chip.block(pbn).mark_clean(offset)
        return True

    def cached_blocks(self) -> int:
        """Number of logical blocks currently readable from the cache."""
        count = len(self.log_map)
        for _group, pbn in self.data_map.items():
            count += self.chip.block(pbn).valid_count
        return count

    def iter_cached_lbns(self) -> Iterator[int]:
        """Yield every logical block currently present (tests/recovery)."""
        for lbn, _ppn in self.log_map.items():
            yield lbn
        for group, pbn in self.data_map.items():
            base = group * self.pages_per_block
            block = self.chip.block(pbn)
            for offset, page in enumerate(block.pages):
                if page.state is PageState.VALID:
                    yield base + offset

    def device_memory_bytes(self) -> int:
        """Modeled device DRAM (Table 4).

        The page-mapped region's memory is *provisioned* for the maximum
        log pool (the paper: SSC-R "must reserve memory capacity for the
        maximum fraction at page level"); the sparse block map is charged
        at actual occupancy, plus the 8-byte per-entry dirty bitmap.
        """
        from repro.ftl.mapping import ENTRY_BYTES
        from repro.ssc.sparse_map import GROUP_OVERHEAD_BYTES, DEFAULT_GROUP_SIZE

        provisioned_entries = self.max_log_blocks * self.pages_per_block
        per_entry_overhead = (
            DEFAULT_GROUP_SIZE // 8 + GROUP_OVERHEAD_BYTES
        ) / DEFAULT_GROUP_SIZE
        page_bytes = int(provisioned_entries * (ENTRY_BYTES + per_entry_overhead))
        page_bytes = max(page_bytes, self.log_map.memory_bytes())
        block_bytes = self.data_map.memory_bytes() + len(self.data_map) * 8
        return page_bytes + block_bytes
