"""The solid-state cache device: the paper's six-operation interface.

    write-dirty  Insert new block or update existing block with dirty data.
    write-clean  Insert new block or update existing block with clean data.
    read         Read block if present or return error.
    evict        Evict block immediately.
    clean        Allow future eviction of block.
    exists       Test for presence of dirty blocks.

Durability contract (paper §4.2.1/§5 and the three guarantees of §3.5):

* ``write-dirty`` and ``evict`` are synchronous: their mapping changes
  are durable before the call returns.
* ``write-clean`` may be buffered; if power fails first, the effect is
  as if the block had been silently evicted.  If the write *replaces*
  existing data at the same address, the mapping change is made durable
  before completion so a read can never return the stale version.
* ``clean`` is asynchronous; after a crash, cleaned blocks may revert
  to dirty.
* Any operation whose garbage collection erased a block flushes the log
  before returning, so durable state never references erased flash.

Every data-path operation returns its service time as a
:class:`~repro.sim.completion.Completion` — a ``float`` subclass whose
value is the latency in microseconds (legacy callers that sum costs are
unaffected) and whose ``ops`` tuple attributes the time to the flash
planes it occupied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ConfigError, CrashError, NotPresentError, RecoveryError
from repro.flash.chip import FlashChip
from repro.sim.completion import Completion
from repro.sim.crash import CrashInjector
from repro.flash.page import PageState
from repro.ftl.wear import WearConfig
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import TimingModel
from repro.ssc import recovery as recovery_mod
from repro.ssc.checkpoint import Checkpoint, CheckpointStore
from repro.ssc.engine import CacheFTL, CacheFTLConfig, EvictionPolicy
from repro.ssc.log import (
    NullOperationLog,
    NvramOperationLog,
    OperationLog,
    RecordKind,
)


@dataclass(frozen=True)
class SSCConfig:
    """Device configuration.

    ``clean_durability`` selects the write-clean contract:

    * ``"replace-sync"`` (default, §4.2.1): buffered unless the write
      replaces existing data.
    * ``"sync"``: always synchronous (the FlashTier-C/D line of Fig. 4).
    * ``"buffered"``: always buffered (the FlashTier-D line of Fig. 4).

    ``consistency=False`` disables logging and checkpointing entirely
    (the no-consistency baseline of Fig. 4 and the configuration used
    for the garbage-collection experiments of Fig. 6 / Table 5).
    """

    policy: EvictionPolicy = EvictionPolicy.UTIL
    consistency: bool = True
    clean_durability: str = "replace-sync"
    group_commit_ops: int = 10_000
    checkpoint_log_ratio: float = 2.0 / 3.0
    checkpoint_interval_writes: int = 1_000_000
    log_fraction: float = 0.07
    max_log_fraction: float = 0.20
    spare_blocks: int = 8
    sequential_log: bool = True
    evict_batch: int = 4
    wear: WearConfig = WearConfig()
    nvram: bool = False

    def __post_init__(self):
        if self.clean_durability not in ("replace-sync", "sync", "buffered"):
            raise ConfigError(
                "clean_durability must be replace-sync, sync or buffered"
            )
        if self.group_commit_ops < 1:
            raise ConfigError("group_commit_ops must be >= 1")
        if not 0.0 < self.checkpoint_log_ratio <= 10.0:
            raise ConfigError("checkpoint_log_ratio must be in (0, 10]")
        if self.checkpoint_interval_writes < 1:
            raise ConfigError("checkpoint_interval_writes must be >= 1")

    def engine_config(self) -> CacheFTLConfig:
        return CacheFTLConfig(
            policy=self.policy,
            log_fraction=self.log_fraction,
            max_log_fraction=self.max_log_fraction,
            spare_blocks=self.spare_blocks,
            sequential_log=self.sequential_log,
            evict_batch=self.evict_batch,
            wear=self.wear,
        )


class SolidStateCache:
    """A flash cache device exposing the SSC interface."""

    #: Optional trace bus (repro.obs); None keeps operations zero-cost.
    tracer = None

    def __init__(
        self,
        geometry: Optional[FlashGeometry] = None,
        timing: Optional[TimingModel] = None,
        config: Optional[SSCConfig] = None,
        name: str = "",
    ):
        self.config = config or SSCConfig()
        self.name = name
        self.chip = FlashChip(geometry, timing)
        geometry = self.chip.geometry
        if not self.config.consistency:
            log_cls = NullOperationLog
        elif self.config.nvram:
            log_cls = NvramOperationLog
        else:
            log_cls = OperationLog
        self.oplog = log_cls(
            self.chip.timing, geometry.page_size, geometry.pages_per_block,
            name=f"{name}/log" if name else "",
        )
        self.engine = CacheFTL(self.chip, self.oplog, self.config.engine_config())
        self.checkpoints = CheckpointStore(
            self.chip.timing, geometry.page_size, geometry.pages_per_block,
            name=f"{name}/checkpoint" if name else "",
        )
        self._writes_since_checkpoint = 0
        self._crashed = False
        # Fault-injection hook (crash-state explorer) and the count of
        # damaged log records the last recovery discarded.
        self.injector: Optional[CrashInjector] = None
        self.last_recovery_discarded = 0

    def set_name(self, name: str) -> None:
        """Label this device and its durable stores (array shards)."""
        self.name = name
        self.oplog.name = f"{name}/log" if name else ""
        self.checkpoints.name = f"{name}/checkpoint" if name else ""

    def attach_injector(self, injector: CrashInjector) -> None:
        """Wire a crash injector into every durability boundary.

        After this, any armed tick inside the chip, the operation log or
        the checkpoint store raises :class:`CrashError` through the
        in-flight operation; the device transitions to the crashed state
        (volatile log buffer lost) exactly as a power failure would.
        """
        self.injector = injector
        self.chip.crash_injector = injector
        self.oplog.injector = injector
        self.checkpoints.injector = injector

    @classmethod
    def ssc(cls, geometry: Optional[FlashGeometry] = None, **overrides) -> "SolidStateCache":
        """The paper's *SSC* configuration: SE-Util, fixed 7 % log pool."""
        return cls(geometry, config=SSCConfig(policy=EvictionPolicy.UTIL, **overrides))

    @classmethod
    def ssc_r(cls, geometry: Optional[FlashGeometry] = None, **overrides) -> "SolidStateCache":
        """The paper's *SSC-R*: SE-Merge, log pool growable to 20 %."""
        return cls(geometry, config=SSCConfig(policy=EvictionPolicy.MERGE, **overrides))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stats(self):
        return self.engine.stats

    @property
    def capacity_pages(self) -> int:
        """Raw page capacity (an SSC does not promise a logical size)."""
        return self.chip.geometry.total_pages

    def cached_blocks(self) -> int:
        return self.engine.cached_blocks()

    def contains(self, lbn: int) -> bool:
        """Presence test without device latency (host-side debugging)."""
        return self.engine.current_location(lbn) is not None

    def is_dirty(self, lbn: int) -> bool:
        return self.engine.is_dirty(lbn)

    def device_memory_bytes(self) -> int:
        return self.engine.device_memory_bytes()

    # ------------------------------------------------------------------
    # The six-operation interface
    # ------------------------------------------------------------------

    def _capture(
        self, body: Callable[[], float], hit: Optional[bool] = None
    ) -> Completion:
        """Run ``body`` under an op capture; wrap its cost in a
        :class:`Completion`.  The recorder is looked up per call because
        a cache manager may re-point ``chip.op_recorder`` at its own
        shared recorder."""
        recorder = self.chip.op_recorder
        mark = recorder.begin()
        try:
            cost = body()
        except CrashError:
            recorder.end(mark)
            self.crash()
            raise
        except BaseException:
            recorder.end(mark)
            raise
        return Completion(cost, recorder.end(mark), hit=hit)

    def read(self, lbn: int) -> Tuple[Any, Completion]:
        """Read ``lbn``; raises :class:`NotPresentError` if absent."""
        self._check_alive()
        location = self.engine.current_location(lbn)
        if location is None:
            raise NotPresentError(lbn)
        self.engine.stats.user_reads += 1
        _pbn, _offset, ppn = location
        result: List[Any] = []

        def body() -> float:
            data, _oob, cost = self.chip.read_page(ppn)
            result.append(data)
            return cost

        completion = self._capture(body, hit=True)
        return result[0], completion

    def write_dirty(self, lbn: int, data: Any) -> Completion:
        """Write ``lbn`` as dirty; durable (data + mapping) on return."""
        self._check_alive()
        return self._capture(
            lambda: self._guarded_write(lbn, data, dirty=True, sync=True)
        )

    def write_clean(self, lbn: int, data: Any) -> Completion:
        """Write ``lbn`` as clean; buffering per ``clean_durability``."""
        self._check_alive()
        mode = self.config.clean_durability
        if mode == "sync":
            sync = True
        elif mode == "buffered":
            sync = False
        else:
            sync = self.engine.current_location(lbn) is not None
        return self._capture(
            lambda: self._guarded_write(lbn, data, dirty=False, sync=sync)
        )

    def evict(self, lbn: int) -> Completion:
        """Force ``lbn`` out of the cache; durable on return."""
        self._check_alive()

        def body() -> float:
            erases_before = self.chip.stats.block_erases
            cost = self.engine.trim(lbn)
            return cost + self._finish_op(sync=True, erases_before=erases_before)

        return self._capture(body)

    def clean(self, lbn: int) -> Completion:
        """Mark ``lbn`` clean so the SSC may silently evict it later.

        Asynchronous: after a crash the block may revert to dirty.
        No-op if the block is absent.
        """
        self._check_alive()

        def body() -> float:
            if self.engine.set_clean(lbn):
                self.oplog.append(RecordKind.CLEAN, lbn)
            return self._finish_op(
                sync=False, erases_before=self.chip.stats.block_erases
            )

        return self._capture(body)

    def exists(self, start_lbn: int, end_lbn: int) -> Tuple[List[int], float]:
        """Return the dirty blocks within [start_lbn, end_lbn).

        Served entirely from device memory (paper: "the operation does
        not have to scan flash"), so it costs only the control delay.
        """
        self._check_alive()
        dirty: List[int] = []
        for lbn, ppn in self.engine.log_map.items():
            if start_lbn <= lbn < end_lbn:
                page = self.chip.page(ppn)
                if page.oob is not None and page.oob.dirty:
                    dirty.append(lbn)
        pages_per_block = self.engine.pages_per_block
        for group, pbn in self.engine.data_map.items():
            base = group * pages_per_block
            if base + pages_per_block <= start_lbn or base >= end_lbn:
                continue
            block = self.chip.block(pbn)
            for offset, page in enumerate(block.pages):
                lbn = base + offset
                if not start_lbn <= lbn < end_lbn:
                    continue
                if (
                    page.state is PageState.VALID
                    and page.oob is not None
                    and page.oob.dirty
                ):
                    dirty.append(lbn)
        dirty.sort()
        return dirty, self.chip.timing.control_delay_us

    def exists_detailed(self, start_lbn: int, end_lbn: int) -> Tuple[
        List[Tuple[int, bool, int]], float
    ]:
        """Per-block metadata for cached blocks in [start_lbn, end_lbn).

        Returns (lbn, dirty, write_seq) triples — the extension §4.2.1
        sketches: "it could be extended to return additional per-block
        metadata, such as access time or frequency, to help manage
        cache contents."  ``write_seq`` is the device's monotonic write
        stamp, a proxy for age the manager can use for LRU decisions.
        """
        self._check_alive()
        entries: List[Tuple[int, bool, int]] = []
        for lbn in self.engine.iter_cached_lbns():
            if not start_lbn <= lbn < end_lbn:
                continue
            location = self.engine.current_location(lbn)
            if location is None:
                continue
            page = self.chip.page(location[2])
            dirty = bool(page.oob is not None and page.oob.dirty)
            seq = page.oob.seq if page.oob is not None else 0
            entries.append((lbn, dirty, seq))
        entries.sort()
        return entries, self.chip.timing.control_delay_us

    # ------------------------------------------------------------------
    # Consistency plumbing
    # ------------------------------------------------------------------

    def _guarded_write(self, lbn: int, data: Any, dirty: bool, sync: bool) -> float:
        erases_before = self.chip.stats.block_erases
        cost = self.engine.write(lbn, data, dirty=dirty)
        self._writes_since_checkpoint += 1
        return cost + self._finish_op(sync=sync, erases_before=erases_before)

    def _finish_op(self, sync: bool, erases_before: int) -> float:
        """Apply the log-flush and checkpoint policy after an operation."""
        if not self.oplog.enabled:
            return 0.0
        cost = 0.0
        erased = self.chip.stats.block_erases > erases_before
        if sync or erased:
            cost += self.oplog.flush(sync=True)
        elif self.oplog.pending() >= self.config.group_commit_ops:
            cost += self.oplog.flush(sync=False)
        cost += self._maybe_checkpoint()
        if cost:
            self.engine.stats.meta_page_writes = (
                self.oplog.pages_written + self.checkpoints.pages_written
            )
        return cost

    def _maybe_checkpoint(self) -> float:
        """Checkpoint when the log outgrows the last checkpoint (§6.4:
        "if the log size exceeds two-thirds of the checkpoint size or
        after 1 million writes, whichever occurs earlier")."""
        latest = self.checkpoints.latest()
        base_bytes = latest.size_bytes() if latest is not None else self._snapshot_bytes()
        due = (
            self.oplog.flushed_bytes > self.config.checkpoint_log_ratio * base_bytes
            or self._writes_since_checkpoint >= self.config.checkpoint_interval_writes
        )
        if not due:
            return 0.0
        return self.checkpoint_now()

    def _snapshot_bytes(self) -> int:
        from repro.ssc.checkpoint import (
            BLOCK_ENTRY_BYTES,
            HEADER_BYTES,
            PAGE_ENTRY_BYTES,
        )

        return (
            HEADER_BYTES
            + len(self.engine.log_map) * PAGE_ENTRY_BYTES
            + len(self.engine.data_map) * BLOCK_ENTRY_BYTES
        )

    def checkpoint_now(self) -> float:
        """Write a checkpoint of the forward maps and truncate the log."""
        if not self.oplog.enabled:
            return 0.0
        if self.tracer is not None:
            self.tracer.emit(
                "checkpoint.begin", lane=self.checkpoints.name or "checkpoint",
                seq=self.oplog.last_seq,
            )
        try:
            cost = self.oplog.flush(sync=True)
            seq = self.oplog.last_flushed_seq
            checkpoint = Checkpoint(
                seq=seq,
                page_entries=self._page_entries_snapshot(),
                block_entries=self._block_entries_snapshot(),
            )
            cost += self.checkpoints.write(checkpoint)
        except CrashError:
            self.crash()
            raise
        cost += self.oplog.truncate_through(seq)
        self._writes_since_checkpoint = 0
        return cost

    def _page_entries_snapshot(self) -> List[Tuple[int, int, bool]]:
        entries = []
        for lbn, ppn in self.engine.log_map.items():
            page = self.chip.page(ppn)
            dirty = bool(page.oob is not None and page.oob.dirty)
            entries.append((lbn, ppn, dirty))
        return entries

    def _block_entries_snapshot(self) -> List[Tuple[int, int, int, int]]:
        entries = []
        for group, pbn in self.engine.data_map.items():
            packed = self.engine.data_map._state_bitmaps(pbn)
            dirty_bitmap = packed & ((1 << 64) - 1)
            valid_bitmap = packed >> 64
            entries.append((group, pbn, dirty_bitmap, valid_bitmap))
        return entries

    # ------------------------------------------------------------------
    # Crash and recovery
    # ------------------------------------------------------------------

    def background_collect(self, budget_us: float) -> float:
        """Spend up to ``budget_us`` of idle time on garbage collection.

        Evicts and merges ahead of demand so foreground writes find
        free blocks waiting (§5 integrates silent eviction with
        background collection).  Returns the simulated time actually
        consumed; stops early when there is nothing useful to do.
        """
        self._check_alive()
        if budget_us < 0:
            raise ConfigError("budget_us must be >= 0")
        spent = 0.0
        erases_before = self.chip.stats.block_erases
        try:
            while spent < budget_us:
                step = self.engine.background_step()
                if step == 0.0:
                    break
                spent += step
            spent += self._finish_op(sync=False, erases_before=erases_before)
        except CrashError:
            self.crash()
            raise
        return spent

    def shutdown(self) -> float:
        """Clean shutdown: flush the log and checkpoint the mapping.

        A cache restarted after this recovers with a minimal log replay
        — the warm-restart path that makes persistent caching pay off
        (§2: filling a 100 GB cache from a 500 IOPS disk takes 14 hours;
        reloading a checkpoint takes seconds).
        """
        if not self.oplog.enabled:
            return 0.0
        return self.checkpoint_now()

    def crash(self) -> int:
        """Simulate a power failure: volatile state is lost.

        Returns the number of buffered log records that were lost
        (always zero for an NVRAM-backed log).  Flash contents, flushed
        log records and checkpoints survive.
        """
        lost = self.oplog.drop_buffer()
        self._crashed = True
        return lost

    def recover(self) -> float:
        """Roll-forward recovery; returns the simulated recovery time.

        Requires ``consistency=True`` — a device that never persisted
        its mapping has nothing to recover and must be reset instead.
        Delegates to :func:`repro.ssc.recovery.recover_device`, the
        per-device entry point a sharded array invokes once per shard.
        """
        return recovery_mod.recover_device(self)

    def _check_alive(self) -> None:
        if self._crashed:
            raise RecoveryError("device crashed; call recover() first")

    def __repr__(self) -> str:
        policy = self.config.policy.name
        label = f"{self.name!r}, " if self.name else ""
        return (
            f"SolidStateCache({label}policy={policy}, "
            f"cached={self.engine.cached_blocks()} blocks)"
        )
