"""Cache-manager interface and shared statistics."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Tuple


@dataclass
class ManagerStats:
    """Hit/miss accounting at the cache-manager level."""

    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    read_misses: int = 0
    writebacks: int = 0       # dirty blocks written back to disk
    cleans: int = 0           # clean commands issued (FlashTier WB)
    evictions: int = 0        # manager-initiated evictions
    metadata_writes: int = 0  # persisted metadata updates (native WB)

    def miss_rate(self) -> float:
        """Read miss rate in percent."""
        lookups = self.read_hits + self.read_misses
        return 100.0 * self.read_misses / lookups if lookups else 0.0


class CacheManager(ABC):
    """A block-layer cache manager over a cache device and a disk.

    ``read``/``write`` return the simulated service latency in
    microseconds; data integrity is the manager's responsibility (a read
    must always return the newest written data, wherever it lives).
    """

    def __init__(self):
        self.stats = ManagerStats()

    @abstractmethod
    def read(self, lbn: int) -> Tuple[Any, float]:
        """Read disk block ``lbn``; returns (data, latency_us)."""

    @abstractmethod
    def write(self, lbn: int, data: Any) -> float:
        """Write disk block ``lbn``; returns latency_us."""

    @abstractmethod
    def host_memory_bytes(self) -> int:
        """Modeled host DRAM the manager needs for per-block state."""

    def flush_dirty(self) -> float:
        """Write every dirty cached block back to disk (clean shutdown)."""
        return 0.0
