"""Cache-manager interface and shared statistics.

``read``/``write`` return a :class:`~repro.sim.completion.Completion` —
a ``float`` subclass whose value is the request's simulated service
latency in microseconds, carrying the structured operation trace the
event-driven replay engine schedules onto flash planes and the disk.
Legacy call sites that treat the return value as a bare float keep
working unchanged.

Subclasses implement ``_read_impl``/``_write_impl`` (the old
float-returning bodies); the base class brackets them with an op
capture across the manager's devices and wraps the result.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.sim.completion import Completion, OpRecorder


@dataclass
class ManagerStats:
    """Hit/miss accounting at the cache-manager level."""

    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    read_misses: int = 0
    writebacks: int = 0       # dirty blocks written back to disk
    cleans: int = 0           # clean commands issued (FlashTier WB)
    evictions: int = 0        # manager-initiated evictions
    metadata_writes: int = 0  # persisted metadata updates (native WB)

    def miss_rate(self) -> float:
        """Read miss rate in percent."""
        lookups = self.read_hits + self.read_misses
        return 100.0 * self.read_misses / lookups if lookups else 0.0

    def merge(self, other: "ManagerStats") -> "ManagerStats":
        """Return self + other, field-wise.

        Aggregates per-shard (or per-manager) hit/miss accounting into
        one array-level view; ``miss_rate`` is then the rate over the
        combined request stream.  Commutative and associative, with
        ``ManagerStats()`` as the unit.
        """
        return ManagerStats(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name in vars(self)
            }
        )


class CacheManager(ABC):
    """A block-layer cache manager over a cache device and a disk.

    ``read``/``write`` return the simulated service time as a
    :class:`Completion`; data integrity is the manager's responsibility
    (a read must always return the newest written data, wherever it
    lives).
    """

    #: Optional trace bus (repro.obs), read by the replay loops for
    #: op.issue/op.device emissions; None keeps replay zero-cost.
    tracer = None

    def __init__(self):
        self.stats = ManagerStats()
        self._recorder = OpRecorder()

    def _attach_devices(self, *devices: Any) -> None:
        """Share this manager's op recorder with its devices.

        Every object owning timed operations (the flash chip, the disk)
        records into one recorder, so a request's operation trace comes
        back in execution order across both tiers.
        """
        for device in devices:
            device.op_recorder = self._recorder

    # ------------------------------------------------------------------
    # Public interface: capture-bracketed templates
    # ------------------------------------------------------------------

    def read(self, lbn: int) -> Tuple[Any, Completion]:
        """Read disk block ``lbn``; returns (data, completion)."""
        mark = self._recorder.begin()
        try:
            data, cost, hit = self._read_impl(lbn)
        except BaseException:
            self._recorder.end(mark)
            raise
        return data, Completion(cost, self._recorder.end(mark), hit=hit)

    def write(self, lbn: int, data: Any) -> Completion:
        """Write disk block ``lbn``; returns the completion."""
        mark = self._recorder.begin()
        try:
            cost = self._write_impl(lbn, data)
        except BaseException:
            self._recorder.end(mark)
            raise
        return Completion(cost, self._recorder.end(mark))

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------

    @abstractmethod
    def _read_impl(self, lbn: int) -> Tuple[Any, float, Optional[bool]]:
        """Serve a read; returns (data, latency_us, cache_hit)."""

    @abstractmethod
    def _write_impl(self, lbn: int, data: Any) -> float:
        """Serve a write; returns latency_us."""

    @abstractmethod
    def host_memory_bytes(self) -> int:
        """Modeled host DRAM the manager needs for per-block state."""

    def flush_dirty(self) -> float:
        """Write every dirty cached block back to disk (clean shutdown)."""
        return 0.0
