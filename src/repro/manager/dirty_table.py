"""The write-back manager's dirty-block table.

Paper §4.4: "The dirty-block table is stored as a linear hash table
containing metadata about each dirty block.  The metadata consists of an
8-byte associated disk block number, an optional 8-byte checksum, two
2-byte indexes to the previous and next blocks in the LRU cache
replacement list, and a 2-byte block state, for a total of 14-22 bytes."

FlashTier's write-back manager tracks *only dirty* blocks here (clean
blocks need no host state at all), which is where the 89 % host-memory
reduction over the native manager comes from.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.util.checksum import crc32_of
from repro.util.lru import LRUList

#: Modeled bytes per entry (the paper's upper figure, with checksum).
ENTRY_BYTES = 22


class DirtyBlockTable:
    """Host-side table of dirty cached blocks with LRU ordering."""

    def __init__(self, with_checksums: bool = True):
        self.with_checksums = with_checksums
        self._entries: Dict[int, int] = {}  # lbn -> checksum (or 0)
        self._lru = LRUList()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, lbn: int) -> bool:
        return lbn in self._entries

    def add(self, lbn: int, data=None) -> None:
        """Record ``lbn`` as dirty (most recently used)."""
        self._entries[lbn] = crc32_of(repr(data)) if self.with_checksums else 0
        self._lru.touch(lbn)

    def checksum_matches(self, lbn: int, data) -> bool:
        """Verify ``data`` against the checksum recorded at write time.

        Always True when checksums are disabled or the block untracked.
        """
        if not self.with_checksums or lbn not in self._entries:
            return True
        return self._entries[lbn] == crc32_of(repr(data))

    def touch(self, lbn: int) -> None:
        """Refresh LRU position of ``lbn`` if tracked."""
        if lbn in self._entries:
            self._lru.touch(lbn)

    def remove(self, lbn: int) -> bool:
        """Drop ``lbn`` (after cleaning it); True if it was tracked."""
        if self._entries.pop(lbn, None) is None:
            return False
        self._lru.remove(lbn)
        return True

    def lru_block(self) -> Optional[int]:
        """Least-recently-used dirty block, or None."""
        return self._lru.lru()

    def contiguous_run(self, lbn: int, limit: int = 32) -> List[int]:
        """Dirty blocks forming a contiguous run around ``lbn``.

        The write-back manager "prioritizes cleaning of contiguous dirty
        blocks, which can be merged together for writing to disk"
        (§4.4): returning the whole run lets the caller issue one
        sequential disk write.
        """
        run = [lbn]
        left = lbn - 1
        while left in self._entries and len(run) < limit:
            run.insert(0, left)
            left -= 1
        right = lbn + 1
        while right in self._entries and len(run) < limit:
            run.append(right)
            right += 1
        return run

    def iter_lru(self) -> Iterator[int]:
        """Dirty blocks from least to most recently used."""
        return self._lru.iter_lru_to_mru()

    def memory_bytes(self) -> int:
        """Modeled host memory (22 bytes per dirty block)."""
        return len(self._entries) * ENTRY_BYTES

    def clear(self) -> None:
        self._entries.clear()
        self._lru.clear()
