"""Cache managers: the OS block-layer software above the cache device.

Three managers mirror the paper's evaluation systems:

* :class:`NativeCacheManager` — the baseline, modeled on Facebook's
  FlashCache: caches on a conventional SSD, keeps its own host-side
  mapping table (disk LBN -> SSD block), and persists per-block metadata
  to the SSD so a write-back cache can survive crashes.
* :class:`FlashTierWTManager` — FlashTier write-through on an SSC: no
  host-side state at all; every read consults the SSC.
* :class:`FlashTierWBManager` — FlashTier write-back on an SSC: keeps
  only a dirty-block table, cleans LRU dirty blocks past a threshold,
  and recovers its table with ``exists``.
"""

from repro.manager.base import CacheManager, ManagerStats
from repro.manager.dirty_table import DirtyBlockTable
from repro.manager.native import NativeCacheManager, NativeConfig
from repro.manager.writethrough import FlashTierWTManager
from repro.manager.writeback import FlashTierWBManager, WriteBackConfig

__all__ = [
    "CacheManager",
    "ManagerStats",
    "DirtyBlockTable",
    "NativeCacheManager",
    "NativeConfig",
    "FlashTierWTManager",
    "FlashTierWBManager",
    "WriteBackConfig",
]
