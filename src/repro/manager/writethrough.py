"""FlashTier write-through cache manager.

Paper §4.4: "The write-through policy consults the cache on every read.
...  The cache manager fetches the data from the disk on a miss and
writes it to the SSC with write-clean.  Similarly, the cache manager
sends new data from writes both to the disk and to the SSC with
write-clean.  As all data is clean, the manager never sends any clean
requests.  We optimize the design for memory consumption assuming a
high hit rate: the manager stores no data about cached blocks, and
consults the cache on every request."

Because SSC reads return a well-defined not-present error, the manager
may optionally front the device with a Bloom filter (§4.2.1) to skip
reads that would certainly miss — an approximation is safe here, since
a false positive only costs one device lookup and a false negative is
impossible for blocks the filter saw inserted.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple


from repro.disk.model import Disk
from repro.errors import NotPresentError
from repro.manager.base import CacheManager
from repro.ssc.device import SolidStateCache
from repro.util.bloom import BloomFilter


class FlashTierWTManager(CacheManager):
    """Write-through caching on an SSC: zero host-side block state."""

    def __init__(
        self,
        ssc: SolidStateCache,
        disk: Disk,
        bloom_filter: Optional[BloomFilter] = None,
    ):
        super().__init__()
        self.ssc = ssc
        self.disk = disk
        self.bloom = bloom_filter
        self._attach_devices(ssc.chip, disk)

    def _read_impl(self, lbn: int) -> Tuple[Any, float, bool]:
        self.stats.reads += 1
        if self.bloom is None or self.bloom.might_contain(lbn):
            try:
                data, cost = self.ssc.read(lbn)
                self.stats.read_hits += 1
                return data, cost, True
            except NotPresentError:
                pass
        self.stats.read_misses += 1
        data, cost = self.disk.read(lbn)
        cost += self.ssc.write_clean(lbn, data)
        if self.bloom is not None:
            self.bloom.add(lbn)
        return data, cost, False

    def _write_impl(self, lbn: int, data: Any) -> float:
        self.stats.writes += 1
        cost = self.disk.write(lbn, data)
        cost += self.ssc.write_clean(lbn, data)
        if self.bloom is not None:
            self.bloom.add(lbn)
        return cost

    def host_memory_bytes(self) -> int:
        """Zero per-block state (§6.3: "its memory usage is effectively
        zero"); an optional Bloom filter is counted if configured."""
        return self.bloom.memory_bytes() if self.bloom is not None else 0

    def recover_us(self) -> float:
        """A write-through manager keeps no transient state: after the
        SSC itself recovers, the cache is immediately usable (§4.4)."""
        return 0.0
