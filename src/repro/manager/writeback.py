"""FlashTier write-back cache manager.

Paper §4.4: "On a write, the cache manager uses write-dirty to write the
data to the SSC only.  The cache manager maintains an in-memory table
of cached dirty blocks.  Using its table, the manager can detect when
the percentage of dirty blocks within the SSC exceeds a set threshold,
and if so issues clean commands for LRU blocks.  Within the set of LRU
blocks, the cache manager prioritizes cleaning of contiguous dirty
blocks, which can be merged together for writing to disk."

Recovery (§4.4): "a write-back cache manager can also start using the
cache immediately, but must eventually repopulate the dirty-block table
...  The cache manager scans the entire disk address space with exists.
This operation can overlap normal activity and thus does not delay
recovery."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.disk.model import Disk
from repro.errors import (
    CacheFullError,
    ChecksumError,
    ConfigError,
    NotPresentError,
)
from repro.manager.base import CacheManager
from repro.manager.dirty_table import DirtyBlockTable
from repro.ssc.device import SolidStateCache


@dataclass(frozen=True)
class WriteBackConfig:
    """Write-back manager tunables.

    ``reclaim`` selects what happens to a block after write-back:

    * ``"clean"`` (default, the paper's implemented policy): issue
      ``clean`` — the data stays cached and readable until the SSC
      decides to silently evict it.
    * ``"evict"`` (the paper's described-but-unused alternative,
      §4.2.1: "the cache manager can leave data dirty and explicitly
      evict selected victim blocks"): issue ``evict`` — the manager
      precisely controls contents at the cost of losing warm data.
    """

    dirty_threshold: float = 0.20  # of the SSC's raw page capacity
    clean_run_limit: int = 32      # longest contiguous run cleaned at once
    reclaim: str = "clean"
    verify_checksums: bool = False  # check dirty data before write-back

    def __post_init__(self):
        if not 0.0 < self.dirty_threshold <= 1.0:
            raise ConfigError("dirty_threshold must be in (0, 1]")
        if self.clean_run_limit < 1:
            raise ConfigError("clean_run_limit must be >= 1")
        if self.reclaim not in ("clean", "evict"):
            raise ConfigError("reclaim must be 'clean' or 'evict'")


class FlashTierWBManager(CacheManager):
    """Write-back caching on an SSC: host state for dirty blocks only."""

    def __init__(
        self,
        ssc: SolidStateCache,
        disk: Disk,
        config: WriteBackConfig = WriteBackConfig(),
    ):
        super().__init__()
        self.ssc = ssc
        self.disk = disk
        self.config = config
        self.dirty_table = DirtyBlockTable()
        self._dirty_limit = int(config.dirty_threshold * ssc.capacity_pages)
        self._attach_devices(ssc.chip, disk)

    def _read_impl(self, lbn: int) -> Tuple[Any, float, bool]:
        self.stats.reads += 1
        try:
            data, cost = self.ssc.read(lbn)
            self.stats.read_hits += 1
            self.dirty_table.touch(lbn)
            return data, cost, True
        except NotPresentError:
            pass
        self.stats.read_misses += 1
        data, cost = self.disk.read(lbn)
        cost += self._insert_clean(lbn, data)
        return data, cost, False

    def _write_impl(self, lbn: int, data: Any) -> float:
        self.stats.writes += 1
        try:
            cost = self.ssc.write_dirty(lbn, data)
        except CacheFullError:
            # Device back-pressure: too much of the cache is dirty at
            # erase-block granularity.  Clean aggressively and retry —
            # "the cache manager must actively manage the contents of
            # the cache to ensure there is space for new data" (§3.1).
            cost = self._force_clean()
            cost += self.ssc.write_dirty(lbn, data)
        self.dirty_table.add(lbn, data)
        cost += self._enforce_dirty_threshold()
        return cost

    def _insert_clean(self, lbn: int, data: Any) -> float:
        try:
            return self.ssc.write_clean(lbn, data)
        except CacheFullError:
            cost = self._force_clean()
            return cost + self.ssc.write_clean(lbn, data)

    # ------------------------------------------------------------------
    # Cleaning
    # ------------------------------------------------------------------

    def _enforce_dirty_threshold(self) -> float:
        cost = 0.0
        while len(self.dirty_table) > self._dirty_limit:
            lbn = self.dirty_table.lru_block()
            if lbn is None:
                break
            run = self.dirty_table.contiguous_run(lbn, self.config.clean_run_limit)
            for run_lbn in run:
                cost += self._clean_block(run_lbn)
        return cost

    def _force_clean(self) -> float:
        """Clean the whole dirty table to relieve device back-pressure.

        At erase-block granularity, scattered dirty pages can pin far
        more flash than the dirty *count* suggests; cleaning everything
        guarantees the device regains eviction candidates.  The dirty
        limit is also lowered so the steady-state threshold cleaning
        prevents a repeat.
        """
        cost = self.flush_dirty()
        self._dirty_limit = max(16, int(self._dirty_limit * 0.75))
        return cost

    def _clean_block(self, lbn: int) -> float:
        """Write ``lbn`` back to disk and tell the SSC it is clean.

        The manager then removes the block's state from its table; the
        data stays cached and readable until the SSC decides to silently
        evict it.
        """
        if lbn not in self.dirty_table:
            return 0.0
        try:
            data, cost = self.ssc.read(lbn)
        except NotPresentError:
            # Unreachable for dirty blocks (the SSC never drops dirty
            # data), but a clean-crash-recovered table may be stale.
            self.dirty_table.remove(lbn)
            return 0.0
        if self.config.verify_checksums and not self.dirty_table.checksum_matches(
            lbn, data
        ):
            # Never propagate corrupted cache contents to the disk tier.
            raise ChecksumError(lbn)
        cost += self.disk.write(lbn, data)
        if self.config.reclaim == "evict":
            cost += self.ssc.evict(lbn)
            self.stats.evictions += 1
        else:
            cost += self.ssc.clean(lbn)
            self.stats.cleans += 1
        self.dirty_table.remove(lbn)
        self.stats.writebacks += 1
        return cost

    def flush_dirty(self) -> float:
        """Write back every dirty block (clean shutdown)."""
        cost = 0.0
        for lbn in list(self.dirty_table.iter_lru()):
            cost += self._clean_block(lbn)
        return cost

    # ------------------------------------------------------------------
    # Memory and recovery
    # ------------------------------------------------------------------

    def host_memory_bytes(self) -> int:
        """State for dirty blocks only — the 89 % reduction of §6.3."""
        return self.dirty_table.memory_bytes()

    def recover_us(self, disk_capacity_blocks: int) -> float:
        """Repopulate the dirty-block table via ``exists``.

        Returns the scan's device time.  Per §4.4 this overlaps normal
        activity — the cache itself is usable as soon as the *device*
        recovery completes — so Figure 5 does not include it in the
        recovery latency; we expose it for completeness.
        """
        self.dirty_table.clear()
        dirty, cost = self.ssc.exists(0, disk_capacity_blocks)
        for lbn in dirty:
            self.dirty_table.add(lbn)
        return cost
