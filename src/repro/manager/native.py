"""The native baseline: a FlashCache-style manager on a plain SSD.

This is the system FlashTier is measured against (§5, §6.1): the
unmodified-architecture cache manager caching on a conventional SSD.
Because the SSD exposes its own dense address space, the manager must:

* keep a host-side mapping table from disk LBN to SSD block — 22 bytes
  per cached block (disk block number, checksum, LRU indexes, state);
* run its own set-associative replacement to allocate SSD blocks;
* persist its metadata to the SSD so a write-back cache survives
  crashes (Native-D in Fig. 4): every dirty-state or mapping change for
  dirty blocks is written synchronously to a metadata journal region on
  the SSD, while metadata for clean blocks added on misses is batched
  ("the native system does not incur any synchronous metadata updates
  when adding clean pages from a miss and batches sequential metadata
  updates").

In write-through mode the native manager provides no durability (the
paper notes it "cannot" recover after a crash) and writes no metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.disk.model import Disk
from repro.errors import ConfigError
from repro.ftl.ssd import SSD
from repro.manager.base import CacheManager
from repro.manager.dirty_table import DirtyBlockTable
from repro.util.lru import LRUList

#: Host bytes per cached block (paper §6.3: "22 bytes/block for a disk
#: block number, checksum, LRU indexes and block state").
HOST_ENTRY_BYTES = 22

_MASK = (1 << 64) - 1


def _mix(value: int) -> int:
    value = (value ^ (value >> 33)) * 0xFF51AFD7ED558CCD & _MASK
    value = (value ^ (value >> 33)) * 0xC4CEB9FE1A85EC53 & _MASK
    return value ^ (value >> 33)


@dataclass(frozen=True)
class NativeConfig:
    """Native manager tunables."""

    mode: str = "wb"               # "wb" (write-back) or "wt" (write-through)
    set_size: int = 64             # SSD blocks per associativity set
    dirty_threshold: float = 0.20  # clean LRU dirty blocks above this
    consistency: bool = True       # persist metadata (write-back only)
    clean_meta_batch: int = 32     # clean-insert metadata updates per flush
    meta_fraction: float = 0.02    # share of SSD logical space for metadata

    def __post_init__(self):
        if self.mode not in ("wb", "wt"):
            raise ConfigError("mode must be 'wb' or 'wt'")
        if self.set_size < 1:
            raise ConfigError("set_size must be >= 1")
        if not 0.0 < self.dirty_threshold <= 1.0:
            raise ConfigError("dirty_threshold must be in (0, 1]")
        if self.clean_meta_batch < 1:
            raise ConfigError("clean_meta_batch must be >= 1")
        if not 0.0 < self.meta_fraction < 0.5:
            raise ConfigError("meta_fraction must be in (0, 0.5)")


class NativeCacheManager(CacheManager):
    """Set-associative SSD cache manager (the FlashCache baseline)."""

    def __init__(self, ssd: SSD, disk: Disk, config: Optional[NativeConfig] = None):
        super().__init__()
        self.ssd = ssd
        self.disk = disk
        self.config = config or NativeConfig()

        meta_pages = max(4, int(ssd.capacity_pages * self.config.meta_fraction))
        meta_pages = min(meta_pages, max(1, ssd.capacity_pages // 4))
        self.data_pages = ssd.capacity_pages - meta_pages
        if self.data_pages < 1:
            raise ConfigError("SSD too small to hold any cached data")
        # Small devices get one set covering everything rather than an
        # error; set_size is an upper bound on associativity.
        self._set_size = min(self.config.set_size, self.data_pages)
        self.num_sets = max(1, self.data_pages // self._set_size)
        self._meta_base = self.data_pages
        self._meta_pages = meta_pages
        self._meta_cursor = 0
        self._pending_clean_meta = 0
        # Sequential-update coalescing (§6.4: the native system "batches
        # sequential metadata updates"): a run of adjacent blocks shares
        # one metadata page write.
        self._last_sync_meta_lbn: Optional[int] = None
        self._sync_meta_batch = 0
        self._entries_per_meta_page = max(
            1, ssd.chip.geometry.page_size // HOST_ENTRY_BYTES
        )

        self._attach_devices(ssd.chip, disk)

        # Host-side state: the full mapping table plus per-set LRU.
        self._map: Dict[int, int] = {}        # disk lbn -> ssd slot
        self._slot_lbn: Dict[int, int] = {}   # ssd slot -> disk lbn
        self._set_lru: List[LRUList] = [LRUList() for _ in range(self.num_sets)]
        self._free_slots: List[List[int]] = [[] for _ in range(self.num_sets)]
        for slot in range(self.data_pages):
            self._free_slots[self._set_of_slot(slot)].append(slot)
        self._dirty = DirtyBlockTable(with_checksums=False)

    # ------------------------------------------------------------------
    # Set geometry
    # ------------------------------------------------------------------

    def _set_of_slot(self, slot: int) -> int:
        return slot // self._set_size % self.num_sets

    def _set_of_lbn(self, lbn: int) -> int:
        return _mix(lbn) % self.num_sets

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def _read_impl(self, lbn: int) -> Tuple[Any, float, bool]:
        self.stats.reads += 1
        slot = self._map.get(lbn)
        if slot is not None:
            self.stats.read_hits += 1
            data, cost = self.ssd.read(slot)
            self._set_lru[self._set_of_lbn(lbn)].touch(lbn)
            self._dirty.touch(lbn)
            return data, cost, True
        self.stats.read_misses += 1
        data, cost = self.disk.read(lbn)
        cost += self._insert(lbn, data, dirty=False)
        return data, cost, False

    def _write_impl(self, lbn: int, data: Any) -> float:
        self.stats.writes += 1
        if self.config.mode == "wt":
            cost = self.disk.write(lbn, data)
            cost += self._insert(lbn, data, dirty=False)
            return cost
        cost = self._insert(lbn, data, dirty=True)
        cost += self._enforce_dirty_threshold()
        return cost

    def flush_dirty(self) -> float:
        """Write back every dirty block (clean shutdown)."""
        cost = 0.0
        for lbn in list(self._dirty.iter_lru()):
            cost += self._clean_block(lbn)
        return cost

    # ------------------------------------------------------------------
    # Insertion / replacement
    # ------------------------------------------------------------------

    def _insert(self, lbn: int, data: Any, dirty: bool) -> float:
        cost = 0.0
        set_index = self._set_of_lbn(lbn)
        slot = self._map.get(lbn)
        if slot is None:
            slot, cost = self._allocate_slot(set_index)
            self._map[lbn] = slot
            self._slot_lbn[slot] = lbn
            cost += self._meta_update(sync=dirty, lbn=lbn)
        else:
            was_dirty = lbn in self._dirty
            if was_dirty != dirty:
                cost += self._meta_update(sync=dirty, lbn=lbn)
        cost += self.ssd.write(slot, data, dirty=dirty)
        self._set_lru[set_index].touch(lbn)
        if dirty:
            self._dirty.add(lbn)
        else:
            self._dirty.remove(lbn)
        return cost

    def _allocate_slot(self, set_index: int) -> Tuple[int, float]:
        free = self._free_slots[set_index]
        if free:
            return free.pop(), 0.0
        victim = self._set_lru[set_index].pop_lru()
        if victim is None:
            raise ConfigError("associativity set has neither free slots nor victims")
        return self._evict(victim)

    def _evict(self, victim_lbn: int) -> Tuple[int, float]:
        """Evict ``victim_lbn``; returns (freed slot, cost).

        Evicting a dirty block persists the state change synchronously;
        a clean victim costs only a batched update — Native-D "only
        saves metadata for dirty blocks at runtime" (§6.4).
        """
        cost = 0.0
        slot = self._map.pop(victim_lbn)
        del self._slot_lbn[slot]
        was_dirty = self._dirty.remove(victim_lbn)
        if was_dirty:
            data, read_cost = self.ssd.read(slot)
            cost += read_cost
            cost += self.disk.write(victim_lbn, data)
            self.stats.writebacks += 1
        cost += self.ssd.trim(slot)
        cost += self._meta_update(sync=was_dirty, lbn=victim_lbn)
        self.stats.evictions += 1
        return slot, cost

    # ------------------------------------------------------------------
    # Dirty-block cleaning (write-back)
    # ------------------------------------------------------------------

    def _enforce_dirty_threshold(self) -> float:
        limit = int(self.config.dirty_threshold * self.data_pages)
        cost = 0.0
        while len(self._dirty) > limit:
            lbn = self._dirty.lru_block()
            if lbn is None:
                break
            for run_lbn in self._dirty.contiguous_run(lbn):
                cost += self._clean_block(run_lbn)
        return cost

    def _clean_block(self, lbn: int) -> float:
        """Write ``lbn`` back to disk and mark its SSD copy clean."""
        slot = self._map.get(lbn)
        if slot is None or not self._dirty.remove(lbn):
            return 0.0
        data, cost = self.ssd.read(slot)
        cost += self.disk.write(lbn, data)
        self.ssd.set_page_dirty(slot, False)
        cost += self._meta_update(sync=True, lbn=lbn)
        self.stats.writebacks += 1
        return cost

    # ------------------------------------------------------------------
    # Metadata persistence
    # ------------------------------------------------------------------

    def _meta_update(self, sync: bool, lbn: Optional[int] = None) -> float:
        """Persist a metadata change to the SSD journal region.

        Synchronous updates (anything involving dirty state) cost a page
        write immediately — except that a run of *sequential* blocks
        coalesces into one metadata page (§6.4: the native system
        "batches sequential metadata updates").  Clean-insert updates
        batch ``clean_meta_batch`` entries per page.  Write-through mode
        and no-consistency configurations skip persistence entirely.
        """
        if self.config.mode == "wt" or not self.config.consistency:
            return 0.0
        if not sync:
            self._pending_clean_meta += 1
            if self._pending_clean_meta < self.config.clean_meta_batch:
                return 0.0
            self._pending_clean_meta = 0
        elif (
            lbn is not None
            and self._last_sync_meta_lbn is not None
            and lbn == self._last_sync_meta_lbn + 1
            and self._sync_meta_batch < self._entries_per_meta_page
        ):
            # Continues a sequential run: its entry lands in the
            # metadata page the run already paid for.
            self._last_sync_meta_lbn = lbn
            self._sync_meta_batch += 1
            return 0.0
        if sync:
            self._last_sync_meta_lbn = lbn
            self._sync_meta_batch = 1
        self.stats.metadata_writes += 1
        lpn = self._meta_base + self._meta_cursor
        self._meta_cursor = (self._meta_cursor + 1) % self._meta_pages
        return self.ssd.write(lpn, ("meta", self.stats.metadata_writes))

    # ------------------------------------------------------------------
    # Memory and recovery accounting
    # ------------------------------------------------------------------

    def cached_blocks(self) -> int:
        return len(self._map)

    def dirty_blocks(self) -> int:
        return len(self._dirty)

    def host_memory_bytes(self) -> int:
        """22 bytes for every cached block, clean or dirty (§6.3)."""
        return len(self._map) * HOST_ENTRY_BYTES

    def recover_manager_us(self) -> float:
        """Time to reload the manager's metadata from the SSD (Fig. 5
        "Native-FC"): a sequential read of the journal region sized by
        the mapping table."""
        table_bytes = self.host_memory_bytes()
        page_size = self.ssd.chip.geometry.page_size
        pages = -(-table_bytes // page_size)  # ceil
        return pages * self.ssd.chip.timing.read_cost()

    def recover_device_us(self) -> float:
        """Time for the SSD itself to rebuild its mapping via an OOB
        scan (Fig. 5 "Native-SSD")."""
        return self.ssd.oob_recovery_scan_us()
