"""High-level facade: build complete FlashTier / native systems."""

from repro.core.config import SystemConfig, SystemKind, CacheMode
from repro.core.flashtier import FlashTierSystem, build_system

__all__ = [
    "SystemConfig",
    "SystemKind",
    "CacheMode",
    "FlashTierSystem",
    "build_system",
]
