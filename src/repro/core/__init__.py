"""High-level facade: build complete FlashTier / native systems."""

from repro.core.config import SystemConfig, SystemKind, CacheMode
from repro.core.flashtier import (
    FlashTierSystem,
    build_sharded_system,
    build_system,
)
from repro.core.sharding import ShardedSSC, ShardedSSD, ShardRouter

__all__ = [
    "SystemConfig",
    "SystemKind",
    "CacheMode",
    "FlashTierSystem",
    "ShardedSSC",
    "ShardedSSD",
    "ShardRouter",
    "build_sharded_system",
    "build_system",
]
