"""System-level configuration for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigError


class SystemKind(Enum):
    """Which caching system to assemble (the paper's comparison axes)."""

    NATIVE = "native"   # FlashCache manager + conventional SSD
    SSC = "ssc"         # FlashTier manager + SSC (SE-Util)
    SSC_R = "ssc-r"     # FlashTier manager + SSC-R (SE-Merge)


class CacheMode(Enum):
    """Write policy."""

    WRITE_THROUGH = "wt"
    WRITE_BACK = "wb"


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to assemble one complete caching system.

    ``cache_blocks`` is the number of 4 KB blocks the cache should be
    able to hold (the paper sizes it to the top 25 % most-accessed
    blocks of each trace).  ``capacity_slack`` converts that into raw
    flash: block-level mapping wastes part of each erase block on
    sparse groups, and the device needs log blocks and merge workspace,
    so the chip is provisioned ``cache_blocks * capacity_slack`` pages.

    ``consistency=False`` builds the no-consistency configurations used
    by Fig. 4's baseline and the GC experiments (Fig. 6 / Table 5).

    ``shards`` partitions the cache across that many independent cache
    devices at *fixed total capacity*: each shard is provisioned
    ``cache_blocks / shards`` blocks and owns a deterministic slice of
    the disk LBN space (see :mod:`repro.core.sharding`).  ``routing``
    selects how LBNs map to shards: ``"stripe"`` round-robins erase-
    block-sized groups across shards, ``"hash"`` assigns each group by
    a 64-bit mix of its number.  Both route at group granularity so a
    sparse group never splits across shards.  ``shards=1`` builds the
    single-device system unchanged.

    ``pages_per_block`` defaults to 16 rather than the paper's 64: the
    workloads are replayed at ~1/30 scale, and the erase-block size must
    scale with them or the log pool becomes a handful of blocks and
    every quantity the evaluation measures (merge frequency, eviction
    churn, group density) is dominated by granularity artifacts.  The
    paper's ratio of erase-block pages to cache pages is preserved to
    within an order of magnitude.  Pass 64 to use the unscaled geometry.
    """

    kind: SystemKind = SystemKind.SSC
    mode: CacheMode = CacheMode.WRITE_BACK
    cache_blocks: int = 8192
    disk_blocks: int = 1 << 20
    capacity_slack: float = 2.0
    consistency: bool = True
    dirty_threshold: float = 0.20
    planes: int = 10
    pages_per_block: int = 16
    page_size: int = 4096
    oob_bytes: int = 224
    seed: int = 0
    shards: int = 1
    routing: str = "stripe"

    def __post_init__(self):
        if self.cache_blocks < 1:
            raise ConfigError("cache_blocks must be positive")
        if self.disk_blocks < 1:
            raise ConfigError("disk_blocks must be positive")
        if self.capacity_slack < 1.0:
            raise ConfigError("capacity_slack must be >= 1.0")
        if not 0.0 < self.dirty_threshold <= 1.0:
            raise ConfigError("dirty_threshold must be in (0, 1]")
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        if self.routing not in ("stripe", "hash"):
            raise ConfigError("routing must be 'stripe' or 'hash'")
