"""Assembly of complete caching systems.

``build_system`` wires a flash device (SSD or SSC), a disk, and the
matching cache manager into one :class:`FlashTierSystem` — the unit the
examples and benchmarks operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.config import CacheMode, SystemConfig, SystemKind
from repro.disk.model import Disk
from repro.flash.geometry import FlashGeometry
from repro.ftl.hybrid import HybridFTLConfig
from repro.ftl.ssd import SSD
from repro.manager.base import CacheManager
from repro.manager.native import NativeCacheManager, NativeConfig
from repro.manager.writeback import FlashTierWBManager, WriteBackConfig
from repro.manager.writethrough import FlashTierWTManager
from repro.ssc.device import SolidStateCache, SSCConfig
from repro.ssc.engine import EvictionPolicy
from repro.stats.counters import ReplayStats
from repro.traces.record import TraceRecord
from repro.traces.replay import replay_trace


def cache_geometry(config: SystemConfig, shard_count: int = 1) -> FlashGeometry:
    """Flash geometry provisioning ``cache_blocks`` with slack.

    With ``shard_count > 1`` the geometry is for *one member device* of
    a sharded array at fixed total capacity: each shard gets
    ``ceil(cache_blocks / shard_count)`` blocks (rounding up, so the
    array never holds less than a single device would), subject to a
    viability floor — a member must still fit its FTL's log pool and
    spare blocks, so sharding a very small cache provisions slightly
    more than ``cache_blocks`` in total rather than failing.
    """
    blocks = -(-config.cache_blocks // shard_count)  # ceil
    if shard_count > 1:
        blocks = max(blocks, 16 * config.pages_per_block)
    capacity = int(blocks * config.capacity_slack) * config.page_size
    return FlashGeometry.for_capacity(
        capacity,
        planes=config.planes,
        pages_per_block=config.pages_per_block,
        page_size=config.page_size,
        oob_bytes=config.oob_bytes,
    )


@dataclass
class FlashTierSystem:
    """One assembled caching system: manager + cache device + disk."""

    config: SystemConfig
    manager: CacheManager
    disk: Disk
    ssd: Optional[SSD] = None
    ssc: Optional[SolidStateCache] = None

    @property
    def device(self) -> Union[SSD, SolidStateCache]:
        device = self.ssd if self.ssd is not None else self.ssc
        assert device is not None
        return device

    @property
    def device_stats(self):
        return self.device.stats

    def replay(
        self,
        trace: Sequence[TraceRecord],
        warmup_fraction: float = 0.0,
        keep_latencies: bool = False,
        queue_depth: int = 1,
        open_loop: bool = False,
    ) -> ReplayStats:
        """Replay ``trace`` through this system's manager.

        ``queue_depth`` > 1 keeps that many requests outstanding
        (closed loop); ``open_loop=True`` instead dispatches at each
        record's ``arrival_us``.  Both run through the event-driven
        :class:`~repro.engine.ReplayEngine`; the default serial path is
        the legacy one-at-a-time loop, which the engine reproduces
        bit-for-bit at ``queue_depth=1``.
        """
        if queue_depth == 1 and not open_loop:
            return replay_trace(
                self.manager,
                trace,
                warmup_fraction=warmup_fraction,
                keep_latencies=keep_latencies,
            )
        from repro.engine import ReplayEngine

        engine = ReplayEngine(self.manager, queue_depth=queue_depth)
        return engine.run(
            trace,
            warmup_fraction=warmup_fraction,
            keep_latencies=keep_latencies,
            open_loop=open_loop,
        )

    def total_memory_bytes(self) -> int:
        """Device plus host mapping memory (Table 4's combined view)."""
        return self.device.device_memory_bytes() + self.manager.host_memory_bytes()


def build_system(config: SystemConfig) -> FlashTierSystem:
    """Assemble the system described by ``config``."""
    if config.shards > 1:
        return build_sharded_system(config)
    disk = Disk(config.disk_blocks)
    geometry = cache_geometry(config)

    if config.kind is SystemKind.NATIVE:
        ssd = SSD(geometry=geometry, config=HybridFTLConfig())
        manager = NativeCacheManager(
            ssd,
            disk,
            NativeConfig(
                mode=config.mode.value,
                dirty_threshold=config.dirty_threshold,
                consistency=config.consistency,
            ),
        )
        return FlashTierSystem(config=config, manager=manager, disk=disk, ssd=ssd)

    policy = (
        EvictionPolicy.MERGE if config.kind is SystemKind.SSC_R else EvictionPolicy.UTIL
    )
    ssc = SolidStateCache(
        geometry=geometry,
        config=SSCConfig(policy=policy, consistency=config.consistency),
    )
    if config.mode is CacheMode.WRITE_BACK:
        manager: CacheManager = FlashTierWBManager(
            ssc, disk, WriteBackConfig(dirty_threshold=config.dirty_threshold)
        )
    else:
        manager = FlashTierWTManager(ssc, disk)
    return FlashTierSystem(config=config, manager=manager, disk=disk, ssc=ssc)


def build_sharded_system(config: SystemConfig) -> FlashTierSystem:
    """Assemble a sharded cache array (``config.shards`` members).

    Total capacity is fixed: each member device is provisioned
    ``cache_blocks / shards`` blocks (see :func:`cache_geometry`), and
    the array partitions the disk LBN space across the members by the
    ``config.routing`` policy.  The three cache managers run unmodified
    against the array — it exposes the exact device interface they
    already speak.
    """
    from repro.core.sharding import ShardedSSC, ShardedSSD, ShardRouter

    disk = Disk(config.disk_blocks)
    geometry = cache_geometry(config, shard_count=config.shards)

    if config.kind is SystemKind.NATIVE:
        array = ShardedSSD(
            [
                SSD(geometry=geometry, config=HybridFTLConfig())
                for _ in range(config.shards)
            ]
        )
        manager = NativeCacheManager(
            array,
            disk,
            NativeConfig(
                mode=config.mode.value,
                dirty_threshold=config.dirty_threshold,
                consistency=config.consistency,
            ),
        )
        return FlashTierSystem(config=config, manager=manager, disk=disk, ssd=array)

    policy = (
        EvictionPolicy.MERGE if config.kind is SystemKind.SSC_R else EvictionPolicy.UTIL
    )
    array = ShardedSSC(
        [
            SolidStateCache(
                geometry=geometry,
                config=SSCConfig(policy=policy, consistency=config.consistency),
                name=f"shard{shard_id}",
            )
            for shard_id in range(config.shards)
        ],
        router=ShardRouter(
            config.shards, config.routing, config.pages_per_block
        ),
    )
    if config.mode is CacheMode.WRITE_BACK:
        manager = FlashTierWBManager(
            array, disk, WriteBackConfig(dirty_threshold=config.dirty_threshold)
        )
    else:
        manager = FlashTierWTManager(array, disk)
    return FlashTierSystem(config=config, manager=manager, disk=disk, ssc=array)
