"""Sharded cache arrays: N independent cache devices behind one interface.

A single SSC simulates one device controller; real deployments stripe a
cache across several drives (or several independent channels of one
drive) so that capacity, bandwidth and — critically for FlashTier's
argument — *recovery* scale with the number of devices.  This module
partitions the disk LBN space across ``N`` member devices:

* :class:`ShardRouter` owns the partition function.  Routing is at
  erase-group granularity (``lbn // pages_per_block``) so a sparse
  group never splits across shards and block-level mapping density is
  preserved; within a group, placement is unchanged.  Two policies:
  ``"stripe"`` round-robins groups, ``"hash"`` assigns each group by a
  64-bit mix of its number.
* :class:`ShardedSSC` fans the six-operation SSC interface out to the
  owning shard and aggregates statistics via the stats classes'
  ``merge()``.  Recovery runs the shards concurrently through the
  event scheduler, so array recovery time is the *max* over shards,
  not the sum.
* :class:`ShardedSSD` does the same for the native baseline's dense
  logical space, striping pages round-robin (``lpn % N``) so the
  manager's set-associative layout spreads evenly.

The array deliberately adds **zero** latency of its own: every cost a
caller sees is a member device's cost.  At ``shards=1`` the array is a
transparent pass-through — bit-for-bit identical to driving the single
device directly — which is what the differential test layer checks.

Member chips are re-keyed (:meth:`~repro.flash.chip.FlashChip.
set_resource_shard`) as ``"s<k>:plane:<n>"`` only when ``N > 1``, so
different shards' planes occupy distinct availability timelines in the
event-driven replay engine — physically separate devices never queue
behind one another — while the ``N == 1`` array keeps the unsharded
key names (and therefore identical busy maps) of a lone device.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, CrashError
from repro.ftl.base import FTLStats
from repro.ftl.ssd import SSD
from repro.flash.chip import FlashStats
from repro.sim.completion import is_plane_resource, parse_shard_resource
from repro.sim.crash import CrashInjector
from repro.sim.events import EventScheduler
from repro.ssc.device import SolidStateCache

_MASK = (1 << 64) - 1


def mix64(value: int) -> int:
    """The 64-bit finalizer of MurmurHash3: a cheap, well-mixed hash.

    Same mixer the native manager uses for set selection; here it
    spreads erase groups across shards so that regionally clustered
    workloads (every real trace) still load every shard.
    """
    value = (value ^ (value >> 33)) * 0xFF51AFD7ED558CCD & _MASK
    value = (value ^ (value >> 33)) * 0xC4CEB9FE1A85EC53 & _MASK
    return value ^ (value >> 33)


class ShardRouter:
    """Deterministic disk-LBN → shard assignment at erase-group granularity.

    Every LBN maps to exactly one shard (the routing is a total
    partition of the LBN space), and all pages of one erase group map
    to the same shard — block-level mapping density survives sharding.
    """

    __slots__ = ("shards", "policy", "pages_per_block")

    def __init__(self, shards: int, policy: str = "stripe",
                 pages_per_block: int = 16):
        if shards < 1:
            raise ConfigError("shards must be >= 1")
        if policy not in ("stripe", "hash"):
            raise ConfigError("routing policy must be 'stripe' or 'hash'")
        if pages_per_block < 1:
            raise ConfigError("pages_per_block must be >= 1")
        self.shards = shards
        self.policy = policy
        self.pages_per_block = pages_per_block

    def group_of(self, lbn: int) -> int:
        """Erase group containing ``lbn`` (the routing granule)."""
        return lbn // self.pages_per_block

    def shard_of(self, lbn: int) -> int:
        """The shard owning ``lbn``."""
        group = lbn // self.pages_per_block
        if self.policy == "stripe":
            return group % self.shards
        return mix64(group) % self.shards

    def __repr__(self) -> str:
        return (
            f"ShardRouter(shards={self.shards}, policy={self.policy!r}, "
            f"pages_per_block={self.pages_per_block})"
        )


class _ShardedChipView:
    """The array's chips presented as one chip-like object.

    Cache managers attach their op recorder to ``device.chip`` and the
    replay engine resolves plane resource keys and busy timelines
    through it; this view fans both out across the member chips.
    """

    def __init__(self, chips: Sequence[Any]):
        self._chips = list(chips)

    # -- identity-ish attributes (homogeneous array: shard 0 speaks) ---

    @property
    def geometry(self):
        return self._chips[0].geometry

    @property
    def timing(self):
        return self._chips[0].timing

    @property
    def planes(self):
        """Shard 0's planes — resolves unsharded ``plane:<n>`` keys,
        which only occur when the array has a single member (whose
        chip keeps the unsharded key names)."""
        return self._chips[0].planes

    # -- recorder fan-out ----------------------------------------------

    @property
    def op_recorder(self):
        return self._chips[0].op_recorder

    @op_recorder.setter
    def op_recorder(self, recorder) -> None:
        for chip in self._chips:
            chip.op_recorder = recorder

    # -- aggregation ---------------------------------------------------

    @property
    def stats(self) -> FlashStats:
        merged = FlashStats()
        for chip in self._chips:
            merged = merged.merge(chip.stats)
        return merged

    def total_erases(self) -> int:
        return sum(chip.total_erases() for chip in self._chips)

    def wear_differential(self) -> int:
        """Max minus min per-block erase count across the whole array."""
        counts = [
            block.erase_count
            for chip in self._chips
            for plane in chip.planes
            for block in plane.blocks.values()
        ]
        return max(counts) - min(counts) if counts else 0

    def free_blocks_total(self) -> int:
        return sum(chip.free_blocks_total() for chip in self._chips)

    # -- replay-engine hooks -------------------------------------------

    def reset_availability(self) -> None:
        for chip in self._chips:
            chip.reset_availability()

    def plane_for_resource(self, key: str):
        """Resolve an ``"s<k>:plane:<n>"`` key to the member plane."""
        parsed = parse_shard_resource(key)
        if parsed is None:
            return None
        shard_id, rest = parsed
        if shard_id >= len(self._chips) or not is_plane_resource(rest):
            return None
        planes = self._chips[shard_id].planes
        plane_id = int(rest.split(":", 1)[1])
        return planes[plane_id] if plane_id < len(planes) else None

    def __repr__(self) -> str:
        return f"_ShardedChipView(chips={len(self._chips)})"


class _ShardedEngineView:
    """Read-only aggregate over the member SSCs' cache FTLs."""

    def __init__(self, shards: Sequence[SolidStateCache]):
        self._shards = list(shards)

    @property
    def stats(self) -> FTLStats:
        merged = FTLStats()
        for shard in self._shards:
            merged = merged.merge(shard.engine.stats)
        return merged

    @property
    def pages_per_block(self) -> int:
        return self._shards[0].engine.pages_per_block

    def cached_blocks(self) -> int:
        return sum(shard.engine.cached_blocks() for shard in self._shards)

    def device_memory_bytes(self) -> int:
        return sum(shard.engine.device_memory_bytes() for shard in self._shards)

    def iter_cached_lbns(self):
        return chain.from_iterable(
            shard.engine.iter_cached_lbns() for shard in self._shards
        )

    def __repr__(self) -> str:
        return f"_ShardedEngineView(shards={len(self._shards)})"


class ShardedSSC:
    """An array of SSCs behind the single-device six-operation interface.

    Data-path operations route to the owning shard and return that
    shard's completion unchanged (the array adds no latency of its
    own).  ``exists`` fans out to every shard and merges; its cost is
    the *max* over shards because independent devices answer their
    portion of the scan concurrently.  The same max rule applies to
    every whole-array maintenance operation (``checkpoint_now``,
    ``shutdown``, ``background_collect``, ``recover``); ``crash`` sums
    the lost records because every shard's volatile buffer is lost.
    """

    #: Optional trace bus (repro.obs); None keeps routing zero-cost.
    tracer = None

    def __init__(
        self,
        shards: Sequence[SolidStateCache],
        router: Optional[ShardRouter] = None,
        routing: str = "stripe",
    ):
        if not shards:
            raise ConfigError("a sharded array needs at least one shard")
        self.shards: List[SolidStateCache] = list(shards)
        pages_per_block = self.shards[0].chip.geometry.pages_per_block
        for shard in self.shards:
            if shard.chip.geometry.pages_per_block != pages_per_block:
                raise ConfigError(
                    "array shards must share one erase-block geometry"
                )
        self.router = router or ShardRouter(
            len(self.shards), routing, pages_per_block
        )
        if self.router.shards != len(self.shards):
            raise ConfigError(
                f"router covers {self.router.shards} shards, "
                f"array has {len(self.shards)}"
            )
        for shard_id, shard in enumerate(self.shards):
            if not shard.name:
                shard.set_name(f"shard{shard_id}")
            # Distinct availability timelines per member device — but a
            # one-member array keeps unsharded keys, so it is
            # bit-for-bit identical to the bare device (busy maps
            # included).
            if len(self.shards) > 1:
                shard.chip.set_resource_shard(shard_id)
        self.chip = _ShardedChipView([shard.chip for shard in self.shards])
        self.engine = _ShardedEngineView(self.shards)
        #: Per-shard recovery costs of the most recent :meth:`recover`.
        self.last_recovery_costs: Tuple[float, ...] = ()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_of(self, lbn: int) -> SolidStateCache:
        """The member device owning ``lbn``."""
        return self.shards[self.router.shard_of(lbn)]

    def _routed(self, lbn: int) -> SolidStateCache:
        """Data-path routing: like :meth:`shard_of`, plus the trace
        event (introspection helpers route silently)."""
        shard_id = self.router.shard_of(lbn)
        if self.tracer is not None:
            self.tracer.emit("shard.route", lane="router",
                             lbn=lbn, shard=shard_id)
        return self.shards[shard_id]

    # ------------------------------------------------------------------
    # Introspection (sums over members)
    # ------------------------------------------------------------------

    @property
    def config(self):
        """The member devices' configuration (homogeneous array)."""
        return self.shards[0].config

    @property
    def name(self) -> str:
        return f"array[{len(self.shards)}]"

    @property
    def stats(self) -> FTLStats:
        return self.engine.stats

    @property
    def capacity_pages(self) -> int:
        return sum(shard.capacity_pages for shard in self.shards)

    @property
    def last_recovery_discarded(self) -> int:
        return sum(shard.last_recovery_discarded for shard in self.shards)

    def cached_blocks(self) -> int:
        return sum(shard.cached_blocks() for shard in self.shards)

    def contains(self, lbn: int) -> bool:
        return self.shard_of(lbn).contains(lbn)

    def is_dirty(self, lbn: int) -> bool:
        return self.shard_of(lbn).is_dirty(lbn)

    def device_memory_bytes(self) -> int:
        return sum(shard.device_memory_bytes() for shard in self.shards)

    # ------------------------------------------------------------------
    # The six-operation interface (routed)
    # ------------------------------------------------------------------

    def _power_fail_all(self) -> None:
        """A power cut is array-wide: when any member raises
        :class:`CrashError`, every other member loses its volatile
        state too (the erring shard already crashed itself)."""
        for shard in self.shards:
            shard.crash()

    def read(self, lbn: int):
        return self._routed(lbn).read(lbn)

    def write_dirty(self, lbn: int, data: Any):
        try:
            return self._routed(lbn).write_dirty(lbn, data)
        except CrashError:
            self._power_fail_all()
            raise

    def write_clean(self, lbn: int, data: Any):
        try:
            return self._routed(lbn).write_clean(lbn, data)
        except CrashError:
            self._power_fail_all()
            raise

    def evict(self, lbn: int):
        try:
            return self._routed(lbn).evict(lbn)
        except CrashError:
            self._power_fail_all()
            raise

    def clean(self, lbn: int):
        try:
            return self._routed(lbn).clean(lbn)
        except CrashError:
            self._power_fail_all()
            raise

    def exists(self, start_lbn: int, end_lbn: int) -> Tuple[List[int], float]:
        """Dirty blocks in [start_lbn, end_lbn) across every shard.

        Each shard scans its own device memory concurrently, so the
        scan costs the slowest shard, not the sum.
        """
        dirty: List[int] = []
        cost = 0.0
        for shard in self.shards:
            shard_dirty, shard_cost = shard.exists(start_lbn, end_lbn)
            dirty.extend(shard_dirty)
            cost = max(cost, shard_cost)
        dirty.sort()
        return dirty, cost

    def exists_detailed(self, start_lbn: int, end_lbn: int):
        """Per-block metadata across every shard (see the SSC method)."""
        entries: List[Tuple[int, bool, int]] = []
        cost = 0.0
        for shard in self.shards:
            shard_entries, shard_cost = shard.exists_detailed(start_lbn, end_lbn)
            entries.extend(shard_entries)
            cost = max(cost, shard_cost)
        entries.sort()
        return entries, cost

    # ------------------------------------------------------------------
    # Whole-array maintenance (concurrent members: max rule)
    # ------------------------------------------------------------------

    def checkpoint_now(self) -> float:
        try:
            return max(shard.checkpoint_now() for shard in self.shards)
        except CrashError:
            self._power_fail_all()
            raise

    def shutdown(self) -> float:
        try:
            return max(shard.shutdown() for shard in self.shards)
        except CrashError:
            self._power_fail_all()
            raise

    def background_collect(self, budget_us: float) -> float:
        """Give every shard the idle window; they collect concurrently."""
        try:
            return max(shard.background_collect(budget_us) for shard in self.shards)
        except CrashError:
            self._power_fail_all()
            raise

    # ------------------------------------------------------------------
    # Crash and recovery
    # ------------------------------------------------------------------

    def attach_injector(self, injector: CrashInjector,
                        only_shard: Optional[int] = None) -> None:
        """Wire a crash injector into the array's durability boundaries.

        ``only_shard`` targets the fault at a single member device —
        the crash-consistency tests use this to prove that a torn write
        into shard *k* cannot disturb any other shard.
        """
        if only_shard is not None:
            self.shards[only_shard].attach_injector(injector)
            return
        for shard in self.shards:
            shard.attach_injector(injector)

    def crash(self) -> int:
        """Power-fail every member; returns total lost log records."""
        return sum(shard.crash() for shard in self.shards)

    def recover(self, parallel: bool = True) -> float:
        """Recover every member; returns the array recovery time.

        Each shard's roll-forward is independent, so the array recovers
        them concurrently: each shard's cost is scheduled at t=0 on the
        event scheduler and the array is ready when the last completion
        fires — ``max`` over shards, not the sum.  ``parallel=False``
        models one controller recovering members back-to-back (the
        ``sum``), kept for the scaling comparison.  Per-shard costs are
        stored in :attr:`last_recovery_costs` either way.
        """
        from repro.ssc.recovery import recover_device

        costs = tuple(recover_device(shard) for shard in self.shards)
        self.last_recovery_costs = costs
        if not parallel:
            return sum(costs)
        scheduler = EventScheduler()
        for cost in costs:
            scheduler.schedule_at(cost)
        scheduler.run_until_idle()
        return scheduler.clock.now_us

    def __repr__(self) -> str:
        return (
            f"ShardedSSC(shards={len(self.shards)}, "
            f"policy={self.router.policy!r}, "
            f"cached={self.cached_blocks()} blocks)"
        )


class ShardedSSD:
    """An array of conventional SSDs striped into one dense logical space.

    The native baseline needs a *dense* logical page space (its manager
    runs set-associative replacement over slot numbers), so the array
    stripes pages round-robin: logical page ``lpn`` lives on shard
    ``lpn % N`` at local page ``lpn // N`` — a bijection onto the
    members' spaces that spreads any access pattern evenly.
    """

    def __init__(self, ssds: Sequence[SSD]):
        if not ssds:
            raise ConfigError("a sharded array needs at least one shard")
        self.ssds: List[SSD] = list(ssds)
        # A homogeneous array may still round capacities differently;
        # expose N * min so striping stays a bijection.
        self._per_shard_pages = min(ssd.capacity_pages for ssd in self.ssds)
        if len(self.ssds) > 1:
            for shard_id, ssd in enumerate(self.ssds):
                ssd.chip.set_resource_shard(shard_id)
        self.chip = _ShardedChipView([ssd.chip for ssd in self.ssds])

    def _route(self, lpn: int) -> Tuple[SSD, int]:
        count = len(self.ssds)
        return self.ssds[lpn % count], lpn // count

    # ---- capacity --------------------------------------------------------

    @property
    def capacity_pages(self) -> int:
        return self._per_shard_pages * len(self.ssds)

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_pages * self.chip.geometry.page_size

    @property
    def stats(self) -> FTLStats:
        merged = FTLStats()
        for ssd in self.ssds:
            merged = merged.merge(ssd.stats)
        return merged

    # ---- block interface -------------------------------------------------

    def read(self, lpn: int):
        ssd, local = self._route(lpn)
        return ssd.read(local)

    def write(self, lpn: int, data: Any, dirty: bool = False):
        ssd, local = self._route(lpn)
        return ssd.write(local, data, dirty=dirty)

    def trim(self, lpn: int):
        ssd, local = self._route(lpn)
        return ssd.trim(local)

    def is_mapped(self, lpn: int) -> bool:
        ssd, local = self._route(lpn)
        return ssd.is_mapped(local)

    def set_page_dirty(self, lpn: int, dirty: bool) -> None:
        ssd, local = self._route(lpn)
        ssd.set_page_dirty(local, dirty)

    def background_collect(self, budget_us: float) -> float:
        """Members recycle concurrently during the idle window."""
        return max(ssd.background_collect(budget_us) for ssd in self.ssds)

    # ---- memory & recovery accounting ------------------------------------

    def device_memory_bytes(self) -> int:
        return sum(ssd.device_memory_bytes() for ssd in self.ssds)

    def oob_recovery_scan_us(self) -> float:
        """Members scan their OOB areas concurrently: max over shards."""
        return max(ssd.oob_recovery_scan_us() for ssd in self.ssds)

    def attach_injector(self, injector: CrashInjector,
                        only_shard: Optional[int] = None) -> None:
        if only_shard is not None:
            self.ssds[only_shard].attach_injector(injector)
            return
        for ssd in self.ssds:
            ssd.attach_injector(injector)

    def __repr__(self) -> str:
        return (
            f"ShardedSSD(shards={len(self.ssds)}, "
            f"capacity={self.capacity_bytes // (1 << 20)} MiB)"
        )
