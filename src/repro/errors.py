"""Exception hierarchy for the FlashTier reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with one clause.  Device-level errors
mirror the semantics in the paper: an SSC read of an absent block returns a
*not-present error* (:class:`NotPresentError`), which is an expected,
recoverable condition for cache managers, not a programming bug.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class FlashError(ReproError):
    """Base class for flash-device errors."""


class InvalidAddressError(FlashError):
    """A physical or logical address is out of range."""


class WriteToNonErasedPageError(FlashError):
    """A program operation targeted a page that was not erased first.

    NAND flash cannot be written in place; attempting to do so is a bug in
    the FTL above the flash layer, so this is raised loudly instead of
    silently corrupting state.
    """


class EraseActiveBlockError(FlashError):
    """An erase targeted a block that still holds pages the FTL maps."""


class NotPresentError(ReproError):
    """An SSC read found no mapping for the requested logical block.

    This is the paper's *not-present error*: the defined, expected response
    to reading an address the cache does not hold (or has silently
    evicted).  Cache managers catch it and fall through to disk.
    """

    def __init__(self, lbn: int):
        super().__init__(f"block {lbn} not present in cache")
        self.lbn = lbn


class CacheFullError(ReproError):
    """The cache device could not make space for a write.

    Raised when garbage collection and silent eviction both fail to
    produce a free erased block (e.g. every candidate block holds dirty
    data and the cache manager never issued ``clean``).
    """


class OutOfSpaceError(ReproError):
    """A fixed-capacity device (SSD) has no free logical space left."""


class RecoveryError(ReproError):
    """Crash recovery could not reconstruct a consistent mapping."""


class ChecksumError(ReproError):
    """A cached block's contents no longer match its recorded checksum.

    Raised by the write-back manager (when configured to verify) before
    a corrupted block would be written back to disk.
    """

    def __init__(self, lbn: int):
        super().__init__(f"checksum mismatch on cached block {lbn}")
        self.lbn = lbn


class CrashError(ReproError):
    """Raised internally when a simulated power failure interrupts an op."""
