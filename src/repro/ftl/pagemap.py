"""Page-mapped FTL (DFTL-style) — the other end of the mapping spectrum.

The paper's hybrid FTL trades mapping memory for merge cost; a fully
page-mapped FTL (Gupta et al.'s DFTL, the paper's citation [16]) does
the opposite: every 4 KB page is mapped individually, so writes never
need merges — garbage collection just copies a victim block's live
pages to the append point (greedy cost-benefit).  The price is the
page table: one entry per logical page, the memory cost that motivates
both the hybrid layout and the SSC's sparse hash map (§4.1, Table 4).

This FTL plugs into :class:`~repro.ftl.ssd.SSD` as an alternative
baseline and powers the mapping-granularity ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.errors import ConfigError, InvalidAddressError
from repro.flash.block import BlockKind, EraseBlock
from repro.flash.chip import FlashChip
from repro.flash.page import OOBData
from repro.ftl.base import FTLStats
from repro.ftl.mapping import DensePageMap
from repro.ftl.wear import WearConfig, WearLeveler


@dataclass(frozen=True)
class PageMapFTLConfig:
    """Tunables for the page-mapped FTL.

    ``overprovision`` reserves raw blocks for garbage collection (the
    same 7 % the paper gives the hybrid SSD); ``gc_threshold`` is the
    free-block floor that triggers collection.
    """

    overprovision: float = 0.07
    gc_threshold: int = 4
    wear: WearConfig = WearConfig()

    def __post_init__(self):
        if not 0.0 < self.overprovision < 0.5:
            raise ConfigError("overprovision must be in (0, 0.5)")
        if self.gc_threshold < 2:
            raise ConfigError("gc_threshold must be >= 2")


class PageMapFTL:
    """Fully page-mapped FTL with greedy garbage collection."""

    def __init__(self, chip: FlashChip, config: Optional[PageMapFTLConfig] = None):
        self.chip = chip
        self.config = config or PageMapFTLConfig()
        self.stats = FTLStats()
        self.wear = WearLeveler(chip, self.config.wear)

        total = chip.geometry.total_blocks
        reserved = max(self.config.gc_threshold, int(total * self.config.overprovision))
        logical_blocks = total - reserved
        if logical_blocks <= 0:
            raise ConfigError("chip too small after over-provisioning")
        self.pages_per_block = chip.geometry.pages_per_block
        self.logical_pages = logical_blocks * self.pages_per_block
        self.page_map = DensePageMap(self.logical_pages)
        self._active: Optional[EraseBlock] = None

    # ------------------------------------------------------------------

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise InvalidAddressError(
                f"lpn {lpn} out of range [0, {self.logical_pages})"
            )

    def free_blocks(self) -> int:
        return self.chip.free_blocks_total()

    def read(self, lpn: int) -> Tuple[Any, float]:
        """Read ``lpn``; unwritten pages return None at control cost."""
        self._check_lpn(lpn)
        self.stats.user_reads += 1
        ppn = self.page_map.lookup(lpn)
        if ppn is None:
            return None, self.chip.timing.control_delay_us
        data, _oob, cost = self.chip.read_page(ppn)
        return data, cost

    def write(self, lpn: int, data: Any, dirty: bool = False) -> float:
        """Write ``lpn`` out-of-place at the append point."""
        self._check_lpn(lpn)
        cost = self._invalidate(lpn)
        block, gc_cost = self._append_slot()
        cost += gc_cost
        ppn = self.chip.geometry.make_ppn(block.pbn, block.write_pointer)
        oob = OOBData(lbn=lpn, dirty=dirty, seq=self.chip.next_seq())
        cost += self.chip.program_page(ppn, data, oob)
        self.page_map.insert(lpn, ppn)
        self.stats.user_writes += 1
        return cost

    def trim(self, lpn: int) -> float:
        self._check_lpn(lpn)
        return self._invalidate(lpn)

    def is_mapped(self, lpn: int) -> bool:
        return lpn in self.page_map

    def set_page_dirty(self, lpn: int, dirty: bool) -> None:
        ppn = self.page_map.lookup(lpn)
        if ppn is None:
            return
        block = self.chip.block(self.chip.geometry.ppn_to_pbn(ppn))
        offset = self.chip.geometry.ppn_to_offset(ppn)
        if dirty:
            block.mark_dirty(offset)
        else:
            block.mark_clean(offset)

    # ------------------------------------------------------------------

    def _invalidate(self, lpn: int) -> float:
        ppn = self.page_map.remove(lpn)
        if ppn is not None:
            pbn = self.chip.geometry.ppn_to_pbn(ppn)
            self.chip.block(pbn).invalidate(self.chip.geometry.ppn_to_offset(ppn))
        return 0.0

    def _append_slot(self) -> Tuple[EraseBlock, float]:
        cost = 0.0
        if self._active is None or self._active.is_full:
            cost += self._ensure_free()
            # GC may already have opened (and partially filled) a fresh
            # append block; abandoning it would leak partial blocks.
            if self._active is None or self._active.is_full:
                plane = max(self.chip.planes, key=lambda plane: plane.free_count)
                self._active = self.wear.pick_block(plane, BlockKind.DATA)
        return self._active, cost

    def _ensure_free(self) -> float:
        """Greedy GC: recycle the most-invalid blocks until above floor."""
        cost = 0.0
        guard = 0
        while self.free_blocks() <= self.config.gc_threshold:
            victim = self._pick_victim()
            if victim is None:
                break
            cost += self._collect(victim)
            guard += 1
            if guard > self.chip.geometry.total_blocks:  # pragma: no cover
                raise ConfigError("page-map GC cannot make progress")
        return cost

    def _pick_victim(self) -> Optional[EraseBlock]:
        """Most-invalid full block, or None.

        Fully-valid blocks are never victims: collecting one consumes
        exactly as much space as it frees (a livelock, not cleaning).
        Whenever free blocks are at the GC floor, the capacity reserve
        guarantees some full block holds invalid pages.
        """
        candidates = [
            block
            for plane in self.chip.planes
            for block in plane.blocks.values()
            if block.kind is BlockKind.DATA
            and block is not self._active
            and block.is_full
            and block.valid_count < block.num_pages
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda block: (block.valid_count, block.pbn))

    def _collect(self, victim: EraseBlock) -> float:
        """Copy the victim's live pages forward, then erase it."""
        cost = 0.0
        base_ppn = victim.pbn * self.pages_per_block
        for offset in victim.valid_offsets():
            src_ppn = base_ppn + offset
            data, oob, read_cost = self.chip.read_page(src_ppn)
            cost += read_cost
            self.stats.gc_page_reads += 1
            block, gc_cost = self._append_slot_for_gc()
            cost += gc_cost
            dst_ppn = self.chip.geometry.make_ppn(block.pbn, block.write_pointer)
            cost += self.chip.program_page(
                dst_ppn,
                data,
                OOBData(lbn=oob.lbn, dirty=oob.dirty, seq=self.chip.next_seq()),
            )
            self.stats.gc_page_writes += 1
            victim.invalidate(offset)
            self.page_map.insert(oob.lbn, dst_ppn)
        cost += self.chip.erase_block(victim.pbn)
        return cost

    def _append_slot_for_gc(self) -> Tuple[EraseBlock, float]:
        # GC appends must not recurse into GC; the reserved pool
        # guarantees a free block exists while collecting.
        if self._active is None or self._active.is_full:
            plane = max(self.chip.planes, key=lambda plane: plane.free_count)
            self._active = self.wear.pick_block(plane, BlockKind.DATA)
        return self._active, 0.0

    def background_step(self) -> float:
        """One idle-time GC increment: compact the most-invalid block."""
        if self.free_blocks() > 2 * self.config.gc_threshold:
            return 0.0
        victim = self._pick_victim()
        if victim is None:
            return 0.0
        return self._collect(victim)

    # ------------------------------------------------------------------

    def device_memory_bytes(self) -> int:
        """The full dense page table — the cost DFTL-style FTLs pay."""
        return self.page_map.memory_bytes()

    def __repr__(self) -> str:
        return (
            f"PageMapFTL(logical_pages={self.logical_pages}, "
            f"free={self.free_blocks()})"
        )
