"""Wear-leveling policies.

Flash blocks endure a limited number of erase cycles (Table 1: ~10^4
for MLC), so the FTL must spread erases evenly.  Two complementary
mechanisms, both standard practice and both assumed by the paper's
wear-differential evaluation (Table 5):

* **Dynamic wear leveling** — allocation picks the free block with the
  lowest erase count, so hot (frequently recycled) roles rotate across
  the pool instead of hammering a FIFO head.
* **Static wear leveling** — cold data parks on low-wear blocks forever
  and shields them from erases.  When the chip's wear differential
  exceeds a threshold, the coldest data block is relocated onto a
  high-wear free block, releasing the low-wear block back into
  circulation.

``WearLeveler`` owns the bookkeeping; the FTLs call :meth:`pick_block`
at allocation and :meth:`check_static` periodically during garbage
collection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.flash.block import BlockKind, EraseBlock
from repro.flash.chip import FlashChip
from repro.flash.plane import Plane


@dataclass(frozen=True)
class WearConfig:
    """Wear-leveling tunables.

    ``static_threshold`` is the wear differential (max minus min erase
    count) that triggers a static relocation; None disables static
    leveling.  ``check_interval`` rate-limits the differential scan,
    which is O(blocks).
    """

    dynamic: bool = True
    static_threshold: Optional[int] = 64
    check_interval: int = 32


class WearLeveler:
    """Wear accounting and block-selection helper for one chip."""

    def __init__(self, chip: FlashChip, config: Optional[WearConfig] = None):
        self.chip = chip
        self.config = config or WearConfig()
        self._since_check = 0
        self.static_relocations = 0

    # ---- dynamic -----------------------------------------------------

    def pick_block(
        self, plane: Plane, kind: BlockKind, hottest: bool = False
    ) -> EraseBlock:
        """Allocate from ``plane``, preferring the least-worn free block.

        ``hottest=True`` inverts the preference — static relocation
        parks cold data on the *most*-worn free block to rest it.
        """
        if not self.config.dynamic or plane.free_count == 0:
            return plane.allocate(kind)
        # The plane keeps lazily-invalidated wear heaps, so both
        # extremes are O(log free) instead of a scan of the free pool.
        best_pbn = plane.most_worn_free() if hottest else plane.least_worn_free()
        return plane.allocate_specific(best_pbn, kind)

    # ---- static --------------------------------------------------------

    def static_due(self) -> bool:
        """True when a (rate-limited) differential check says to relocate."""
        if self.config.static_threshold is None:
            return False
        self._since_check += 1
        if self._since_check < self.config.check_interval:
            return False
        self._since_check = 0
        return self.chip.wear_differential() > self.config.static_threshold

    def coldest_data_block(self, protected: set) -> Optional[EraseBlock]:
        """The lowest-wear DATA block holding live data, or None.

        Blocks in ``protected`` (mid-merge) are skipped.  Only blocks
        with valid pages are candidates: an empty low-wear block gets
        recycled by normal GC anyway.
        """
        candidates = [
            block
            for plane in self.chip.planes
            for block in plane.blocks.values()
            if block.kind is BlockKind.DATA
            and block.valid_count > 0
            and block.pbn not in protected
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda block: (block.erase_count, block.pbn))
