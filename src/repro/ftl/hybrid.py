"""FAST-style hybrid FTL — the conventional SSD's internals.

This is the baseline flash translation layer the paper attributes to
modern SSDs (§4.3) and implements on FlashSim: the drive is split into
*data blocks*, managed with coarse block-level translations (256 KB),
and *log blocks*, managed with fine 4 KB page-level translations.  All
writes append to log blocks; garbage collection later *merges* log
contents into data blocks:

* **Full merge** — for each logical group with pages in the victim log
  block, copy the newest version of every live page (from the old data
  block and any log block) into a freshly allocated block, then erase
  the old data block.  This is the expensive path: up to 64 copies plus
  two erases per group.
* **Switch merge** — a log block that was written exactly sequentially,
  covering one whole group, simply *becomes* the group's data block; no
  copies at all.

The SSD over-provisions ~7 % of its raw capacity: those blocks form the
log pool and merge workspace, and the exposed logical capacity is what
remains.  Because an SSD promises to store every written block forever,
garbage collection must always copy live data — it may never drop it.
That is precisely the constraint the SSC (``repro.ssc``) relaxes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional, Tuple

from repro.errors import ConfigError, InvalidAddressError
from repro.flash.block import BlockKind, EraseBlock
from repro.flash.chip import FlashChip
from repro.flash.page import OOBData, PageState
from repro.ftl.base import FTLStats
from repro.ftl.mapping import DenseBlockMap, DensePageMap
from repro.ftl.wear import WearConfig, WearLeveler


@dataclass(frozen=True)
class HybridFTLConfig:
    """Tunables for the hybrid FTL.

    ``log_fraction`` is the share of raw blocks reserved as log blocks
    (the paper fixes 7 % over-provisioning for the SSD).  ``spare_blocks``
    is the merge-workspace floor: the free pool is never allowed to drain
    below it, so a merge can always allocate its destination block.
    """

    log_fraction: float = 0.07
    spare_blocks: int = 8
    sequential_log: bool = True
    wear: WearConfig = WearConfig()

    def __post_init__(self):
        if not 0.0 < self.log_fraction < 0.5:
            raise ConfigError("log_fraction must be in (0, 0.5)")
        if self.spare_blocks < 4:
            raise ConfigError("spare_blocks must be >= 4 (merge workspace)")


class HybridFTL:
    """Hybrid-mapped FTL over a :class:`~repro.flash.chip.FlashChip`."""

    #: Optional trace bus (repro.obs).  A class attribute so the SSC's
    #: CacheFTL subclass (which skips this __init__) inherits the
    #: zero-cost default; set per instance by instrument_system.
    tracer = None

    def __init__(self, chip: FlashChip, config: Optional[HybridFTLConfig] = None):
        self.chip = chip
        self.config = config or HybridFTLConfig()
        self.stats = FTLStats()
        geometry = chip.geometry

        total = geometry.total_blocks
        self.log_blocks_target = max(1, int(total * self.config.log_fraction))
        self.logical_groups = total - self.log_blocks_target - self.config.spare_blocks
        if self.logical_groups <= 0:
            raise ConfigError(
                "chip too small: no logical capacity left after reserving "
                f"{self.log_blocks_target} log + {self.config.spare_blocks} spare blocks"
            )
        self.pages_per_block = geometry.pages_per_block
        self.logical_pages = self.logical_groups * self.pages_per_block

        self.data_map = DenseBlockMap(self.logical_groups)
        self.log_map = DensePageMap(self.log_blocks_target * self.pages_per_block)
        # Random log blocks in allocation (age) order; the merge victim is
        # the oldest.  FAST additionally dedicates one *sequential* log
        # block to runs that start at a group boundary, so streaming
        # writes convert to data blocks via cheap switch merges.
        self._log_blocks: Deque[int] = deque()
        self._active_log: Optional[EraseBlock] = None
        self._seq_log: Optional[EraseBlock] = None
        self._seq_next_lpn: Optional[int] = None
        self._last_lpn: Optional[int] = None
        # Blocks participating in an in-flight merge; the SSC subclass
        # must never pick them as silent-eviction victims.
        self._gc_protected: set = set()
        self.wear = WearLeveler(chip, self.config.wear)
        self._allocate_hot = False

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise InvalidAddressError(
                f"lpn {lpn} out of range [0, {self.logical_pages})"
            )

    def _group_of(self, lpn: int) -> int:
        return lpn // self.pages_per_block

    def _offset_of(self, lpn: int) -> int:
        return lpn % self.pages_per_block

    # ------------------------------------------------------------------
    # Block allocation
    # ------------------------------------------------------------------

    def _plane_with_most_free(self):
        return max(self.chip.planes, key=lambda plane: plane.free_count)

    def _allocate_block(self, kind: BlockKind) -> EraseBlock:
        plane = self._plane_with_most_free()
        if plane.free_count == 0:
            raise ConfigError(
                "free-block pool exhausted; spare_blocks invariant violated"
            )
        return self.wear.pick_block(plane, kind, hottest=self._allocate_hot)

    def free_blocks(self) -> int:
        """Free erased blocks chip-wide."""
        return self.chip.free_blocks_total()

    # ------------------------------------------------------------------
    # Erase discipline
    # ------------------------------------------------------------------

    def _pre_erase_barrier(self) -> float:
        """Durability barrier crossed before an erase destroys data.

        A plain SSD keeps its mapping in RAM and rebuilds it from OOB
        areas, so nothing needs forcing here.  The SSC overrides this to
        flush its operation log: mapping records that supersede pages in
        the doomed block must be durable *before* the erase, or a crash
        in between would leave the durable mapping referencing erased
        flash (write-ahead rule).
        """
        return 0.0

    def _erase(self, pbn: int) -> float:
        """Erase ``pbn`` behind the durability barrier; returns cost."""
        return self._pre_erase_barrier() + self.chip.erase_block(pbn)

    # ------------------------------------------------------------------
    # Public block-device interface
    # ------------------------------------------------------------------

    def read(self, lpn: int) -> Tuple[Any, float]:
        """Read logical page ``lpn``; returns (data, cost_us).

        Unwritten pages read back as ``None`` at control-delay cost, like
        a disk returning zeroes.
        """
        self._check_lpn(lpn)
        self.stats.user_reads += 1
        ppn = self.log_map.lookup(lpn)
        if ppn is not None:
            data, _oob, cost = self.chip.read_page(ppn)
            return data, cost
        pbn = self.data_map.lookup(self._group_of(lpn))
        if pbn is not None:
            block = self.chip.block(pbn)
            offset = self._offset_of(lpn)
            page = block.pages[offset]
            if page.state is PageState.VALID:
                data, _oob, cost = self.chip.read_page(
                    self.chip.geometry.make_ppn(pbn, offset)
                )
                return data, cost
        return None, self.chip.timing.control_delay_us

    def write(self, lpn: int, data: Any, dirty: bool = False) -> float:
        """Write logical page ``lpn``; returns cost_us.

        ``dirty`` is carried into the page's OOB so the native write-back
        manager's recovery scan can distinguish dirty cached blocks.

        Ordering is crash-critical: the new copy is programmed first,
        then :meth:`_install_mapping` re-points the map *before* the old
        copy is invalidated.  For the logged SSC subclass that makes the
        whole replace a single INSERT record (replay overwrites the
        entry), so no log tail — torn or cleanly truncated — can ever
        persist the removal of the old copy without the insert of the
        new one, which would lose durably-committed data.
        """
        self._check_lpn(lpn)
        if self.config.sequential_log:
            seq_cost = self._try_sequential_write(lpn, data, dirty)
            if seq_cost is not None:
                self.stats.user_writes += 1
                self._last_lpn = lpn
                return seq_cost
        cost = self._random_log_write(lpn, data, dirty)
        self.stats.user_writes += 1
        self._last_lpn = lpn
        return cost

    def trim(self, lpn: int) -> float:
        """Drop ``lpn``: invalidate its flash copy and unmap it."""
        self._check_lpn(lpn)
        return self._invalidate(lpn)

    def is_mapped(self, lpn: int) -> bool:
        """True if ``lpn`` currently holds written data."""
        if lpn in self.log_map:
            return True
        pbn = self.data_map.lookup(self._group_of(lpn))
        if pbn is None:
            return False
        return self.chip.block(pbn).pages[self._offset_of(lpn)].state is PageState.VALID

    def set_page_dirty(self, lpn: int, dirty: bool) -> None:
        """Flip the OOB dirty flag on ``lpn``'s current flash copy."""
        ppn = self.log_map.lookup(lpn)
        if ppn is None:
            pbn = self.data_map.lookup(self._group_of(lpn))
            if pbn is None:
                return
            ppn = self.chip.geometry.make_ppn(pbn, self._offset_of(lpn))
        block = self.chip.block(self.chip.geometry.ppn_to_pbn(ppn))
        offset = self.chip.geometry.ppn_to_offset(ppn)
        if dirty:
            block.mark_dirty(offset)
        else:
            block.mark_clean(offset)

    # ------------------------------------------------------------------
    # Internals: invalidation, log slots, merges
    # ------------------------------------------------------------------

    def _install_mapping(self, lpn: int, ppn: int) -> float:
        """Point ``lpn`` at its freshly-programmed copy ``ppn``; retire
        the superseded copy (metadata only).

        The map insert comes first so a logged subclass emits the INSERT
        record before any invalidation record (see :meth:`write`).
        """
        previous = self.log_map.insert(lpn, ppn)
        if previous is not None and previous != ppn:
            pbn = self.chip.geometry.ppn_to_pbn(previous)
            self.chip.block(pbn).invalidate(self.chip.geometry.ppn_to_offset(previous))
        pbn = self.data_map.lookup(self._group_of(lpn))
        if pbn is not None:
            self._retire_block_copy(lpn, pbn)
        return 0.0

    def _retire_block_copy(self, lpn: int, pbn: int) -> None:
        """Invalidate ``lpn``'s copy inside data block ``pbn`` (if live)."""
        self.chip.block(pbn).invalidate(self._offset_of(lpn))

    def _invalidate(self, lpn: int) -> float:
        """Invalidate any current flash copy of ``lpn`` (metadata only)."""
        ppn = self.log_map.remove(lpn)
        if ppn is not None:
            pbn = self.chip.geometry.ppn_to_pbn(ppn)
            self.chip.block(pbn).invalidate(self.chip.geometry.ppn_to_offset(ppn))
            return 0.0
        pbn = self.data_map.lookup(self._group_of(lpn))
        if pbn is not None:
            self.chip.block(pbn).invalidate(self._offset_of(lpn))
        return 0.0

    # ---- sequential log block (FAST's SW log) -------------------------

    def _try_sequential_write(self, lpn: int, data: Any, dirty: bool) -> Optional[float]:
        """Route ``lpn`` through the sequential log block if it fits.

        Returns the write's cost, or None if the write is not sequential
        and should take the random-log path.
        """
        continues_run = (
            self._seq_log is not None
            and not self._seq_log.is_full
            and lpn == self._seq_next_lpn
        )
        # A run only *starts* when a write lands on a group boundary while
        # continuing an already-sequential stream.  Plain FAST redirects
        # every offset-0 write to the sequential log, which thrashes on
        # random workloads (each one forces a partial merge).
        starts_run = (
            lpn % self.pages_per_block == 0
            and self._last_lpn is not None
            and lpn == self._last_lpn + 1
        )
        if not continues_run and not starts_run:
            return None

        cost = 0.0
        if not continues_run:
            cost += self._retire_seq_log()
            if self.free_blocks() < 2:
                # No room to dedicate a block to the run: fall back.
                if cost == 0.0:
                    return None
                return cost + self._random_log_write(lpn, data, dirty)
            self._seq_log = self._allocate_block(BlockKind.LOG)
            self._seq_next_lpn = lpn

        block = self._seq_log
        assert block is not None
        ppn = self.chip.geometry.make_ppn(block.pbn, block.write_pointer)
        oob = OOBData(lbn=lpn, dirty=dirty, seq=self.chip.next_seq())
        cost += self.chip.program_page(ppn, data, oob)
        cost += self._install_mapping(lpn, ppn)
        self._seq_next_lpn = lpn + 1
        if block.is_full:
            cost += self._retire_seq_log()
        return cost

    def _random_log_write(self, lpn: int, data: Any, dirty: bool) -> float:
        block, offset, cost = self._log_write_slot()
        ppn = self.chip.geometry.make_ppn(block.pbn, offset)
        oob = OOBData(lbn=lpn, dirty=dirty, seq=self.chip.next_seq())
        cost += self.chip.program_page(ppn, data, oob)
        cost += self._install_mapping(lpn, ppn)
        return cost

    def _retire_seq_log(self) -> float:
        """Convert the sequential log block into a data block.

        If the run filled the whole block this is a pure switch merge; a
        partial run first copies the group's remaining live pages from
        the old data block (FAST's *partial merge*), then switches.
        """
        block = self._seq_log
        self._seq_log = None
        self._seq_next_lpn = None
        if block is None:
            return 0.0
        if block.valid_count == 0:
            # Every page was overwritten through the random log already.
            return self._erase(block.pbn)
        if block.valid_count != block.write_pointer:
            # Some of the run's pages were superseded (overwritten via
            # the random log, or relocated by a merge) while the block
            # was open.  Those offsets are programmed-but-invalid, so the
            # block can no longer represent its group whole — converting
            # it would orphan the newest copies still living in the old
            # data block.  Demote it to the random log pool; its valid
            # pages stay reachable through the page map and ordinary
            # merges will recycle it.
            self._log_blocks.append(block.pbn)
            return 0.0
        assert block.first_lbn is not None
        group = self._group_of(block.first_lbn)
        base_lpn = group * self.pages_per_block
        old_pbn = self.data_map.lookup(group)

        cost = 0.0
        copies_before = self.stats.gc_page_writes
        partial = not block.is_full
        if old_pbn is not None:
            old = self.chip.block(old_pbn)
            # Copy live pages the run did not cover (offsets past the
            # write pointer; covered offsets were invalidated on write).
            for offset in range(block.write_pointer, self.pages_per_block):
                page = old.pages[offset]
                if page.state is not PageState.VALID:
                    continue
                lpn = base_lpn + offset
                if lpn in self.log_map:
                    continue  # newer copy lives in a random log block
                src_ppn = self.chip.geometry.make_ppn(old_pbn, offset)
                data, oob, read_cost = self.chip.read_page(src_ppn)
                cost += read_cost
                self.stats.gc_page_reads += 1
                dst_ppn = self.chip.geometry.make_ppn(block.pbn, offset)
                cost += self.chip.program_page(
                    dst_ppn,
                    data,
                    OOBData(lbn=lpn, dirty=bool(oob and oob.dirty), seq=self.chip.next_seq()),
                )
                self.stats.gc_page_writes += 1
                old.invalidate(offset)
        # Remove log-map entries that point into this block; entries that
        # point at newer random-log copies stay.
        for offset in range(self.pages_per_block):
            page = block.pages[offset]
            if page.state is PageState.VALID and page.oob is not None:
                self.log_map.remove(page.oob.lbn)
        block.kind = BlockKind.DATA
        self.data_map.insert(group, block.pbn)
        if old_pbn is not None:
            old = self.chip.block(old_pbn)
            for offset in old.valid_offsets():
                old.invalidate(offset)
            cost += self._erase(old_pbn)
        if partial:
            self.stats.partial_merges += 1
        else:
            self.stats.switch_merges += 1
        if self.tracer is not None:
            self.tracer.emit(
                "gc.merge", lane="gc", dur_us=cost,
                kind="partial" if partial else "switch", group=group,
                copies=self.stats.gc_page_writes - copies_before,
            )
        return cost

    def _log_write_slot(self) -> Tuple[EraseBlock, int, float]:
        """Return (block, offset) of the next log page, running GC if needed."""
        cost = 0.0
        if self._active_log is None or self._active_log.is_full:
            cost += self._open_log_block()
        block = self._active_log
        assert block is not None
        return block, block.write_pointer, cost

    def _open_log_block(self) -> float:
        """Allocate a fresh log block, merging old ones first if needed."""
        cost = 0.0
        while (
            len(self._log_blocks) >= self.log_blocks_target
            or self.free_blocks() <= self.config.spare_blocks
        ):
            cost += self._merge_victim_log_block()
        block = self._allocate_block(BlockKind.LOG)
        self._log_blocks.append(block.pbn)
        self._active_log = block
        return cost

    def _merge_victim_log_block(self) -> float:
        """Merge the oldest log block back into data blocks; returns cost."""
        if not self._log_blocks:
            if self._seq_log is not None:
                return self._retire_seq_log()
            raise ConfigError("no log blocks to merge but free pool exhausted")
        victim_pbn = self._log_blocks.popleft()
        victim = self.chip.block(victim_pbn)
        was_active = victim is self._active_log
        if was_active:
            self._active_log = None
        if self.tracer is not None:
            self.tracer.emit(
                "gc.victim", lane="gc",
                pbn=victim_pbn, valid_pages=victim.valid_count,
            )

        cost = 0.0
        try:
            if self._is_switch_mergeable(victim):
                cost += self._switch_merge(victim)
            else:
                groups = sorted(
                    {
                        self._group_of(victim.pages[offset].oob.lbn)
                        for offset in victim.valid_offsets()
                    }
                )
                for group in groups:
                    cost += self._full_merge_group(group)
                # Every live page belonged to one of those groups, so the
                # victim must be empty now; erase it back to the free pool.
                assert victim.valid_count == 0, "full merge left live pages behind"
                cost += self._erase(victim_pbn)
        except Exception:
            # A mid-merge failure (e.g. the SSC's cache-full condition)
            # must not leak the victim out of the log pool: its remaining
            # live pages are still mapped through the page map.
            if victim.kind is BlockKind.LOG:
                self._log_blocks.appendleft(victim_pbn)
                if was_active:
                    self._active_log = victim
            raise
        cost += self._maybe_static_relocation()
        return cost

    def _maybe_static_relocation(self) -> float:
        """Relocate the coldest data block when wear skews too far.

        Cold data parks on low-wear blocks and shields them from erases;
        moving it onto a high-wear block (and erasing its old home) keeps
        the wear differential bounded (Table 5's "Wear Diff.").
        """
        if self._allocate_hot:
            return 0.0  # already inside a relocation; do not recurse
        if not self.wear.static_due():
            return 0.0
        victim = self.wear.coldest_data_block(self._gc_protected)
        if victim is None:
            return 0.0
        group = self._group_of_data_block(victim.pbn)
        if group is None:
            return 0.0
        self._allocate_hot = True
        try:
            cost = self._full_merge_group(group)
        finally:
            self._allocate_hot = False
        self.wear.static_relocations += 1
        return cost

    def _group_of_data_block(self, pbn: int) -> Optional[int]:
        """Logical group mapped to data block ``pbn``, or None."""
        for group, mapped_pbn in self.data_map.items():
            if mapped_pbn == pbn:
                return group
        return None

    def _is_switch_mergeable(self, block: EraseBlock) -> bool:
        if not (block.sequential and block.is_full and block.first_lbn is not None):
            return False
        if block.first_lbn % self.pages_per_block != 0:
            return False
        # Every page must still be live: one overwrite breaks the switch.
        return block.valid_count == block.num_pages

    def _switch_merge(self, victim: EraseBlock) -> float:
        """Promote a sequentially-written log block to a data block."""
        group = self._group_of(victim.first_lbn)
        cost = 0.0
        old_pbn = self.data_map.insert(group, victim.pbn)
        victim.kind = BlockKind.DATA
        for offset in range(victim.num_pages):
            self.log_map.remove(victim.first_lbn + offset)
        if old_pbn is not None:
            old = self.chip.block(old_pbn)
            for offset in old.valid_offsets():
                old.invalidate(offset)
            cost += self._erase(old_pbn)
        self.stats.switch_merges += 1
        if self.tracer is not None:
            self.tracer.emit(
                "gc.merge", lane="gc", dur_us=cost,
                kind="switch", group=group, copies=0,
            )
        return cost

    def _full_merge_group(self, group: int) -> float:
        """Copy the newest version of every live page of ``group`` into a
        fresh data block, then erase the group's old data block."""
        cost = 0.0
        copies_before = self.stats.gc_page_writes
        old_pbn = self.data_map.lookup(group)
        pages_per_block = self.pages_per_block
        base_lpn = group * pages_per_block

        live = []  # (offset, source_ppn)
        old_pages = None if old_pbn is None else self.chip.block(old_pbn).pages
        old_base_ppn = None if old_pbn is None else old_pbn * pages_per_block
        for offset in range(pages_per_block):
            lpn = base_lpn + offset
            ppn = self.log_map.lookup(lpn)
            if ppn is not None:
                live.append((offset, ppn))
            elif old_pages is not None:
                if old_pages[offset].state is PageState.VALID:
                    live.append((offset, old_base_ppn + offset))

        if old_pbn is not None:
            self._gc_protected.add(old_pbn)
        try:
            if not live:
                self.data_map.remove(group)
            else:
                new_block = self._allocate_block(BlockKind.DATA)
                self._gc_protected.add(new_block.pbn)
                chip = self.chip
                new_base_ppn = new_block.pbn * pages_per_block
                for offset, src_ppn in live:
                    data, oob, read_cost = chip.read_page(src_ppn)
                    cost += read_cost
                    self.stats.gc_page_reads += 1
                    new_oob = OOBData(
                        lbn=base_lpn + offset,
                        dirty=bool(oob and oob.dirty),
                        seq=chip.next_seq(),
                    )
                    cost += chip.program_page(new_base_ppn + offset, data, new_oob)
                    self.stats.gc_page_writes += 1
                    # Invalidate the source copy and drop any log mapping.
                    src_pbn, src_offset = divmod(src_ppn, pages_per_block)
                    chip.block(src_pbn).invalidate(src_offset)
                    self.log_map.remove(base_lpn + offset)
                self.data_map.insert(group, new_block.pbn)
                self._gc_protected.discard(new_block.pbn)

            if old_pbn is not None:
                old = self.chip.block(old_pbn)
                for offset in old.valid_offsets():
                    old.invalidate(offset)
                cost += self._erase(old_pbn)
        finally:
            if old_pbn is not None:
                self._gc_protected.discard(old_pbn)
        self.stats.full_merges += 1
        if self.tracer is not None:
            self.tracer.emit(
                "gc.merge", lane="gc", dur_us=cost,
                kind="full", group=group,
                copies=self.stats.gc_page_writes - copies_before,
            )
        return cost

    # ------------------------------------------------------------------
    # Background garbage collection
    # ------------------------------------------------------------------

    def background_step(self) -> float:
        """One increment of idle-time garbage collection.

        Recycles a log block early so foreground writes find a fresh
        pool instead of stalling on a merge.  Returns the simulated time
        consumed, or 0.0 when there is nothing useful to do.
        """
        if (
            len(self._log_blocks) >= max(1, self.log_blocks_target // 2)
            and self.free_blocks() >= 2
        ):
            return self._merge_victim_log_block()
        return 0.0

    # ------------------------------------------------------------------
    # Memory accounting (Table 4)
    # ------------------------------------------------------------------

    def device_memory_bytes(self) -> int:
        """Modeled device DRAM for the dense hybrid mapping."""
        return self.data_map.memory_bytes() + self.log_map.memory_bytes()

    def __repr__(self) -> str:
        return (
            f"HybridFTL(groups={self.logical_groups}, "
            f"log_target={self.log_blocks_target}, "
            f"log_in_use={len(self._log_blocks)}, free={self.free_blocks()})"
        )
