"""Shared FTL statistics and accounting.

Table 5 of the paper reports, per device: total erases, the wear
differential between blocks, write amplification, and cache miss rate.
The first three come from this statistics object (miss rate comes from
the cache manager).  Write amplification follows the paper's phrasing —
"the native system writes each block an *additional* 2.3 times due to
garbage collection" — i.e. ``gc_page_writes / user_page_writes``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FTLStats:
    """Cumulative FTL-level activity counters."""

    user_reads: int = 0
    user_writes: int = 0
    gc_page_reads: int = 0
    gc_page_writes: int = 0
    meta_page_writes: int = 0        # operation log + checkpoint pages (SSC)
    full_merges: int = 0
    switch_merges: int = 0
    partial_merges: int = 0
    silent_evictions: int = 0        # erase blocks reclaimed without copying
    evicted_valid_pages: int = 0     # live (clean) pages dropped by eviction

    def write_amplification(self) -> float:
        """Extra flash writes per user write caused by garbage collection."""
        if self.user_writes == 0:
            return 0.0
        return self.gc_page_writes / self.user_writes

    def snapshot(self) -> "FTLStats":
        """Independent copy, for before/after deltas in benchmarks."""
        return FTLStats(**vars(self))

    def delta(self, earlier: "FTLStats") -> "FTLStats":
        """Return self - earlier, field-wise."""
        return FTLStats(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in vars(self)
            }
        )

    def merge(self, other: "FTLStats") -> "FTLStats":
        """Return self + other, field-wise.

        Aggregates the per-shard device statistics of a sharded cache
        array into one array-level view; ratios (write amplification)
        are then computed over the summed counters.  Commutative and
        associative, with ``FTLStats()`` as the unit.
        """
        return FTLStats(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name in vars(self)
            }
        )
