"""Dense mapping structures used by the SSD baseline.

An SSD exposes an address space the same size as its capacity, so "an
SSD should optimize for a dense address space" (paper §2): its maps are
flat tables indexed by logical address, and their memory footprint is
proportional to *capacity*, not to how many entries are live.  That is
exactly the property Table 4 contrasts with the SSC's sparse hash map.

Memory accounting uses a fixed cost per table slot.  The paper's Table 4
works out to roughly 2.8 bytes of device memory per cached 4 KB block
for the SSD's hybrid layer mapping; with 7 % of capacity page-mapped and
the rest block-mapped at 64 pages/block, that back-solves to ~32 bytes
per mapping entry (key/value/state in the device's structures), which is
the constant both dense and sparse maps here use so the comparison is
apples-to-apples.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.errors import InvalidAddressError

#: Modeled bytes per mapping entry (see module docstring).
ENTRY_BYTES = 32


class DensePageMap:
    """Logical page -> physical page map, dense over a fixed capacity.

    Used for the SSD's page-mapped log region.  The table is sized by
    ``capacity_pages`` slots regardless of occupancy.
    """

    def __init__(self, capacity_pages: int):
        if capacity_pages < 0:
            raise InvalidAddressError("capacity_pages must be >= 0")
        self.capacity_pages = capacity_pages
        self._map: Dict[int, int] = {}

    def lookup(self, lpn: int) -> Optional[int]:
        """Return the PPN for ``lpn``, or None if unmapped."""
        return self._map.get(lpn)

    def insert(self, lpn: int, ppn: int) -> Optional[int]:
        """Map ``lpn`` to ``ppn``; returns the previous PPN if any."""
        previous = self._map.get(lpn)
        self._map[lpn] = ppn
        return previous

    def remove(self, lpn: int) -> Optional[int]:
        """Unmap ``lpn``; returns the PPN it held, or None."""
        return self._map.pop(lpn, None)

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._map

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._map.items())

    def memory_bytes(self) -> int:
        """Device memory a dense table of this capacity would occupy."""
        return self.capacity_pages * ENTRY_BYTES


class DenseBlockMap:
    """Logical block group -> physical erase block map, dense.

    One slot per logical group over the device's full logical capacity.
    """

    def __init__(self, capacity_groups: int):
        if capacity_groups < 0:
            raise InvalidAddressError("capacity_groups must be >= 0")
        self.capacity_groups = capacity_groups
        self._map: Dict[int, int] = {}

    def lookup(self, group: int) -> Optional[int]:
        """Return the PBN holding ``group``, or None."""
        return self._map.get(group)

    def insert(self, group: int, pbn: int) -> Optional[int]:
        """Map ``group`` to ``pbn``; returns the PBN it replaced, if any."""
        previous = self._map.get(group)
        self._map[group] = pbn
        return previous

    def remove(self, group: int) -> Optional[int]:
        """Unmap ``group``; returns the PBN it held, or None."""
        return self._map.pop(group, None)

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, group: int) -> bool:
        return group in self._map

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._map.items())

    def memory_bytes(self) -> int:
        """Device memory a dense block table of this capacity occupies."""
        return self.capacity_groups * ENTRY_BYTES
