"""The SSD device: a conventional drive built on the hybrid FTL.

This is what the *native* baseline caches on.  It exposes the standard
narrow block interface — read / write / trim — plus the crash-recovery
behaviour the paper measures for Figure 5: an SSD persists its
logical-to-physical map in per-page OOB areas, so after a power failure
it must scan OOB metadata to reconstruct the map.  Following the paper,
we charge the *best case*: reading just enough OOB area to equal the
size of the mapping table.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import TimingModel
from repro.ftl.hybrid import HybridFTL, HybridFTLConfig
from repro.ftl.pagemap import PageMapFTL, PageMapFTLConfig
from repro.sim.completion import Completion
from repro.sim.crash import CrashInjector


class SSD:
    """A fixed-capacity solid-state drive.

    ``mapping`` selects the translation layer: ``"hybrid"`` (the
    FAST-style layout the paper attributes to conventional SSDs, the
    default) or ``"page"`` (a DFTL-style fully page-mapped FTL, for the
    mapping-granularity ablation).
    """

    def __init__(
        self,
        geometry: Optional[FlashGeometry] = None,
        timing: Optional[TimingModel] = None,
        config: Optional[HybridFTLConfig] = None,
        mapping: str = "hybrid",
        page_config: Optional[PageMapFTLConfig] = None,
    ):
        self.chip = FlashChip(geometry, timing)
        if mapping == "hybrid":
            self.ftl = HybridFTL(self.chip, config)
        elif mapping == "page":
            self.ftl = PageMapFTL(self.chip, page_config)
        else:
            raise ConfigError("mapping must be 'hybrid' or 'page'")

    def attach_injector(self, injector: CrashInjector) -> None:
        """Wire a crash injector into the chip's program-path boundaries."""
        self.chip.crash_injector = injector

    # ---- capacity --------------------------------------------------------

    @property
    def capacity_pages(self) -> int:
        """Logical capacity in 4 KB pages (raw minus over-provisioning)."""
        return self.ftl.logical_pages

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_pages * self.chip.geometry.page_size

    @property
    def stats(self):
        return self.ftl.stats

    # ---- block interface ---------------------------------------------------

    def _capture(self, body: Callable[[], float]) -> Completion:
        """Run ``body`` under an op capture; wrap its cost in a
        :class:`Completion` attributing time to the planes it used."""
        recorder = self.chip.op_recorder
        mark = recorder.begin()
        try:
            cost = body()
        except BaseException:
            recorder.end(mark)
            raise
        return Completion(cost, recorder.end(mark))

    def read(self, lpn: int) -> Tuple[Any, Completion]:
        """Read logical page ``lpn``; returns (data, completion)."""
        result: List[Any] = []

        def body() -> float:
            data, cost = self.ftl.read(lpn)
            result.append(data)
            return cost

        completion = self._capture(body)
        return result[0], completion

    def write(self, lpn: int, data: Any, dirty: bool = False) -> Completion:
        """Write logical page ``lpn``; returns the completion."""
        return self._capture(lambda: self.ftl.write(lpn, data, dirty=dirty))

    def trim(self, lpn: int) -> Completion:
        """Discard logical page ``lpn`` (TRIM); returns the completion."""
        return self._capture(lambda: self.ftl.trim(lpn))

    def is_mapped(self, lpn: int) -> bool:
        """True if ``lpn`` holds written, untrimmed data."""
        return self.ftl.is_mapped(lpn)

    def set_page_dirty(self, lpn: int, dirty: bool) -> None:
        """Update the OOB dirty flag of ``lpn`` (native manager metadata)."""
        self.ftl.set_page_dirty(lpn, dirty)

    def background_collect(self, budget_us: float) -> float:
        """Spend up to ``budget_us`` of idle time recycling log blocks."""
        if budget_us < 0:
            raise ConfigError("budget_us must be >= 0")
        spent = 0.0
        while spent < budget_us:
            step = self.ftl.background_step()
            if step == 0.0:
                break
            spent += step
        return spent

    # ---- memory & recovery accounting ------------------------------------

    def device_memory_bytes(self) -> int:
        """Modeled device DRAM for the dense mapping tables (Table 4)."""
        return self.ftl.device_memory_bytes()

    def oob_recovery_scan_us(self) -> float:
        """Simulated time to rebuild the mapping from OOB areas.

        Best case per the paper: read just enough OOB bytes to equal the
        mapping-table size.  Each OOB read costs a full page-read latency
        because the page array must be sensed to access its OOB.
        """
        table_bytes = self.device_memory_bytes()
        oob = max(1, self.chip.geometry.oob_bytes)
        reads = -(-table_bytes // oob)  # ceil
        return reads * self.chip.timing.oob_read_cost()

    def __repr__(self) -> str:
        return f"SSD(capacity={self.capacity_bytes // (1 << 20)} MiB)"
