"""Flash translation layers and the SSD baseline device.

``HybridFTL`` is a FAST-style hybrid mapping FTL (block-mapped data
blocks plus page-mapped log blocks, with full/switch merges and garbage
collection) — the internal design the paper attributes to conventional
SSDs and extends inside the SSC.  ``SSD`` wraps it in the standard
read/write/trim block-device interface the native baseline caches on.
"""

from repro.ftl.base import FTLStats
from repro.ftl.mapping import DenseBlockMap, DensePageMap
from repro.ftl.hybrid import HybridFTL, HybridFTLConfig
from repro.ftl.pagemap import PageMapFTL, PageMapFTLConfig
from repro.ftl.wear import WearConfig, WearLeveler
from repro.ftl.ssd import SSD

__all__ = [
    "FTLStats",
    "DenseBlockMap",
    "DensePageMap",
    "HybridFTL",
    "HybridFTLConfig",
    "PageMapFTL",
    "PageMapFTLConfig",
    "WearConfig",
    "WearLeveler",
    "SSD",
]
