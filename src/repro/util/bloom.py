"""A counting-free Bloom filter over integer keys.

Section 4.2.1 of the paper notes that because SSC reads return a
not-present error, the cache manager may use an *approximate* structure
such as a Bloom filter to avoid issuing reads that will certainly miss.
The write-through manager can enable this as an optimization; false
positives only cost a device lookup, never a correctness violation.
"""

from __future__ import annotations

import math

from repro.util.bitmap import Bitmap

# Mixing constants from splitmix64; give well-distributed hashes for the
# sequential-ish integer keys block addresses tend to be.
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    value = (value + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * _MIX1) & _MASK
    value = ((value ^ (value >> 27)) * _MIX2) & _MASK
    return value ^ (value >> 31)


class BloomFilter:
    """Bloom filter sized for ``expected_items`` at ``fp_rate``."""

    def __init__(self, expected_items: int, fp_rate: float = 0.01):
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        ln2 = math.log(2)
        bits = int(math.ceil(-expected_items * math.log(fp_rate) / (ln2 * ln2)))
        self._bits = Bitmap(max(bits, 8))
        self.num_hashes = max(1, int(round(bits / expected_items * ln2)))
        self.expected_items = expected_items
        self._count = 0

    def _positions(self, key: int):
        # Kirsch-Mitzenmacher double hashing: h1 + i*h2 mod m.
        h1 = _splitmix64(key)
        h2 = _splitmix64(h1) | 1
        size = self._bits.size
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % size

    def add(self, key: int) -> None:
        """Record ``key`` in the filter."""
        for pos in self._positions(key):
            self._bits.set(pos)
        self._count += 1

    def might_contain(self, key: int) -> bool:
        """Return False only if ``key`` was definitely never added."""
        return all(self._bits.test(pos) for pos in self._positions(key))

    def __len__(self) -> int:
        return self._count

    def memory_bytes(self) -> int:
        """Bytes a C implementation would use for the bit array."""
        return (self._bits.size + 7) // 8

    def clear(self) -> None:
        """Reset the filter to empty."""
        self._bits.clear_all()
        self._count = 0
