"""An intrusive doubly-linked LRU list over integer keys.

The write-back cache managers (both FlashTier's and the native FlashCache
baseline) keep their cached/dirty blocks on an LRU chain so that ``clean``
and eviction candidates can be found in O(1).  The paper's native manager
stores two 2-byte prev/next indexes per block for exactly this structure;
we model the same list with a dict of nodes.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional


class _Node:
    __slots__ = ("key", "prev", "next")

    def __init__(self, key: int):
        self.key = key
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


class LRUList:
    """LRU ordering over integer keys; most-recently-used at the head."""

    def __init__(self):
        self._nodes: Dict[int, _Node] = {}
        self._head: Optional[_Node] = None
        self._tail: Optional[_Node] = None

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: int) -> bool:
        return key in self._nodes

    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = node.next = None

    def _push_front(self, node: _Node) -> None:
        node.next = self._head
        node.prev = None
        if self._head is not None:
            self._head.prev = node
        self._head = node
        if self._tail is None:
            self._tail = node

    def touch(self, key: int) -> None:
        """Insert ``key`` as most-recently-used, or move it to the front."""
        node = self._nodes.get(key)
        if node is None:
            node = _Node(key)
            self._nodes[key] = node
        else:
            self._unlink(node)
        self._push_front(node)

    def remove(self, key: int) -> bool:
        """Remove ``key``; return True if it was present."""
        node = self._nodes.pop(key, None)
        if node is None:
            return False
        self._unlink(node)
        return True

    def lru(self) -> Optional[int]:
        """Return the least-recently-used key, or None if empty."""
        return self._tail.key if self._tail is not None else None

    def mru(self) -> Optional[int]:
        """Return the most-recently-used key, or None if empty."""
        return self._head.key if self._head is not None else None

    def pop_lru(self) -> Optional[int]:
        """Remove and return the least-recently-used key."""
        if self._tail is None:
            return None
        key = self._tail.key
        self.remove(key)
        return key

    def iter_lru_to_mru(self) -> Iterator[int]:
        """Yield keys from least to most recently used.

        Snapshots the order first, so callers may remove the yielded keys
        while iterating.
        """
        keys = []
        node = self._tail
        while node is not None:
            keys.append(node.key)
            node = node.prev
        return iter(keys)

    def clear(self) -> None:
        """Drop every key."""
        self._nodes.clear()
        self._head = self._tail = None
