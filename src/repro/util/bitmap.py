"""A fixed-size bitmap with popcount support.

Used for sparse-hash-map group occupancy (one bit per bucket), per-erase-
block dirty-page bitmaps, and page-validity tracking.  Backed by a Python
integer, which gives free arbitrary width and fast popcounts via
``int.bit_count``.
"""

from __future__ import annotations


class Bitmap:
    """A mutable bitmap of ``size`` bits, all initially clear."""

    __slots__ = ("_bits", "size")

    def __init__(self, size: int):
        if size < 0:
            raise ValueError(f"bitmap size must be >= 0, got {size}")
        self.size = size
        self._bits = 0

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"bit {index} out of range [0, {self.size})")

    def set(self, index: int) -> None:
        """Set bit ``index`` to 1."""
        self._check(index)
        self._bits |= 1 << index

    def clear(self, index: int) -> None:
        """Set bit ``index`` to 0."""
        self._check(index)
        self._bits &= ~(1 << index)

    def test(self, index: int) -> bool:
        """Return True if bit ``index`` is 1."""
        self._check(index)
        return bool(self._bits >> index & 1)

    def count(self) -> int:
        """Return the number of set bits (popcount)."""
        return self._bits.bit_count()

    def count_below(self, index: int) -> int:
        """Return the number of set bits strictly below ``index``.

        This is the rank operation the sparse hash map uses to locate a
        bucket's slot within its group's packed value array.
        """
        self._check(index) if index < self.size else None
        if index <= 0:
            return 0
        mask = (1 << index) - 1
        return (self._bits & mask).bit_count()

    def clear_all(self) -> None:
        """Reset every bit to 0."""
        self._bits = 0

    def set_all(self) -> None:
        """Set every bit to 1."""
        self._bits = (1 << self.size) - 1

    def any(self) -> bool:
        """Return True if at least one bit is set."""
        return self._bits != 0

    def none(self) -> bool:
        """Return True if no bit is set."""
        return self._bits == 0

    def iter_set(self):
        """Yield indexes of set bits in ascending order."""
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def to_int(self) -> int:
        """Return the raw bit pattern as an integer (for serialization)."""
        return self._bits

    @classmethod
    def from_int(cls, size: int, bits: int) -> "Bitmap":
        """Reconstruct a bitmap from :meth:`to_int` output."""
        bitmap = cls(size)
        if bits >> size:
            raise ValueError("bit pattern wider than declared size")
        bitmap._bits = bits
        return bitmap

    def copy(self) -> "Bitmap":
        """Return an independent copy of this bitmap."""
        clone = Bitmap(self.size)
        clone._bits = self._bits
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self.size == other.size and self._bits == other._bits

    def __hash__(self):  # pragma: no cover - bitmaps are mutable
        raise TypeError("Bitmap is unhashable")

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"Bitmap(size={self.size}, set={self.count()})"
