"""Small reusable data structures shared across the library."""

from repro.util.bitmap import Bitmap
from repro.util.bloom import BloomFilter
from repro.util.checksum import crc32_of
from repro.util.lru import LRUList

__all__ = ["Bitmap", "BloomFilter", "LRUList", "crc32_of"]
