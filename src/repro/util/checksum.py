"""Checksum helpers.

The native FlashCache manager stores an optional 8-byte checksum per
cached block; the SSC checkpoint format checksums its serialized mapping
so recovery can detect torn checkpoint writes.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Tuple, Union

Chunk = Union[bytes, str, int, None]


def crc32_of(*parts: Chunk) -> int:
    """Return a CRC32 over a heterogeneous tuple of small values.

    Integers are encoded as their decimal representation with a type tag,
    which is unambiguous for the metadata tuples we checksum (sequence
    numbers, addresses, state flags).
    """
    crc = 0
    for part in parts:
        if part is None:
            data = b"\x00N"
        elif isinstance(part, int):
            data = b"i" + str(part).encode("ascii")
        elif isinstance(part, str):
            data = b"s" + part.encode("utf-8")
        else:
            data = b"b" + part
        crc = zlib.crc32(data, crc)
        crc = zlib.crc32(b"|", crc)
    return crc & 0xFFFFFFFF


def crc32_of_pairs(pairs: Iterable[Tuple[int, int]]) -> int:
    """CRC32 over an iterable of integer pairs (used by checkpoints)."""
    crc = 0
    for a, b in pairs:
        crc = zlib.crc32(f"{a}:{b};".encode("ascii"), crc)
    return crc & 0xFFFFFFFF


def crc32_of_payload(lbn: Union[int, None], data: object) -> int:
    """OOB checksum binding a page's payload to its logical address.

    The simulator stores opaque payload tokens rather than raw bytes, so
    the stable ``repr`` of the token stands in for the page contents.
    Covering ``lbn`` as well means a page whose data was damaged *or*
    whose reverse map was torn mid-program both fail verification.
    """
    return crc32_of(lbn, repr(data))
