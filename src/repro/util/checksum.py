"""Checksum helpers.

The native FlashCache manager stores an optional 8-byte checksum per
cached block; the SSC checkpoint format checksums its serialized mapping
so recovery can detect torn checkpoint writes.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Tuple, Union

Chunk = Union[bytes, str, int, None]


def crc32_of(*parts: Chunk) -> int:
    """Return a CRC32 over a heterogeneous tuple of small values.

    Integers are encoded as their decimal representation with a type tag,
    which is unambiguous for the metadata tuples we checksum (sequence
    numbers, addresses, state flags).
    """
    # One CRC pass over the joined encoding — bit-identical to feeding
    # zlib.crc32 chunk by chunk, at a fraction of the call overhead.
    chunks = []
    for part in parts:
        if part is None:
            chunks.append(b"\x00N|")
        elif isinstance(part, int):
            chunks.append(b"i%d|" % part)
        elif isinstance(part, str):
            chunks.append(b"s" + part.encode("utf-8") + b"|")
        else:
            chunks.append(b"b" + part + b"|")
    return zlib.crc32(b"".join(chunks)) & 0xFFFFFFFF


def crc32_of_pairs(pairs: Iterable[Tuple[int, int]]) -> int:
    """CRC32 over an iterable of integer pairs (used by checkpoints).

    One CRC pass over the joined encoding — bit-identical to feeding
    zlib.crc32 chunk by chunk, at a fraction of the call overhead.
    """
    return zlib.crc32(
        "".join(f"{a}:{b};" for a, b in pairs).encode("ascii")
    ) & 0xFFFFFFFF


def crc32_of_payload(lbn: Union[int, None], data: object) -> int:
    """OOB checksum binding a page's payload to its logical address.

    The simulator stores opaque payload tokens rather than raw bytes, so
    the stable ``repr`` of the token stands in for the page contents.
    Covering ``lbn`` as well means a page whose data was damaged *or*
    whose reverse map was torn mid-program both fail verification.
    """
    # Single-format fast path for crc32_of(lbn, repr(data)) — this runs
    # once per page program.
    prefix = b"\x00N|s" if lbn is None else b"i%d|s" % lbn
    return zlib.crc32(prefix + repr(data).encode("utf-8") + b"|") & 0xFFFFFFFF
