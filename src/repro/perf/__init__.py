"""Wall-clock performance harness (``repro bench``).

The simulator's other benchmarks measure *simulated* quantities —
IOPS of the modeled device, erase counts, miss rates.  This package
measures the simulator itself: how many trace records per second of
*wall-clock* time the replay pipeline sustains.  Every PR inherits the
committed ``BENCH_wallclock.json`` baseline at the repo root, and CI
fails when throughput regresses beyond tolerance, so the performance
trajectory of the hot paths is part of the test surface.
"""

from repro.perf.wallclock import (
    BENCH_FILENAME,
    SCHEMA_VERSION,
    ZIPF_PROFILE,
    compare_reports,
    default_matrix,
    quick_matrix,
    run_bench,
    validate_report,
)

__all__ = [
    "BENCH_FILENAME",
    "SCHEMA_VERSION",
    "ZIPF_PROFILE",
    "compare_reports",
    "default_matrix",
    "quick_matrix",
    "run_bench",
    "validate_report",
]
