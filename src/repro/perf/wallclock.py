"""Reproducible wall-clock benchmark of the replay pipeline.

A *scenario* fixes everything the simulator sees — workload profile,
RNG seed, scale, manager kind, write mode, queue depth — so the work
performed is bit-identical across machines and commits.  What varies is
how fast the host executes it: ``records_per_sec`` is the wall-clock
throughput of the whole replay pipeline (trace dispatch, manager, FTL,
sparse map, completion tracing, event scheduling).

The report schema is versioned and append-only (see
:meth:`~repro.stats.counters.ReplayStats.to_dict`): tools that compare
``BENCH_wallclock.json`` files across PRs may rely on every existing
key keeping its meaning.

Comparison policy (:func:`compare_reports`): wall-clock throughput may
regress up to ``max_regress`` (CI uses 20 %) before the gate fails;
*simulated* metrics (IOPS, hit counts) are deterministic for a fixed
scenario, so drift there is reported as a warning — it means device
semantics changed, which the differential test layer must have blessed.
"""

from __future__ import annotations

import platform
import time
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.config import CacheMode, SystemConfig, SystemKind
from repro.core.flashtier import build_system
from repro.traces.synthetic import PROFILES, WorkloadProfile, generate_trace

#: Bump when a key is renamed/removed (never do that) or re-interpreted.
SCHEMA_VERSION = 1

#: Canonical baseline location at the repo root.
BENCH_FILENAME = "BENCH_wallclock.json"

#: §6.5 warm-up, same convention as the simulated-results benchmarks.
WARMUP_FRACTION = 0.15

#: The reference Zipf workload: pure skewed random references, no
#: sequential runs, a 70/30 read/write mix.  This is the acceptance
#: workload for hot-path optimizations — it hammers the sparse map and
#: the log-write path without the sequential-log fast paths masking
#: anything.
ZIPF_PROFILE = WorkloadProfile(
    name="zipf",
    address_range_blocks=200_000,
    unique_blocks=20_000,
    total_ops=60_000,
    write_fraction=0.30,
    zipf_alpha=1.1,
    sequential_prob=0.0,
    run_length_mean=1,
)

#: The three managers of the paper's comparison, one per system kind:
#: the native FlashCache manager (write-back), the FlashTier
#: write-through manager on the SSC, and the FlashTier write-back
#: manager on the SSC-R.
SYSTEMS: Tuple[Tuple[SystemKind, CacheMode], ...] = (
    (SystemKind.NATIVE, CacheMode.WRITE_BACK),
    (SystemKind.SSC, CacheMode.WRITE_THROUGH),
    (SystemKind.SSC_R, CacheMode.WRITE_BACK),
)


def _profile(name: str) -> WorkloadProfile:
    if name == ZIPF_PROFILE.name:
        return ZIPF_PROFILE
    return PROFILES[name]


def default_matrix() -> Dict[str, Sequence]:
    """The full committed-baseline matrix."""
    return {
        "workloads": ("zipf", "homes", "usr"),
        "queue_depths": (1, 8, 32),
        "scale": 0.05,
        "seed": 1,
    }


def quick_matrix() -> Dict[str, Sequence]:
    """A CI-sized subset (perf smoke): one workload, two depths.

    Scale and seed match :func:`default_matrix` so the shared scenarios
    are bit-identical with the committed baseline — the compare step
    then reports only genuine drift, never scale-mismatch noise.
    """
    return {
        "workloads": ("zipf",),
        "queue_depths": (1, 8),
        "scale": 0.05,
        "seed": 1,
    }


def _scenario_key(entry: Dict) -> Tuple:
    # "shards" joined the schema after the baseline was committed;
    # entries written before it default to the single-device value.
    return (
        entry["workload"],
        entry["system"],
        entry["mode"],
        entry["queue_depth"],
        entry.get("shards", 1),
    )


def _measure_recovery(system) -> Dict:
    """Crash the cache device and time its simulated recovery.

    Returns ``parallel_us`` (the array recovers members concurrently:
    max over shards), ``serial_us`` (back-to-back: the sum) and the
    ``per_shard_us`` breakdown.  On a single device all three collapse
    to the one recovery cost.  Runs *after* the timed replay, so it
    never pollutes the wall-clock measurement.
    """
    device = system.ssc
    device.crash()
    parallel_us = device.recover()
    per_shard = list(getattr(device, "last_recovery_costs", ()) or (parallel_us,))
    return {
        "parallel_us": parallel_us,
        "serial_us": sum(per_shard),
        "per_shard_us": per_shard,
    }


def run_bench(
    workloads: Iterable[str] = ("zipf", "homes", "usr"),
    queue_depths: Iterable[int] = (1, 8, 32),
    scale: float = 0.05,
    seed: int = 1,
    systems: Sequence[Tuple[SystemKind, CacheMode]] = SYSTEMS,
    shards: int = 1,
    progress=None,
) -> Dict:
    """Run the benchmark matrix; returns the schema-versioned report.

    ``shards`` builds every cache device as an array of that many
    members at fixed total capacity; SSC scenarios then also record a
    post-replay recovery measurement (``recovery`` entry key, new in
    the sharding PR — absent from older reports, so comparisons treat
    it as optional).  ``progress`` is an optional callable invoked with
    one line per completed scenario (the CLI passes ``print``).
    """
    results: List[Dict] = []
    for workload in workloads:
        profile = _profile(workload).scaled(scale)
        trace = generate_trace(profile, seed=seed)
        records = trace.records
        for kind, mode in systems:
            for depth in queue_depths:
                system = build_system(
                    SystemConfig(
                        kind=kind,
                        mode=mode,
                        cache_blocks=profile.cache_blocks(),
                        disk_blocks=profile.address_range_blocks,
                        shards=shards,
                    )
                )
                begin = time.perf_counter()
                stats = system.replay(
                    records,
                    warmup_fraction=WARMUP_FRACTION,
                    queue_depth=depth,
                )
                wallclock_s = time.perf_counter() - begin
                entry = {
                    "workload": workload,
                    "system": kind.value,
                    "mode": mode.value,
                    "queue_depth": depth,
                    "shards": shards,
                    "records": len(records),
                    "wallclock_s": wallclock_s,
                    "records_per_sec": (
                        len(records) / wallclock_s if wallclock_s > 0 else 0.0
                    ),
                    "sim": stats.to_dict(),
                }
                if system.ssc is not None:
                    entry["recovery"] = _measure_recovery(system)
                results.append(entry)
                if progress is not None:
                    line = (
                        f"  {workload:<6} {kind.value:<6} {mode.value} "
                        f"QD={depth:<3} {entry['records_per_sec']:>10,.0f} rec/s "
                        f"(sim {stats.iops():,.0f} IOPS)"
                    )
                    if "recovery" in entry and shards > 1:
                        recovery = entry["recovery"]
                        line += (
                            f" recovery {recovery['parallel_us']:,.0f} us "
                            f"(serial {recovery['serial_us']:,.0f} us)"
                        )
                    progress(line)
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "workloads": list(workloads),
            "queue_depths": list(queue_depths),
            "scale": scale,
            "seed": seed,
            "shards": shards,
            "warmup_fraction": WARMUP_FRACTION,
            "systems": [
                {"system": kind.value, "mode": mode.value} for kind, mode in systems
            ],
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "results": results,
    }


def validate_report(report: Dict) -> None:
    """Raise ValueError unless ``report`` matches the schema."""
    if not isinstance(report, dict):
        raise ValueError("report must be a JSON object")
    if report.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {report.get('schema_version')!r}"
        )
    for section in ("config", "host", "results"):
        if section not in report:
            raise ValueError(f"report is missing the {section!r} section")
    if not isinstance(report["results"], list) or not report["results"]:
        raise ValueError("results must be a non-empty list")
    entry_keys = {
        "workload", "system", "mode", "queue_depth",
        "records", "wallclock_s", "records_per_sec", "sim",
    }
    sim_keys = {
        "ops", "reads", "writes", "read_hits", "read_misses",
        "elapsed_us", "queue_depth", "iops", "miss_rate_pct",
        "latency", "service", "queue_wait", "device_busy_us",
    }
    latency_keys = {"count", "mean_us", "max_us", "total_us"}
    seen = set()
    for entry in report["results"]:
        missing = entry_keys - set(entry)
        if missing:
            raise ValueError(f"result entry missing keys: {sorted(missing)}")
        key = _scenario_key(entry)
        if key in seen:
            raise ValueError(f"duplicate scenario {key}")
        seen.add(key)
        sim = entry["sim"]
        missing = sim_keys - set(sim)
        if missing:
            raise ValueError(f"sim block missing keys: {sorted(missing)}")
        for dist in ("latency", "service", "queue_wait"):
            missing = latency_keys - set(sim[dist])
            if missing:
                raise ValueError(
                    f"sim.{dist} missing keys: {sorted(missing)}"
                )


def compare_reports(
    current: Dict, baseline: Dict, max_regress: float = 0.20
) -> Tuple[List[str], List[str]]:
    """Compare a fresh run against a committed baseline.

    Returns ``(failures, warnings)``.  A failure is a wall-clock
    throughput regression beyond ``max_regress`` on a scenario present
    in both reports; a warning is simulated-metric drift (deterministic
    for a fixed scenario, so it signals a semantic change) or a
    scenario present on only one side.
    """
    validate_report(current)
    validate_report(baseline)
    failures: List[str] = []
    warnings: List[str] = []
    base_by_key = {_scenario_key(e): e for e in baseline["results"]}
    current_by_key = {_scenario_key(e): e for e in current["results"]}

    for key in base_by_key.keys() - current_by_key.keys():
        warnings.append(f"scenario {key} in baseline but not in this run")
    for key in current_by_key.keys() - base_by_key.keys():
        warnings.append(f"scenario {key} new in this run (no baseline)")

    for key in sorted(base_by_key.keys() & current_by_key.keys()):
        base, cur = base_by_key[key], current_by_key[key]
        base_rps, cur_rps = base["records_per_sec"], cur["records_per_sec"]
        if base_rps > 0 and cur_rps < base_rps * (1.0 - max_regress):
            failures.append(
                f"{key}: {cur_rps:,.0f} rec/s is "
                f"{100 * (1 - cur_rps / base_rps):.1f}% below baseline "
                f"{base_rps:,.0f} rec/s (tolerance {100 * max_regress:.0f}%)"
            )
        if base["records"] != cur["records"]:
            warnings.append(
                f"{key}: trace length changed "
                f"({base['records']} -> {cur['records']})"
            )
            continue
        for metric in ("iops", "read_hits", "read_misses", "elapsed_us"):
            if base["sim"][metric] != cur["sim"][metric]:
                warnings.append(
                    f"{key}: simulated {metric} drifted "
                    f"({base['sim'][metric]} -> {cur['sim'][metric]}); "
                    "device semantics changed"
                )
    return failures, warnings
