"""Attaching a tracer to an assembled system.

Instrumented components never import :mod:`repro.obs`; they carry a
class-level ``tracer = None`` attribute and guard each emission with
``if self.tracer is not None``.  This module is the one place that
knows the object graph — manager → cache device (possibly a sharded
array) → engine/FTL, operation log, checkpoint store, flash planes —
and points every component at one shared :class:`~repro.obs.trace.Tracer`.

Passing ``tracer=None`` detaches, restoring the zero-cost default.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.obs.trace import Tracer


def _instrument_chip(chip: Any, tracer: Optional[Tracer]) -> List[Any]:
    planes = getattr(chip, "planes", None)
    if not planes:
        return []
    for plane in planes:
        plane.tracer = tracer
    return list(planes)


def _instrument_device(device: Any, tracer: Optional[Tracer]) -> List[Any]:
    """Point one cache device (or array) at ``tracer``; returns the
    instrumented components (for tests)."""
    touched: List[Any] = []

    shards = getattr(device, "shards", None)
    if isinstance(shards, list):           # ShardedSSC: array + members
        device.tracer = tracer             # shard.route emissions
        touched.append(device)
        for member in shards:
            touched.extend(_instrument_device(member, tracer))
        return touched

    ssds = getattr(device, "ssds", None)
    if isinstance(ssds, list):             # ShardedSSD: members only
        for member in ssds:
            touched.extend(_instrument_device(member, tracer))
        return touched

    # Bare SolidStateCache or SSD.
    device.tracer = tracer
    touched.append(device)
    for attr in ("engine", "ftl"):         # CacheFTL / HybridFTL / PageMapFTL
        component = getattr(device, attr, None)
        if component is not None:
            component.tracer = tracer
            touched.append(component)
    for attr in ("oplog", "checkpoints"):
        component = getattr(device, attr, None)
        if component is not None:
            component.tracer = tracer
            touched.append(component)
    chip = getattr(device, "chip", None)
    if chip is not None:
        touched.extend(_instrument_chip(chip, tracer))
    return touched


def instrument_system(system: Any, tracer: Optional[Tracer]) -> List[Any]:
    """Attach ``tracer`` to every emitting component of ``system``.

    ``system`` is a :class:`~repro.core.flashtier.FlashTierSystem` (or
    anything with ``manager`` and ``device``).  Returns the list of
    instrumented components.  ``tracer=None`` detaches.
    """
    touched: List[Any] = []
    manager = getattr(system, "manager", None)
    if manager is not None:
        manager.tracer = tracer            # read by the replay loops
        touched.append(manager)
    device = getattr(system, "device", None)
    if device is not None:
        touched.extend(_instrument_device(device, tracer))
    return touched
