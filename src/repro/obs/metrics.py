"""The metrics registry: named counters, gauges and histograms.

The simulator already keeps excellent numbers — ``FTLStats``,
``ManagerStats``, ``FlashStats``, ``ReplayStats``, the log and
checkpoint counters — but they live in per-layer dataclasses with
per-layer ``to_dict`` spellings.  The registry puts one namespaced
facade over all of them: every metric is *declared* with a kind and a
prose description (:mod:`repro.obs.catalog`), populated from the
authoritative layer counters after a run, and exported as a
:class:`MetricsSnapshot`.

Snapshots form the same commutative monoid the sharded stat merges
do: ``merge`` adds two snapshots (shard A + shard B = array),
``diff`` subtracts a baseline (after - before = this phase), and the
empty snapshot is the identity.  The hypothesis tests in
``tests/test_obs_metrics.py`` pin those laws.

Histograms use fixed upper-bound buckets (Prometheus ``le``
semantics: a sample lands in the first bucket whose bound is >= the
value, or in the overflow bucket).  Fixed bounds are what make
``merge`` well-defined — two histograms merge by adding counts only
when their bounds agree.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing count (events, pages, erases)."""

    kind = "counter"
    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str):
        self.name = name
        self.description = description
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def set(self, value: float) -> None:
        """Overwrite the count (used when populating from layer stats)."""
        self.value = float(value)


class Gauge:
    """A point-in-time level (bytes of metadata, utilization)."""

    kind = "gauge"
    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str):
        self.name = name
        self.description = description
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution with ``le`` (inclusive upper bound)
    semantics plus an overflow bucket.

    ``counts`` has ``len(bounds) + 1`` entries; ``counts[i]`` is the
    number of samples with ``bounds[i-1] < x <= bounds[i]`` and the
    final entry counts samples above the last bound.
    """

    kind = "histogram"
    __slots__ = ("name", "description", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, description: str,
                 bounds: Sequence[float]):
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one "
                             "bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name!r} bounds must be strictly increasing"
            )
        self.name = name
        self.description = description
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Holds declared metrics; the single place descriptions live.

    Declaration order is preserved — it is the order ``docs/metrics.md``
    renders.  Redeclaring a name, or declaring it with an empty
    description, is an error: an undocumented metric must not exist.
    """

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def _declare(self, metric) -> Any:
        if metric.name in self._metrics:
            raise ValueError(f"metric {metric.name!r} already declared")
        if not metric.description:
            raise ValueError(f"metric {metric.name!r} needs a description")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, description: str) -> Counter:
        return self._declare(Counter(name, description))

    def gauge(self, name: str, description: str) -> Gauge:
        return self._declare(Gauge(name, description))

    def histogram(self, name: str, description: str,
                  bounds: Sequence[float]) -> Histogram:
        return self._declare(Histogram(name, description, bounds))

    def get(self, name: str) -> Any:
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> "MetricsSnapshot":
        """Freeze current values into an immutable, mergeable snapshot."""
        counters = {m.name: m.value for m in self if m.kind == "counter"}
        gauges = {m.name: m.value for m in self if m.kind == "gauge"}
        histograms = {
            m.name: {
                "bounds": list(m.bounds),
                "counts": list(m.counts),
                "count": m.count,
                "sum": m.sum,
            }
            for m in self if m.kind == "histogram"
        }
        return MetricsSnapshot(counters, gauges, histograms)


class MetricsSnapshot:
    """Frozen metric values supporting ``merge``/``diff``/``to_dict``.

    ``merge`` is commutative and associative with the empty snapshot
    as identity: counters and histogram counts/sums add, and gauges
    add too — for the levels we track (memory bytes, busy time) the
    sum across shards is the meaningful array-level value, and
    addition is what keeps the monoid laws exact.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self,
                 counters: Optional[Mapping[str, float]] = None,
                 gauges: Optional[Mapping[str, float]] = None,
                 histograms: Optional[Mapping[str, Mapping[str, Any]]] = None):
        self.counters: Dict[str, float] = dict(counters or {})
        self.gauges: Dict[str, float] = dict(gauges or {})
        self.histograms: Dict[str, Dict[str, Any]] = {
            name: {
                "bounds": list(h["bounds"]),
                "counts": list(h["counts"]),
                "count": h["count"],
                "sum": h["sum"],
            }
            for name, h in (histograms or {}).items()
        }

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        return cls()

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Pointwise sum of two snapshots (shards -> array)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = gauges.get(name, 0.0) + value
        histograms = {
            name: {
                "bounds": list(h["bounds"]),
                "counts": list(h["counts"]),
                "count": h["count"],
                "sum": h["sum"],
            }
            for name, h in self.histograms.items()
        }
        for name, theirs in other.histograms.items():
            mine = histograms.get(name)
            if mine is None:
                histograms[name] = {
                    "bounds": list(theirs["bounds"]),
                    "counts": list(theirs["counts"]),
                    "count": theirs["count"],
                    "sum": theirs["sum"],
                }
                continue
            if list(mine["bounds"]) != list(theirs["bounds"]):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds differ"
                )
            mine["counts"] = [a + b for a, b in
                              zip(mine["counts"], theirs["counts"])]
            mine["count"] += theirs["count"]
            mine["sum"] += theirs["sum"]
        return MetricsSnapshot(counters, gauges, histograms)

    def diff(self, baseline: "MetricsSnapshot") -> "MetricsSnapshot":
        """Pointwise subtraction: ``after.diff(before)`` isolates a phase.

        Inverse of ``merge``: ``a.merge(b).diff(b)`` equals ``a`` on
        every metric present in ``a``.
        """
        counters = dict(self.counters)
        for name, value in baseline.counters.items():
            counters[name] = counters.get(name, 0.0) - value
        gauges = dict(self.gauges)
        for name, value in baseline.gauges.items():
            gauges[name] = gauges.get(name, 0.0) - value
        histograms = {
            name: {
                "bounds": list(h["bounds"]),
                "counts": list(h["counts"]),
                "count": h["count"],
                "sum": h["sum"],
            }
            for name, h in self.histograms.items()
        }
        for name, theirs in baseline.histograms.items():
            mine = histograms.get(name)
            if mine is None:
                histograms[name] = {
                    "bounds": list(theirs["bounds"]),
                    "counts": [-c for c in theirs["counts"]],
                    "count": -theirs["count"],
                    "sum": -theirs["sum"],
                }
                continue
            if list(mine["bounds"]) != list(theirs["bounds"]):
                raise ValueError(
                    f"cannot diff histogram {name!r}: bucket bounds differ"
                )
            mine["counts"] = [a - b for a, b in
                              zip(mine["counts"], theirs["counts"])]
            mine["count"] -= theirs["count"]
            mine["sum"] -= theirs["sum"]
        return MetricsSnapshot(counters, gauges, histograms)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: {
                    "bounds": list(h["bounds"]),
                    "counts": list(h["counts"]),
                    "count": h["count"],
                    "sum": h["sum"],
                }
                for name, h in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsSnapshot":
        return cls(payload.get("counters", {}),
                   payload.get("gauges", {}),
                   payload.get("histograms", {}))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (f"MetricsSnapshot(counters={len(self.counters)}, "
                f"gauges={len(self.gauges)}, "
                f"histograms={len(self.histograms)})")


def histogram_rows(hist: Mapping[str, Any]) -> List[Tuple[str, int]]:
    """Bucket label/count pairs for display (``<=bound`` then ``+Inf``)."""
    bounds: Iterable[float] = hist["bounds"]
    labels = [f"<= {bound:g}" for bound in bounds] + ["+Inf"]
    return list(zip(labels, hist["counts"]))
