"""Unified observability: structured tracing + a documented metrics registry.

Three pieces (see ``docs/observability.md``):

* the **trace bus** — :class:`Tracer`, typed :class:`TraceEvent`\\ s,
  ring-buffer/JSONL sinks and a Chrome ``trace_event`` exporter
  (:func:`write_chrome_trace`) for Perfetto;
* the **metrics registry** — declared counters/gauges/histograms with
  monoid snapshot/diff/merge (:func:`collect` populates one from a
  system's layer counters);
* the **schema** — every event and metric is declared with a prose
  description, and :func:`metrics_markdown` regenerates
  ``docs/metrics.md`` from those declarations (CI checks for drift).

Tracing is zero-cost when off: nothing in the simulator imports this
package; emitting classes carry ``tracer = None`` and
:func:`instrument_system` flips them to a live tracer.
"""

from repro.obs.catalog import LATENCY_BUCKETS_US, METRICS, build_registry, collect
from repro.obs.events import EVENT_TYPES, EventSpec, declare_event
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.report import format_report, load_events, summarize
from repro.obs.schema import metrics_markdown
from repro.obs.trace import (
    JsonlSink,
    RingBufferSink,
    TraceEvent,
    Tracer,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.wire import instrument_system

__all__ = [
    "EVENT_TYPES",
    "EventSpec",
    "declare_event",
    "LATENCY_BUCKETS_US",
    "METRICS",
    "build_registry",
    "collect",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "format_report",
    "load_events",
    "summarize",
    "metrics_markdown",
    "JsonlSink",
    "RingBufferSink",
    "TraceEvent",
    "Tracer",
    "chrome_trace_events",
    "write_chrome_trace",
    "instrument_system",
]
