"""The trace-event catalog: every event type the simulator can emit.

Instrumentation is self-documenting: an event type must be declared
here — with a category, a lane hint and a prose description — before
any code may emit it.  :class:`~repro.obs.trace.Tracer` rejects
undeclared names, and ``python -m repro obs schema --markdown``
renders this catalog (plus the metric catalog) into ``docs/metrics.md``,
which CI checks for drift, so the documentation cannot fall behind the
code.

Field lists are part of the declaration: the golden trace-schema test
pins each event's argument keys, so adding or renaming a field is a
visible, reviewed change rather than silent drift.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Tuple


class EventSpec(NamedTuple):
    """Declaration of one trace-event type."""

    name: str            # dotted, "<category>.<what>"
    category: str        # Chrome trace "cat"; groups lanes in Perfetto
    lane: str            # which timeline the event lands on
    description: str     # one sentence; rendered into docs/metrics.md
    fields: Tuple[str, ...]  # argument keys the emitter attaches


#: Every declared event type, in declaration order (the order
#: ``docs/metrics.md`` lists them in).
EVENT_TYPES: Dict[str, EventSpec] = {}


def declare_event(name: str, category: str, lane: str, description: str,
                  fields: Tuple[str, ...] = ()) -> EventSpec:
    """Register an event type; returns its spec.

    Raises ``ValueError`` on redeclaration or a missing description —
    an undocumented event must not exist.
    """
    if name in EVENT_TYPES:
        raise ValueError(f"event type {name!r} already declared")
    if not description:
        raise ValueError(f"event type {name!r} needs a description")
    spec = EventSpec(name, category, lane, description, tuple(fields))
    EVENT_TYPES[name] = spec
    return spec


# ---------------------------------------------------------------------------
# Request path (emitted by the replay loops)
# ---------------------------------------------------------------------------

declare_event(
    "op.issue", "op", "requests",
    "One trace request, dispatch to completion: its kind, logical block, "
    "cache hit/miss outcome and end-to-end latency (the event duration).",
    ("kind", "lbn", "hit", "queue_wait_us"),
)
declare_event(
    "op.device", "op", "per device resource",
    "One timed device operation (page read/program, erase, disk transfer) "
    "laid on its contended resource's lane, so plane- and shard-level "
    "concurrency is visible in Perfetto.",
    ("kind",),
)

# ---------------------------------------------------------------------------
# Garbage collection and silent eviction (FTL / cache engine)
# ---------------------------------------------------------------------------

declare_event(
    "gc.victim", "gc", "gc",
    "Garbage collection selected a victim log block to merge: its physical "
    "block number and how many of its pages were still live.",
    ("pbn", "valid_pages"),
)
declare_event(
    "gc.merge", "gc", "gc",
    "One merge executed: kind is 'switch' (log block promoted in place, no "
    "copies), 'partial' (tail of the group copied first) or 'full' (every "
    "live page of the group copied); copies counts the page programs it "
    "cost.  Duration is the merge's simulated time.",
    ("kind", "group", "copies"),
)
declare_event(
    "evict.silent", "evict", "gc",
    "Silent eviction dropped one clean data block instead of copying it: "
    "the erase group it held, its physical block and how many live (clean) "
    "pages were discarded.",
    ("pbn", "group", "valid_pages"),
)

# ---------------------------------------------------------------------------
# Durability machinery (operation log, checkpoints, recovery)
# ---------------------------------------------------------------------------

declare_event(
    "log.append", "log", "log",
    "One mapping-change record entered the operation log's volatile "
    "buffer (durable at the next flush).",
    ("kind", "seq", "lbn"),
)
declare_event(
    "log.flush", "log", "log",
    "The operation log's buffer was made durable: synchronous commits sit "
    "on the request path, group commits amortize.  Duration is the flash "
    "program cost of the flushed pages.",
    ("sync", "records", "pages"),
)
declare_event(
    "checkpoint.begin", "checkpoint", "checkpoint",
    "A mapping checkpoint started (the covering log flush comes first).",
    ("seq",),
)
declare_event(
    "checkpoint.commit", "checkpoint", "checkpoint",
    "A mapping checkpoint reached flash in the non-active slot; duration "
    "is the erase + program cost of the serialized mapping.",
    ("seq", "pages", "bytes"),
)
declare_event(
    "recovery.phase", "recovery", "recovery",
    "One phase of roll-forward recovery (load_checkpoint, replay_log, "
    "materialize) with its simulated cost as the duration; count carries "
    "the phase's unit count (checkpoint entries, replayed records, "
    "reconciled blocks).",
    ("phase", "count"),
)

# ---------------------------------------------------------------------------
# Placement (flash planes, shard routing)
# ---------------------------------------------------------------------------

declare_event(
    "flash.alloc", "flash", "per plane",
    "A free erase block was taken from a plane's pool and assigned a role "
    "(DATA or LOG).",
    ("pbn", "kind"),
)
declare_event(
    "flash.release", "flash", "per plane",
    "An erased block returned to its plane's free pool.",
    ("pbn",),
)
declare_event(
    "shard.route", "shard", "router",
    "The sharded array routed one request's logical block to its owning "
    "member device.",
    ("lbn", "shard"),
)
