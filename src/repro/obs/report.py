"""Summarizing captured traces: ``repro trace report``.

Consumes the JSONL event stream a :class:`~repro.obs.trace.JsonlSink`
wrote (``repro replay --events-out``) and answers the questions the
paper's evaluation keeps asking:

* which erase groups cost the most garbage-collection time (top-N),
* where flash page writes actually went — user data, merge copies,
  log pages, checkpoint pages — i.e. the write-amplification
  breakdown behind Table 5's numbers,
* how long each roll-forward recovery phase took.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping

from repro.stats.report import format_table


def load_events(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace file into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not a JSON event line: {exc}"
                ) from None
    return events


def summarize(events: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace into the report's sections."""
    gc_by_group: Dict[int, Dict[str, float]] = {}
    merge_kinds: Dict[str, int] = {}
    wa = {
        "user_writes": 0,
        "gc_copies": 0,
        "log_pages": 0,
        "checkpoint_pages": 0,
        "evicted_valid_pages": 0,
        "silent_evictions": 0,
    }
    recovery_phases: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, int] = {}

    for event in events:
        name = event.get("name", "")
        args = event.get("args", {})
        dur = float(event.get("dur_us", 0.0))
        counts[name] = counts.get(name, 0) + 1
        if name == "op.issue":
            if args.get("kind") == "write":
                wa["user_writes"] += 1
        elif name == "gc.merge":
            kind = str(args.get("kind", "?"))
            merge_kinds[kind] = merge_kinds.get(kind, 0) + 1
            copies = int(args.get("copies", 0))
            wa["gc_copies"] += copies
            group = int(args.get("group", -1))
            entry = gc_by_group.setdefault(
                group, {"merges": 0, "copies": 0, "dur_us": 0.0}
            )
            entry["merges"] += 1
            entry["copies"] += copies
            entry["dur_us"] += dur
        elif name == "evict.silent":
            wa["silent_evictions"] += 1
            wa["evicted_valid_pages"] += int(args.get("valid_pages", 0))
        elif name == "log.flush":
            wa["log_pages"] += int(args.get("pages", 0))
        elif name == "checkpoint.commit":
            wa["checkpoint_pages"] += int(args.get("pages", 0))
        elif name == "recovery.phase":
            phase = str(args.get("phase", "?"))
            entry = recovery_phases.setdefault(
                phase, {"runs": 0, "count": 0, "dur_us": 0.0}
            )
            entry["runs"] += 1
            entry["count"] += int(args.get("count", 0))
            entry["dur_us"] += dur

    return {
        "event_counts": counts,
        "gc_by_group": gc_by_group,
        "merge_kinds": merge_kinds,
        "write_breakdown": wa,
        "recovery_phases": recovery_phases,
    }


def format_report(summary: Mapping[str, Any], top: int = 10) -> str:
    """Render :func:`summarize`'s output as plain-text tables."""
    sections: List[str] = []

    counts = summary["event_counts"]
    total = sum(counts.values())
    sections.append(format_table(
        ["event", "count"],
        [(name, counts[name]) for name in sorted(counts)],
        title=f"Captured events ({total} total)",
    ))

    wa = summary["write_breakdown"]
    overhead = wa["gc_copies"] + wa["log_pages"] + wa["checkpoint_pages"]
    user = wa["user_writes"]
    rows = [
        ("user writes", user, "the work requested"),
        ("gc merge copies", wa["gc_copies"],
         f"+{wa['gc_copies'] / user:.2f} per user write" if user else "-"),
        ("log pages", wa["log_pages"], "durability: operation log"),
        ("checkpoint pages", wa["checkpoint_pages"], "durability: checkpoints"),
        ("silently evicted pages", wa["evicted_valid_pages"],
         f"copies *avoided* across {wa['silent_evictions']} evictions"),
    ]
    title = "Write-amplification breakdown"
    if user:
        title += f" (overhead {overhead / user:.2f} pages per user write)"
    sections.append(format_table(["source", "pages", "note"], rows, title=title))

    gc = summary["gc_by_group"]
    if gc:
        ranked = sorted(
            gc.items(), key=lambda item: item[1]["dur_us"], reverse=True
        )[:top]
        sections.append(format_table(
            ["erase group", "merges", "copies", "gc time"],
            [
                (group, int(e["merges"]), int(e["copies"]),
                 f"{e['dur_us']:.0f}us")
                for group, e in ranked
            ],
            title=f"Top {min(top, len(gc))} GC-cost erase groups "
                  f"(of {len(gc)} merged)",
        ))

    phases = summary["recovery_phases"]
    if phases:
        order = {"load_checkpoint": 0, "replay_log": 1, "materialize": 2}
        sections.append(format_table(
            ["phase", "runs", "units", "time"],
            [
                (phase, int(e["runs"]), int(e["count"]), f"{e['dur_us']:.0f}us")
                for phase, e in sorted(
                    phases.items(), key=lambda kv: order.get(kv[0], 99)
                )
            ],
            title="Recovery phases",
        ))

    return "\n\n".join(sections)
