"""Rendering the observability catalogs to Markdown.

``python -m repro obs schema --markdown -o docs/metrics.md``
regenerates the reference documentation straight from the
declarations in :mod:`repro.obs.events` and :mod:`repro.obs.catalog`;
``--check`` compares instead of writing, which is the CI drift gate:
an event or metric added, renamed or re-described in code fails CI
until ``docs/metrics.md`` is regenerated and committed.
"""

from __future__ import annotations

from typing import List

from repro.obs.catalog import METRICS
from repro.obs.events import EVENT_TYPES

GENERATED_HEADER = (
    "<!-- GENERATED FILE - DO NOT EDIT BY HAND.\n"
    "     Regenerate with:  python -m repro obs schema --markdown "
    "-o docs/metrics.md -->\n"
)


def _escape(text: str) -> str:
    return text.replace("|", "\\|")


def metrics_markdown() -> str:
    """The full ``docs/metrics.md`` document as a string."""
    lines: List[str] = [
        GENERATED_HEADER,
        "# Trace events and metrics reference",
        "",
        "Every trace event and metric the simulator can emit, rendered",
        "from the declarations in `repro/obs/events.py` and",
        "`repro/obs/catalog.py`.  Declarations are the single source of",
        "truth: an undocumented event or metric cannot exist, and CI",
        "regenerates this file to catch drift.  See",
        "[observability.md](observability.md) for how to capture and",
        "read traces.",
        "",
        "## Trace events",
        "",
        "| Event | Category | Lane | Fields | Description |",
        "| --- | --- | --- | --- | --- |",
    ]
    for spec in EVENT_TYPES.values():
        fields = ", ".join(f"`{field}`" for field in spec.fields) or "—"
        lines.append(
            f"| `{spec.name}` | {spec.category} | {_escape(spec.lane)} "
            f"| {fields} | {_escape(spec.description)} |"
        )
    lines += [
        "",
        "## Metrics",
        "",
        "| Metric | Kind | Description |",
        "| --- | --- | --- |",
    ]
    for entry in METRICS:
        name, kind, description = entry[0], entry[1], entry[2]
        if kind == "histogram":
            bounds = ", ".join(f"{bound:g}" for bound in entry[3])
            description = f"{description} Buckets (µs): {bounds}, +Inf."
        lines.append(f"| `{name}` | {kind} | {_escape(description)} |")
    lines.append("")
    return "\n".join(lines)
