"""The trace bus: typed events, sinks, and the Chrome exporter.

Zero-cost-when-off by construction: instrumented components carry a
class-level ``tracer = None`` attribute and guard every emission with
``if self.tracer is not None``.  With no tracer attached the
simulation executes exactly the same arithmetic it always did — the
differential tests assert bit-identical results — and with one
attached, the only added work is building small event tuples.

Timestamps are *simulated* microseconds.  The replay loops push the
current dispatch time into the tracer (:meth:`Tracer.advance_to`)
before issuing each request, so events emitted deep inside the device
(log flushes, merges, evictions) are stamped with the simulated time
of the request that caused them.

Sinks receive every event:

* :class:`RingBufferSink` keeps the last N events in memory (the
  default for interactive use and for the Chrome exporter);
* :class:`JsonlSink` streams one JSON object per line to a file, the
  format ``repro trace report`` consumes.

:func:`write_chrome_trace` renders captured events in the Chrome
``trace_event`` JSON format: open the file in https://ui.perfetto.dev
or ``chrome://tracing`` and each resource — every flash plane of every
shard (the ``s<k>:plane:<n>`` lanes), the disk, the log, the GC — gets
its own named track.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Dict, IO, Iterable, List, Mapping, NamedTuple, Optional, Union

from repro.obs.events import EVENT_TYPES


class TraceEvent(NamedTuple):
    """One emitted event: a declared type plus its instance data."""

    name: str                 # key into EVENT_TYPES
    cat: str                  # category (copied from the spec)
    ts_us: float              # simulated start time
    dur_us: float             # simulated duration (0.0 for instants)
    lane: str                 # timeline this event belongs to
    args: Mapping[str, Any]   # per-instance fields

    def to_dict(self) -> Dict[str, Any]:
        """JSONL representation (one line of a :class:`JsonlSink` file)."""
        return {
            "name": self.name,
            "cat": self.cat,
            "ts_us": self.ts_us,
            "dur_us": self.dur_us,
            "lane": self.lane,
            "args": dict(self.args),
        }


class RingBufferSink:
    """Keeps the most recent ``capacity`` events; counts what it drops."""

    def __init__(self, capacity: int = 1_000_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.dropped = 0

    def accept(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def close(self) -> None:
        pass


class JsonlSink:
    """Streams events as JSON Lines to ``path`` (or an open file)."""

    def __init__(self, path_or_file: Union[str, "os.PathLike[str]", IO[str]]):
        if isinstance(path_or_file, (str, os.PathLike)):
            self._file: IO[str] = open(path_or_file, "w")
            self._owns = True
        else:
            self._file = path_or_file
            self._owns = False
        self.written = 0

    def accept(self, event: TraceEvent) -> None:
        json.dump(event.to_dict(), self._file, separators=(",", ":"))
        self._file.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._owns:
            self._file.close()
        else:
            self._file.flush()


class Tracer:
    """The trace bus: validates event types and fans them out to sinks.

    A tracer is attached to a system with
    :func:`repro.obs.wire.instrument_system`; detaching is simply
    attaching ``None``.  ``now_us`` is the current simulated time,
    advanced monotonically by the replay loops; emitters that know a
    better timestamp (the engine's per-op plane reservations) pass
    ``ts_us`` explicitly.
    """

    __slots__ = ("sinks", "now_us", "events_emitted")

    def __init__(self, *sinks):
        self.sinks = list(sinks) if sinks else [RingBufferSink()]
        self.now_us = 0.0
        self.events_emitted = 0

    @property
    def ring(self) -> Optional[RingBufferSink]:
        """The first ring-buffer sink, if any (convenience for exports)."""
        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink
        return None

    def advance_to(self, ts_us: float) -> None:
        """Move simulated time forward (never backward)."""
        if ts_us > self.now_us:
            self.now_us = ts_us

    def emit(self, name: str, lane: str = "", dur_us: float = 0.0,
             ts_us: Optional[float] = None, **args: Any) -> None:
        """Emit one event of declared type ``name``."""
        spec = EVENT_TYPES.get(name)
        if spec is None:
            raise ValueError(
                f"undeclared event type {name!r}; add it to repro.obs.events"
            )
        event = TraceEvent(
            name=name,
            cat=spec.category,
            ts_us=self.now_us if ts_us is None else ts_us,
            dur_us=dur_us,
            lane=lane,
            args=args,
        )
        self.events_emitted += 1
        for sink in self.sinks:
            sink.accept(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# ---------------------------------------------------------------------------
# Chrome trace_event export
# ---------------------------------------------------------------------------

def chrome_trace_events(events: Iterable[TraceEvent]) -> List[Dict[str, Any]]:
    """Convert events to Chrome ``trace_event`` dicts (one process,
    one named thread per lane).

    Events with a duration become complete ("X") slices; zero-duration
    events become instant ("i") marks.  Lane-name metadata ("M")
    records come first so Perfetto labels every track.
    """
    lanes: Dict[str, int] = {}
    out: List[Dict[str, Any]] = []
    body: List[Dict[str, Any]] = []
    for event in events:
        lane = event.lane or event.cat
        tid = lanes.get(lane)
        if tid is None:
            tid = len(lanes)
            lanes[lane] = tid
        entry: Dict[str, Any] = {
            "name": event.name,
            "cat": event.cat,
            "ts": event.ts_us,
            "pid": 0,
            "tid": tid,
            "args": dict(event.args),
        }
        if event.dur_us > 0.0:
            entry["ph"] = "X"
            entry["dur"] = event.dur_us
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        body.append(entry)
    for lane, tid in lanes.items():
        out.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": lane},
        })
    out.extend(body)
    return out


def write_chrome_trace(events: Iterable[TraceEvent],
                       path_or_file: Union[str, "os.PathLike[str]", IO[str]]) -> int:
    """Write ``events`` as a Perfetto-loadable Chrome trace JSON file.

    Returns the number of trace entries written (including lane
    metadata records).
    """
    entries = chrome_trace_events(events)
    document = {"traceEvents": entries, "displayTimeUnit": "ms"}
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "w") as handle:
            json.dump(document, handle)
            handle.write("\n")
    else:
        json.dump(document, path_or_file)
        path_or_file.write("\n")
    return len(entries)
