"""The metric catalog: every metric the simulator exports, documented.

Mirrors :mod:`repro.obs.events` for metrics: a metric exists only with
a declaration — name, kind and a prose description — and the catalog
is what ``python -m repro obs schema --markdown`` renders into
``docs/metrics.md``.

The layer dataclasses (:class:`~repro.manager.base.ManagerStats`,
:class:`~repro.ftl.base.FTLStats`, :class:`~repro.flash.chip.FlashStats`,
the log/checkpoint counters, :class:`~repro.stats.counters.ReplayStats`)
remain the authoritative accumulators — the hot paths keep bumping
plain attributes.  :func:`collect` copies them into a freshly built
registry after a run, so exporting metrics costs nothing while the
simulation executes.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot

#: Fixed latency histogram bucket upper bounds, in microseconds.  The
#: range spans a flash page read (~an SSC hit) through multi-disk-seek
#: misses; fixed bounds keep cross-run and cross-shard merges exact.
LATENCY_BUCKETS_US: Tuple[float, ...] = (
    50.0, 100.0, 200.0, 500.0, 1000.0,
    2000.0, 5000.0, 10000.0, 20000.0, 50000.0,
)

#: (name, kind, description) for every declared metric, in the order
#: ``docs/metrics.md`` lists them.  Histograms carry their bounds as a
#: fourth element.
METRICS: List[Tuple] = [
    # ---- cache manager (hit/miss accounting above the device) --------
    ("manager.reads", "counter",
     "Read requests the cache manager served."),
    ("manager.writes", "counter",
     "Write requests the cache manager served."),
    ("manager.read_hits", "counter",
     "Reads served from the cache device."),
    ("manager.read_misses", "counter",
     "Reads that had to go to disk."),
    ("manager.writebacks", "counter",
     "Dirty blocks written back to disk."),
    ("manager.cleans", "counter",
     "clean commands issued to the SSC (write-back manager)."),
    ("manager.evictions", "counter",
     "Manager-initiated evictions (native manager replacement)."),
    ("manager.metadata_writes", "counter",
     "Persisted manager-metadata updates (native write-back mode)."),
    # ---- FTL / cache engine ------------------------------------------
    ("ftl.user_reads", "counter",
     "Page reads performed on behalf of user requests."),
    ("ftl.user_writes", "counter",
     "Page programs performed on behalf of user requests."),
    ("ftl.gc_page_reads", "counter",
     "Page reads garbage-collection merges performed."),
    ("ftl.gc_page_writes", "counter",
     "Page programs garbage-collection merges performed; "
     "gc_page_writes / user_writes is the write amplification of "
     "Table 5."),
    ("ftl.meta_page_writes", "counter",
     "Flash pages written for durability metadata (operation log + "
     "checkpoints)."),
    ("ftl.full_merges", "counter",
     "Full merges: every live page of the erase group copied."),
    ("ftl.switch_merges", "counter",
     "Switch merges: a sequentially written log block promoted in "
     "place, zero copies."),
    ("ftl.partial_merges", "counter",
     "Partial merges: the sequential log block's tail completed before "
     "promotion."),
    ("ftl.silent_evictions", "counter",
     "Erase blocks the SSC reclaimed by dropping clean data instead of "
     "copying it (SE-Util / SE-Merge)."),
    ("ftl.evicted_valid_pages", "counter",
     "Live (clean) pages discarded by silent eviction."),
    # ---- flash chip --------------------------------------------------
    ("flash.page_reads", "counter",
     "Physical page reads the chip executed."),
    ("flash.page_writes", "counter",
     "Physical page programs the chip executed."),
    ("flash.block_erases", "counter",
     "Physical block erases the chip executed (wear)."),
    ("flash.oob_scans", "counter",
     "Out-of-band area scans (native OOB recovery path)."),
    ("flash.busy_us", "gauge",
     "Total simulated time flash planes spent busy."),
    # ---- operation log -----------------------------------------------
    ("log.sync_flushes", "counter",
     "Synchronous operation-log flushes (on the request path)."),
    ("log.async_flushes", "counter",
     "Asynchronous (group-commit) operation-log flushes."),
    ("log.records_written", "counter",
     "Mapping-change records made durable in the operation log."),
    ("log.pages_written", "counter",
     "Flash pages the operation log consumed."),
    ("log.erases", "counter",
     "Block erases spent recycling truncated log segments."),
    # ---- checkpoints -------------------------------------------------
    ("checkpoint.writes", "counter",
     "Mapping checkpoints committed (alternating-slot writes)."),
    ("checkpoint.pages_written", "counter",
     "Flash pages consumed by checkpoint commits."),
    # ---- replay-level results ----------------------------------------
    ("replay.ops", "counter",
     "Measured (post-warmup) trace requests replayed."),
    ("replay.reads", "counter",
     "Measured read requests replayed."),
    ("replay.writes", "counter",
     "Measured write requests replayed."),
    ("replay.read_hits", "counter",
     "Measured reads that hit the cache."),
    ("replay.read_misses", "counter",
     "Measured reads that missed to disk."),
    ("replay.elapsed_us", "gauge",
     "Simulated wall time of the measured window."),
    ("replay.latency_us", "histogram",
     "End-to-end request latency distribution over the measured window "
     "(requires latency samples, i.e. keep_latencies=True).",
     LATENCY_BUCKETS_US),
    # ---- memory footprint (Table 4) ----------------------------------
    ("memory.device_bytes", "gauge",
     "Modeled device RAM for mapping state."),
    ("memory.host_bytes", "gauge",
     "Modeled host RAM the cache manager needs."),
]


def build_registry() -> MetricsRegistry:
    """A fresh registry with every cataloged metric declared (at zero)."""
    registry = MetricsRegistry()
    for entry in METRICS:
        name, kind, description = entry[0], entry[1], entry[2]
        if kind == "counter":
            registry.counter(name, description)
        elif kind == "gauge":
            registry.gauge(name, description)
        elif kind == "histogram":
            registry.histogram(name, description, entry[3])
        else:  # pragma: no cover - catalog integrity
            raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
    return registry


def _log_stores(device: Any) -> List[Tuple[Any, Any]]:
    """(oplog, checkpoints) pairs for ``device`` — one per shard for a
    sharded SSC array, one for a bare SSC, none for a plain SSD."""
    shards = getattr(device, "shards", None)
    members = shards if isinstance(shards, list) else [device]
    pairs = []
    for member in members:
        oplog = getattr(member, "oplog", None)
        checkpoints = getattr(member, "checkpoints", None)
        if oplog is not None and checkpoints is not None:
            pairs.append((oplog, checkpoints))
    return pairs


def collect(system: Any,
            replay_stats: Optional[Any] = None) -> MetricsSnapshot:
    """Populate a registry from ``system``'s layer counters and return
    the snapshot.

    ``system`` is a :class:`~repro.core.flashtier.FlashTierSystem` (or
    anything exposing ``manager``/``device``); sharded arrays are
    handled transparently because their stats properties already merge
    across members.  ``replay_stats`` (a
    :class:`~repro.stats.counters.ReplayStats`) adds the replay-level
    results; the latency histogram fills only when the replay kept its
    samples.
    """
    registry = build_registry()
    manager = system.manager
    device = system.device

    ms = manager.stats
    registry.get("manager.reads").set(ms.reads)
    registry.get("manager.writes").set(ms.writes)
    registry.get("manager.read_hits").set(ms.read_hits)
    registry.get("manager.read_misses").set(ms.read_misses)
    registry.get("manager.writebacks").set(ms.writebacks)
    registry.get("manager.cleans").set(ms.cleans)
    registry.get("manager.evictions").set(ms.evictions)
    registry.get("manager.metadata_writes").set(ms.metadata_writes)

    fs = device.stats
    registry.get("ftl.user_reads").set(fs.user_reads)
    registry.get("ftl.user_writes").set(fs.user_writes)
    registry.get("ftl.gc_page_reads").set(fs.gc_page_reads)
    registry.get("ftl.gc_page_writes").set(fs.gc_page_writes)
    registry.get("ftl.meta_page_writes").set(fs.meta_page_writes)
    registry.get("ftl.full_merges").set(fs.full_merges)
    registry.get("ftl.switch_merges").set(fs.switch_merges)
    registry.get("ftl.partial_merges").set(fs.partial_merges)
    registry.get("ftl.silent_evictions").set(fs.silent_evictions)
    registry.get("ftl.evicted_valid_pages").set(fs.evicted_valid_pages)

    cs = device.chip.stats
    registry.get("flash.page_reads").set(cs.page_reads)
    registry.get("flash.page_writes").set(cs.page_writes)
    registry.get("flash.block_erases").set(cs.block_erases)
    registry.get("flash.oob_scans").set(cs.oob_scans)
    registry.get("flash.busy_us").set(cs.busy_us)

    for oplog, checkpoints in _log_stores(device):
        registry.get("log.sync_flushes").inc(oplog.sync_flushes)
        registry.get("log.async_flushes").inc(oplog.async_flushes)
        registry.get("log.records_written").inc(oplog.records_written)
        registry.get("log.pages_written").inc(oplog.pages_written)
        registry.get("log.erases").inc(oplog.erases)
        registry.get("checkpoint.writes").inc(checkpoints.writes)
        registry.get("checkpoint.pages_written").inc(checkpoints.pages_written)

    registry.get("memory.device_bytes").set(device.device_memory_bytes())
    registry.get("memory.host_bytes").set(manager.host_memory_bytes())

    if replay_stats is not None:
        registry.get("replay.ops").set(replay_stats.ops)
        registry.get("replay.reads").set(replay_stats.reads)
        registry.get("replay.writes").set(replay_stats.writes)
        registry.get("replay.read_hits").set(replay_stats.read_hits)
        registry.get("replay.read_misses").set(replay_stats.read_misses)
        registry.get("replay.elapsed_us").set(replay_stats.elapsed_us)
        histogram = registry.get("replay.latency_us")
        for sample in replay_stats.latency.samples:
            histogram.observe(sample)

    return registry.snapshot()
