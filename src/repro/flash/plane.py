"""Flash planes.

A plane owns a contiguous range of erase blocks and tracks which of them
are free (erased and unassigned).  Garbage collection in both the SSD and
the SSC operates plane-by-plane — the collector "selects a flash plane to
clean" (paper §4.3) — so free-block accounting lives here.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List

from repro.errors import InvalidAddressError
from repro.flash.block import BlockKind, EraseBlock


class Plane:
    """One flash plane: a block range plus a FIFO free list.

    Planes are also the unit of *parallelism*: a plane executes one
    operation at a time, so ``busy_until_us`` tracks when it next
    becomes available.  Operations on distinct planes may overlap in
    simulated time; operations on the same plane queue behind each
    other (the event-driven replay engine enforces this via
    :meth:`reserve`).
    """

    def __init__(self, plane_id: int, blocks: List[EraseBlock]):
        self.plane_id = plane_id
        self.blocks: Dict[int, EraseBlock] = {block.pbn: block for block in blocks}
        self._free: Deque[int] = deque(sorted(self.blocks))
        self.busy_until_us = 0.0

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def free_count(self) -> int:
        """Number of erased, unassigned blocks."""
        return len(self._free)

    def block(self, pbn: int) -> EraseBlock:
        """Look up a block owned by this plane."""
        try:
            return self.blocks[pbn]
        except KeyError:
            raise InvalidAddressError(
                f"block {pbn} not in plane {self.plane_id}"
            ) from None

    def allocate(self, kind: BlockKind) -> EraseBlock:
        """Take a free block (FIFO) and assign it role ``kind``.

        Raises IndexError if the plane has no free blocks; callers run
        garbage collection / silent eviction before hitting this.
        """
        if not self._free:
            raise IndexError(f"plane {self.plane_id} has no free blocks")
        pbn = self._free.popleft()
        block = self.blocks[pbn]
        block.kind = kind
        return block

    def allocate_specific(self, pbn: int, kind: BlockKind) -> EraseBlock:
        """Take a *particular* free block (wear-leveling allocation)."""
        try:
            self._free.remove(pbn)
        except ValueError:
            raise InvalidAddressError(
                f"block {pbn} is not free in plane {self.plane_id}"
            ) from None
        block = self.blocks[pbn]
        block.kind = kind
        return block

    def free_pbns(self):
        """Iterate the free blocks' numbers (oldest-freed first)."""
        return iter(self._free)

    def release(self, block: EraseBlock) -> None:
        """Return an erased block to the free list (after ``erase()``)."""
        if block.pbn not in self.blocks:
            raise InvalidAddressError(
                f"block {block.pbn} not in plane {self.plane_id}"
            )
        if block.kind is not BlockKind.FREE:
            raise ValueError(
                f"block {block.pbn} must be erased before release "
                f"(kind={block.kind.name})"
            )
        self._free.append(block.pbn)

    def is_free(self, pbn: int) -> bool:
        """True if block ``pbn`` sits on this plane's free list."""
        return pbn in self._free

    def reserve(self, start_us: float, duration_us: float):
        """Claim this plane for ``duration_us``, no earlier than ``start_us``.

        Returns ``(actual_start_us, finish_us)``: the operation begins
        when both the requester is ready *and* the plane is free, so a
        busy plane queues the operation while an idle one starts it
        immediately.
        """
        start = start_us if start_us >= self.busy_until_us else self.busy_until_us
        finish = start + duration_us
        self.busy_until_us = finish
        return start, finish

    def reset_busy(self) -> None:
        """Forget availability history (start of a measurement epoch)."""
        self.busy_until_us = 0.0

    def blocks_of_kind(self, kind: BlockKind) -> Iterable[EraseBlock]:
        """Yield this plane's blocks currently assigned role ``kind``."""
        return (block for block in self.blocks.values() if block.kind is kind)

    def __repr__(self) -> str:
        return (
            f"Plane(id={self.plane_id}, blocks={self.num_blocks}, "
            f"free={self.free_count})"
        )
