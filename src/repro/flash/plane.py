"""Flash planes.

A plane owns a contiguous range of erase blocks and tracks which of them
are free (erased and unassigned).  Garbage collection in both the SSD and
the SSC operates plane-by-plane — the collector "selects a flash plane to
clean" (paper §4.3) — so free-block accounting lives here.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import InvalidAddressError
from repro.flash.block import BlockKind, EraseBlock


class Plane:
    """One flash plane: a block range plus a FIFO free list.

    Planes are also the unit of *parallelism*: a plane executes one
    operation at a time, so ``busy_until_us`` tracks when it next
    becomes available.  Operations on distinct planes may overlap in
    simulated time; operations on the same plane queue behind each
    other (the event-driven replay engine enforces this via
    :meth:`reserve`).
    """

    #: Optional trace bus (repro.obs); None keeps allocation zero-cost.
    tracer = None

    def __init__(self, plane_id: int, blocks: List[EraseBlock]):
        self.plane_id = plane_id
        #: Availability-timeline key ("plane:<n>" or "s<k>:plane:<n>"),
        #: assigned by the owning chip; doubles as the trace lane.
        self.resource_key = f"plane:{plane_id}"
        self.blocks: Dict[int, EraseBlock] = {block.pbn: block for block in blocks}
        # The free pool keeps three views: a membership set (the truth,
        # O(1) is_free / removal), a FIFO deque (allocation order when
        # wear leveling is off; may hold stale entries that the set
        # filters out), and two lazily-invalidated wear heaps so
        # allocation finds the least-/most-worn free block without the
        # O(free) scan it used to do.  Heap entries are validated on
        # peek: a block's erase count cannot change while it is free, so
        # an entry is stale iff its pbn left the pool or was re-released
        # after another erase (higher count).
        self._free_set: Set[int] = set(self.blocks)
        self._free: Deque[int] = deque(sorted(self.blocks))
        self._wear_heap: List[Tuple[int, int]] = [
            (self.blocks[pbn].erase_count, pbn) for pbn in self._free
        ]
        self._hot_heap: List[Tuple[int, int]] = [
            (-self.blocks[pbn].erase_count, -pbn) for pbn in self._free
        ]
        heapq.heapify(self._wear_heap)
        heapq.heapify(self._hot_heap)
        self.busy_until_us = 0.0

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def free_count(self) -> int:
        """Number of erased, unassigned blocks."""
        return len(self._free_set)

    def block(self, pbn: int) -> EraseBlock:
        """Look up a block owned by this plane."""
        try:
            return self.blocks[pbn]
        except KeyError:
            raise InvalidAddressError(
                f"block {pbn} not in plane {self.plane_id}"
            ) from None

    def allocate(self, kind: BlockKind) -> EraseBlock:
        """Take a free block (FIFO) and assign it role ``kind``.

        Raises IndexError if the plane has no free blocks; callers run
        garbage collection / silent eviction before hitting this.
        """
        free_set = self._free_set
        while self._free:
            pbn = self._free.popleft()
            if pbn in free_set:
                free_set.discard(pbn)
                block = self.blocks[pbn]
                block.kind = kind
                if self.tracer is not None:
                    self.tracer.emit(
                        "flash.alloc", lane=self.resource_key,
                        pbn=pbn, kind=kind.name,
                    )
                return block
        raise IndexError(f"plane {self.plane_id} has no free blocks")

    def allocate_specific(self, pbn: int, kind: BlockKind) -> EraseBlock:
        """Take a *particular* free block (wear-leveling allocation).

        The stale deque/heap entries are filtered lazily by later
        allocations, so removal here is O(1).
        """
        if pbn not in self._free_set:
            raise InvalidAddressError(
                f"block {pbn} is not free in plane {self.plane_id}"
            )
        self._free_set.discard(pbn)
        block = self.blocks[pbn]
        block.kind = kind
        if self.tracer is not None:
            self.tracer.emit(
                "flash.alloc", lane=self.resource_key,
                pbn=pbn, kind=kind.name,
            )
        return block

    def free_pbns(self):
        """Iterate the free blocks' numbers (oldest-freed first)."""
        seen: Set[int] = set()
        for pbn in self._free:
            if pbn in self._free_set and pbn not in seen:
                seen.add(pbn)
                yield pbn

    def least_worn_free(self) -> Optional[int]:
        """PBN of the free block with the lowest (erase_count, pbn), or None."""
        heap = self._wear_heap
        while heap:
            erase_count, pbn = heap[0]
            if pbn in self._free_set and self.blocks[pbn].erase_count == erase_count:
                return pbn
            heapq.heappop(heap)
        return None

    def most_worn_free(self) -> Optional[int]:
        """PBN of the free block with the highest (erase_count, pbn), or None."""
        heap = self._hot_heap
        while heap:
            neg_erase, neg_pbn = heap[0]
            pbn = -neg_pbn
            if pbn in self._free_set and self.blocks[pbn].erase_count == -neg_erase:
                return pbn
            heapq.heappop(heap)
        return None

    def release(self, block: EraseBlock) -> None:
        """Return an erased block to the free list (after ``erase()``)."""
        if block.pbn not in self.blocks:
            raise InvalidAddressError(
                f"block {block.pbn} not in plane {self.plane_id}"
            )
        if block.kind is not BlockKind.FREE:
            raise ValueError(
                f"block {block.pbn} must be erased before release "
                f"(kind={block.kind.name})"
            )
        self._free_set.add(block.pbn)
        self._free.append(block.pbn)
        heapq.heappush(self._wear_heap, (block.erase_count, block.pbn))
        heapq.heappush(self._hot_heap, (-block.erase_count, -block.pbn))
        if self.tracer is not None:
            self.tracer.emit(
                "flash.release", lane=self.resource_key, pbn=block.pbn
            )

    def is_free(self, pbn: int) -> bool:
        """True if block ``pbn`` sits on this plane's free list."""
        return pbn in self._free_set

    def reserve(self, start_us: float, duration_us: float):
        """Claim this plane for ``duration_us``, no earlier than ``start_us``.

        Returns ``(actual_start_us, finish_us)``: the operation begins
        when both the requester is ready *and* the plane is free, so a
        busy plane queues the operation while an idle one starts it
        immediately.
        """
        start = start_us if start_us >= self.busy_until_us else self.busy_until_us
        finish = start + duration_us
        self.busy_until_us = finish
        return start, finish

    def reset_busy(self) -> None:
        """Forget availability history (start of a measurement epoch)."""
        self.busy_until_us = 0.0

    def blocks_of_kind(self, kind: BlockKind) -> Iterable[EraseBlock]:
        """Yield this plane's blocks currently assigned role ``kind``."""
        return (block for block in self.blocks.values() if block.kind is kind)

    def __repr__(self) -> str:
        return (
            f"Plane(id={self.plane_id}, blocks={self.num_blocks}, "
            f"free={self.free_count})"
        )
