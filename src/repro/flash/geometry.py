"""Flash geometry and physical address arithmetic.

The paper's emulation parameters (Table 2): 10 flash planes, 256 erase
blocks per plane, 64 pages per erase block, 4096-byte pages — and the
evaluation "scales the size of each plane to vary the SSD capacity".
Physical page numbers (PPNs) and physical block numbers (PBNs) are flat
indexes over the whole chip; this module converts between them and
(plane, block, page) coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError, InvalidAddressError


@dataclass(frozen=True)
class FlashGeometry:
    """Immutable description of a flash chip's layout.

    Attributes mirror Table 2 of the paper; ``oob_bytes`` is the per-page
    out-of-band area (64-224 bytes per the paper; we default to 64).
    """

    planes: int = 10
    blocks_per_plane: int = 256
    pages_per_block: int = 64
    page_size: int = 4096
    oob_bytes: int = 64

    # Derived sizes, computed once at construction (the geometry is
    # frozen).  These sit on the per-op address-check path, so they are
    # plain attributes rather than recomputing properties.
    total_blocks: int = field(init=False, repr=False, compare=False)
    total_pages: int = field(init=False, repr=False, compare=False)
    block_size: int = field(init=False, repr=False, compare=False)
    capacity_bytes: int = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        for name in ("planes", "blocks_per_plane", "pages_per_block", "page_size"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive, got {getattr(self, name)}")
        if self.oob_bytes < 0:
            raise ConfigError("oob_bytes must be >= 0")
        set_attr = object.__setattr__  # frozen dataclass
        set_attr(self, "total_blocks", self.planes * self.blocks_per_plane)
        set_attr(self, "total_pages", self.total_blocks * self.pages_per_block)
        set_attr(self, "block_size", self.pages_per_block * self.page_size)
        set_attr(self, "capacity_bytes", self.total_pages * self.page_size)

    # ---- address conversions -------------------------------------------

    def check_ppn(self, ppn: int) -> None:
        """Raise if ``ppn`` is not a valid physical page number."""
        if not 0 <= ppn < self.total_pages:
            raise InvalidAddressError(f"ppn {ppn} out of range [0, {self.total_pages})")

    def check_pbn(self, pbn: int) -> None:
        """Raise if ``pbn`` is not a valid physical block number."""
        if not 0 <= pbn < self.total_blocks:
            raise InvalidAddressError(f"pbn {pbn} out of range [0, {self.total_blocks})")

    def ppn_to_pbn(self, ppn: int) -> int:
        """Physical block containing page ``ppn``."""
        self.check_ppn(ppn)
        return ppn // self.pages_per_block

    def ppn_to_offset(self, ppn: int) -> int:
        """Page offset of ``ppn`` within its erase block."""
        self.check_ppn(ppn)
        return ppn % self.pages_per_block

    def pbn_to_plane(self, pbn: int) -> int:
        """Plane index owning block ``pbn``."""
        self.check_pbn(pbn)
        return pbn // self.blocks_per_plane

    def make_ppn(self, pbn: int, offset: int) -> int:
        """Compose a PPN from a block number and in-block page offset."""
        self.check_pbn(pbn)
        if not 0 <= offset < self.pages_per_block:
            raise InvalidAddressError(
                f"page offset {offset} out of range [0, {self.pages_per_block})"
            )
        return pbn * self.pages_per_block + offset

    def make_pbn(self, plane: int, block: int) -> int:
        """Compose a PBN from a plane index and in-plane block index."""
        if not 0 <= plane < self.planes:
            raise InvalidAddressError(f"plane {plane} out of range [0, {self.planes})")
        if not 0 <= block < self.blocks_per_plane:
            raise InvalidAddressError(
                f"block {block} out of range [0, {self.blocks_per_plane})"
            )
        return plane * self.blocks_per_plane + block

    def blocks_in_plane(self, plane: int):
        """Iterate PBNs belonging to ``plane``."""
        if not 0 <= plane < self.planes:
            raise InvalidAddressError(f"plane {plane} out of range [0, {self.planes})")
        start = plane * self.blocks_per_plane
        return range(start, start + self.blocks_per_plane)

    @classmethod
    def for_capacity(
        cls,
        capacity_bytes: int,
        planes: int = 10,
        pages_per_block: int = 64,
        page_size: int = 4096,
        oob_bytes: int = 64,
    ) -> "FlashGeometry":
        """Build a geometry of at least ``capacity_bytes``, scaling planes.

        Mirrors the paper's method of scaling plane size to vary capacity:
        the per-plane block count is raised until the chip is big enough.
        """
        if capacity_bytes <= 0:
            raise ConfigError("capacity_bytes must be positive")
        block_size = pages_per_block * page_size
        total_blocks = -(-capacity_bytes // block_size)  # ceil
        blocks_per_plane = max(1, -(-total_blocks // planes))
        return cls(
            planes=planes,
            blocks_per_plane=blocks_per_plane,
            pages_per_block=pages_per_block,
            page_size=page_size,
            oob_bytes=oob_bytes,
        )
