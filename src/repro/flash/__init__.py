"""NAND-flash device substrate.

Models the physical hierarchy the paper's simulator (FlashSim-derived)
exposes: a chip made of planes, each plane a set of erase blocks, each
block a sequence of 4 KB pages with a small out-of-band (OOB) area.
Timing follows Table 2 of the paper (Intel 300-series latencies).
"""

from repro.flash.geometry import FlashGeometry
from repro.flash.timing import TimingModel
from repro.flash.page import Page, PageState, OOBData
from repro.flash.block import EraseBlock, BlockKind
from repro.flash.plane import Plane
from repro.flash.chip import FlashChip, FlashStats

__all__ = [
    "FlashGeometry",
    "TimingModel",
    "Page",
    "PageState",
    "OOBData",
    "EraseBlock",
    "BlockKind",
    "Plane",
    "FlashChip",
    "FlashStats",
]
