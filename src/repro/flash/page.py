"""Flash pages and their out-of-band (OOB) metadata.

A page holds an opaque data payload (the simulator stores a small token
rather than 4 KB of bytes, in the style of the David emulator the paper
cites) plus an OOB record.  The OOB area carries the *reverse map* — the
logical block the page holds — and the page's clean/dirty state, which
the SSC uses for garbage collection and which the native SSD baseline
must scan at recovery time.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Any, Optional


class PageState(Enum):
    """Lifecycle of a flash page between erases."""

    FREE = auto()      # erased, programmable
    VALID = auto()     # holds live, mapped data
    INVALID = auto()   # holds stale data awaiting erase


@dataclass
class OOBData:
    """Out-of-band record written alongside a page program.

    ``lbn`` is the logical block number the page holds (the *disk*
    address for an SSC, the SSD-internal address for an SSD).  ``dirty``
    marks write-back data not yet on disk.  ``seq`` is a monotonically
    increasing write sequence used to disambiguate multiple flash copies
    of the same logical block during OOB recovery scans.  ``checksum``
    binds the payload to the logical address (set by the chip at program
    time); recovery uses it to detect torn programs and bit rot, and
    ``None`` marks metadata written before checksumming existed (always
    treated as intact).
    """

    lbn: Optional[int] = None
    dirty: bool = False
    seq: int = 0
    checksum: Optional[int] = None


class Page:
    """One 4 KB flash page."""

    __slots__ = ("state", "data", "oob")

    def __init__(self):
        self.state = PageState.FREE
        self.data: Any = None
        self.oob: Optional[OOBData] = None

    def reset(self) -> None:
        """Return the page to the erased state (called by block erase)."""
        self.state = PageState.FREE
        self.data = None
        self.oob = None

    def __repr__(self) -> str:
        lbn = self.oob.lbn if self.oob is not None else None
        return f"Page(state={self.state.name}, lbn={lbn})"
