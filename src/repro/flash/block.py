"""Erase blocks.

An erase block is the granularity of the NAND erase operation (64 pages,
256 KB by default).  Blocks are programmed append-only: NAND requires
pages within a block to be written in order, which is also what lets the
FTL detect sequentially-written log blocks eligible for switch merges.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Any, List, Optional

from repro.errors import WriteToNonErasedPageError
from repro.flash.page import OOBData, Page, PageState


#: Sentinel payload left behind by a torn (partially-completed) page
#: program.  Recovery must never surface it: the accompanying OOB record
#: carries no logical address and a checksum that cannot verify.
TORN_PAGE = "<torn-page>"


class BlockKind(Enum):
    """Role the FTL currently assigns to a block."""

    FREE = auto()        # erased, unassigned
    DATA = auto()        # block-mapped data block
    LOG = auto()         # page-mapped log block
    META = auto()        # device metadata (operation log / checkpoints)


class EraseBlock:
    """One erase block: a page array plus wear and usage accounting."""

    __slots__ = (
        "pbn",
        "pages",
        "kind",
        "erase_count",
        "write_pointer",
        "valid_count",
        "dirty_count",
        "sequential",
        "first_lbn",
    )

    def __init__(self, pbn: int, pages_per_block: int):
        self.pbn = pbn
        self.pages: List[Page] = [Page() for _ in range(pages_per_block)]
        self.kind = BlockKind.FREE
        self.erase_count = 0
        # Next programmable page offset; NAND programs sequentially.
        self.write_pointer = 0
        self.valid_count = 0
        self.dirty_count = 0
        # True while every programmed page i holds logical offset
        # first_lbn + i; such a full log block can be switch-merged.
        self.sequential = True
        self.first_lbn: Optional[int] = None

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def is_full(self) -> bool:
        """True once every page has been programmed since the last erase."""
        return self.write_pointer >= self.num_pages

    @property
    def free_pages(self) -> int:
        """Pages still programmable before the block is full."""
        return self.num_pages - self.write_pointer

    def program(self, offset: int, data: Any, oob: OOBData) -> None:
        """Program page ``offset``.

        NAND programs pages within a block in ascending order; skipping
        forward is allowed (the skipped pages stay FREE — data blocks
        built by merges may have holes where a page was never cached),
        but programming at or below the write pointer is rejected.
        """
        if offset < self.write_pointer:
            raise WriteToNonErasedPageError(
                f"block {self.pbn}: program at offset {offset} but write "
                f"pointer is {self.write_pointer} (NAND programs in order)"
            )
        page = self.pages[offset]
        if page.state is not PageState.FREE:
            raise WriteToNonErasedPageError(
                f"block {self.pbn} page {offset} is {page.state.name}, not FREE"
            )
        if offset > self.write_pointer:
            self.sequential = False
        page.state = PageState.VALID
        page.data = data
        page.oob = oob
        self.write_pointer = offset + 1
        self.valid_count += 1
        if oob.dirty:
            self.dirty_count += 1
        self._track_sequential(offset, oob)

    def program_torn(self, offset: int) -> None:
        """Leave page ``offset`` in the state a power cut mid-program does.

        The cells were partially written: they read back as garbage, the
        OOB reverse map is unusable, and the stored checksum can never
        match.  The write pointer still advances — NAND cannot reprogram
        the page without an erase — so the block's geometry stays honest.
        """
        if offset < self.write_pointer:
            raise WriteToNonErasedPageError(
                f"block {self.pbn}: torn program at offset {offset} but "
                f"write pointer is {self.write_pointer}"
            )
        page = self.pages[offset]
        if page.state is not PageState.FREE:
            raise WriteToNonErasedPageError(
                f"block {self.pbn} page {offset} is {page.state.name}, not FREE"
            )
        page.state = PageState.VALID  # reads back as (garbage) data
        page.data = TORN_PAGE
        page.oob = OOBData(lbn=None, dirty=False, seq=0, checksum=0)
        self.write_pointer = offset + 1
        self.valid_count += 1
        self.sequential = False

    def _track_sequential(self, offset: int, oob: OOBData) -> None:
        if not self.sequential or oob.lbn is None:
            self.sequential = False
            return
        if offset == 0:
            self.first_lbn = oob.lbn
        elif self.first_lbn is None or oob.lbn != self.first_lbn + offset:
            self.sequential = False

    def invalidate(self, offset: int) -> None:
        """Mark page ``offset`` stale (its data was overwritten elsewhere)."""
        page = self.pages[offset]
        if page.state is not PageState.VALID:
            return
        page.state = PageState.INVALID
        self.valid_count -= 1
        if page.oob is not None and page.oob.dirty:
            self.dirty_count -= 1

    def mark_clean(self, offset: int) -> None:
        """Clear the dirty flag on a valid page (SSC ``clean`` support)."""
        page = self.pages[offset]
        if page.oob is not None and page.oob.dirty:
            page.oob.dirty = False
            if page.state is PageState.VALID:
                self.dirty_count -= 1

    def mark_dirty(self, offset: int) -> None:
        """Set the dirty flag on a valid page (crash rollback of clean)."""
        page = self.pages[offset]
        if page.oob is not None and not page.oob.dirty:
            page.oob.dirty = True
            if page.state is PageState.VALID:
                self.dirty_count += 1

    def erase(self) -> None:
        """Erase the block: every page returns to FREE; wear increments."""
        for page in self.pages:
            page.reset()
        self.erase_count += 1
        self.write_pointer = 0
        self.valid_count = 0
        self.dirty_count = 0
        self.sequential = True
        self.first_lbn = None
        self.kind = BlockKind.FREE

    def valid_offsets(self):
        """Yield offsets of VALID pages (snapshot-safe for invalidation)."""
        return [
            offset
            for offset, page in enumerate(self.pages)
            if page.state is PageState.VALID
        ]

    def utilization(self) -> float:
        """Fraction of pages holding valid data (GC victim metric)."""
        return self.valid_count / self.num_pages

    def __repr__(self) -> str:
        return (
            f"EraseBlock(pbn={self.pbn}, kind={self.kind.name}, "
            f"valid={self.valid_count}/{self.num_pages}, "
            f"erases={self.erase_count})"
        )
