"""Flash timing model (Table 2 of the paper).

Page read 65 us, page write 85 us, block erase 1000 us, bus control
delay 2 us, control delay 10 us.  A page operation pays the control
delay (command issue) plus the bus delay (data transfer) plus the cell
operation itself; an erase has no data transfer, so it pays control +
erase only.  OOB reads/writes piggyback on page operations and are free
on the write path (the paper assumes OOB writes overlap data writes) but
cost a page read when scanned during native recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class TimingModel:
    """Operation latencies in microseconds."""

    page_read_us: float = 65.0
    page_write_us: float = 85.0
    block_erase_us: float = 1000.0
    bus_delay_us: float = 2.0
    control_delay_us: float = 10.0

    def __post_init__(self):
        for name in (
            "page_read_us",
            "page_write_us",
            "block_erase_us",
            "bus_delay_us",
            "control_delay_us",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")

    def read_cost(self) -> float:
        """Service time of one page read, including command and transfer."""
        return self.control_delay_us + self.page_read_us + self.bus_delay_us

    def write_cost(self) -> float:
        """Service time of one page program, including command and transfer."""
        return self.control_delay_us + self.bus_delay_us + self.page_write_us

    def erase_cost(self) -> float:
        """Service time of one block erase."""
        return self.control_delay_us + self.block_erase_us

    def oob_read_cost(self) -> float:
        """Cost of reading only a page's OOB area (recovery scans).

        Reading the OOB still requires a full page-array sense, so it
        costs the same as a page read; this is why the native system's
        OOB recovery scan is slow.
        """
        return self.read_cost()
