"""The flash chip: planes wired to a timing model and wear accounting.

The chip is the boundary between FTL logic (above) and the NAND model
(below).  Every operation returns its service time in microseconds so the
device layer can account request latency; the chip itself also keeps
aggregate statistics (reads, programs, erases, wear spread) that the
evaluation's Table 5 reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.errors import CrashError
from repro.flash.block import EraseBlock
from repro.flash.geometry import FlashGeometry
from repro.flash.page import OOBData, Page, PageState
from repro.flash.plane import Plane
from repro.flash.timing import TimingModel
from repro.sim.completion import OpRecorder, plane_resource, shard_plane_resource
from repro.sim.crash import CrashInjector, CrashPoint
from repro.util.checksum import crc32_of_payload


@dataclass
class FlashStats:
    """Cumulative operation counts for one chip."""

    page_reads: int = 0
    page_writes: int = 0
    block_erases: int = 0
    oob_scans: int = 0
    busy_us: float = 0.0

    def snapshot(self) -> "FlashStats":
        """Return an independent copy (for before/after deltas)."""
        return FlashStats(
            page_reads=self.page_reads,
            page_writes=self.page_writes,
            block_erases=self.block_erases,
            oob_scans=self.oob_scans,
            busy_us=self.busy_us,
        )

    def merge(self, other: "FlashStats") -> "FlashStats":
        """Field-wise sum — aggregates the chips of a sharded array.

        Commutative and associative, with ``FlashStats()`` as the unit.
        """
        return FlashStats(
            **{name: getattr(self, name) + getattr(other, name) for name in vars(self)}
        )


class FlashChip:
    """A complete NAND chip: geometry, planes, timing, statistics."""

    def __init__(
        self,
        geometry: Optional[FlashGeometry] = None,
        timing: Optional[TimingModel] = None,
    ):
        self.geometry = geometry or FlashGeometry()
        self.timing = timing or TimingModel()
        self.stats = FlashStats()
        # Per-request op tracing: a cache manager shares one recorder
        # across its chip and disk so completions carry the full,
        # in-order operation trace of each request.
        self.op_recorder = OpRecorder()
        # Optional fault hook: when set, every page program ticks the
        # injector at its BEFORE/AFTER durability boundaries so a crash
        # (or torn program) can fire mid-operation.
        self.crash_injector: Optional[CrashInjector] = None
        self.planes: List[Plane] = []
        pages = self.geometry.pages_per_block
        for plane_id in range(self.geometry.planes):
            blocks = [
                EraseBlock(pbn, pages)
                for pbn in self.geometry.blocks_in_plane(plane_id)
            ]
            self.planes.append(Plane(plane_id, blocks))
        # Interned "plane:<n>" keys, indexed by plane id (op-trace hot path).
        self._plane_keys = [
            plane_resource(plane_id) for plane_id in range(self.geometry.planes)
        ]
        for plane, key in zip(self.planes, self._plane_keys):
            plane.resource_key = key
        # Set when this chip is a member of a sharded array (see
        # set_resource_shard); None for a standalone device.
        self.resource_shard: Optional[int] = None
        # The timing model is frozen, so per-op costs are constants.
        self._read_cost_us = self.timing.read_cost()
        self._write_cost_us = self.timing.write_cost()
        self._erase_cost_us = self.timing.erase_cost()
        self._oob_read_cost_us = self.timing.oob_read_cost()
        self._write_seq = 0

    # ---- lookup helpers --------------------------------------------------

    def plane_of_block(self, pbn: int) -> Plane:
        """Plane owning block ``pbn``."""
        return self.planes[self.geometry.pbn_to_plane(pbn)]

    def block(self, pbn: int) -> EraseBlock:
        """Erase block ``pbn``."""
        geo = self.geometry
        geo.check_pbn(pbn)
        return self.planes[pbn // geo.blocks_per_plane].blocks[pbn]

    def page(self, ppn: int) -> Page:
        """Page object for ``ppn`` (no timing cost; simulator internal)."""
        geo = self.geometry
        geo.check_ppn(ppn)
        pbn = ppn // geo.pages_per_block
        plane = self.planes[pbn // geo.blocks_per_plane]
        return plane.blocks[pbn].pages[ppn - pbn * geo.pages_per_block]

    def next_seq(self) -> int:
        """Monotonic write sequence number stamped into each page's OOB."""
        self._write_seq += 1
        return self._write_seq

    def _plane_id_of_ppn(self, ppn: int) -> int:
        return ppn // self.geometry.pages_per_block // self.geometry.blocks_per_plane

    def _record_op(self, plane_id: int, kind: str, cost: float) -> None:
        self.op_recorder.record(self._plane_keys[plane_id], kind, cost)

    def set_resource_shard(self, shard_id: int) -> None:
        """Re-key this chip's plane resources as ``"s<k>:plane:<n>"``.

        A sharded cache array calls this on each member chip so that
        operations on different shards' planes land on distinct
        availability timelines in the replay engine — physically
        separate devices must never queue behind one another.
        """
        self.resource_shard = shard_id
        self._plane_keys = [
            shard_plane_resource(shard_id, plane_id)
            for plane_id in range(self.geometry.planes)
        ]
        for plane, key in zip(self.planes, self._plane_keys):
            plane.resource_key = key

    # ---- availability ------------------------------------------------------

    def reset_availability(self) -> None:
        """Zero every plane's busy-until time (new measurement epoch)."""
        for plane in self.planes:
            plane.reset_busy()

    # ---- timed operations -------------------------------------------------

    def read_page(self, ppn: int) -> Tuple[Any, Optional[OOBData], float]:
        """Read page ``ppn``; returns (data, oob, cost_us).

        Reading a FREE or INVALID page is legal at the NAND level (it
        returns whatever is in the cells); the FTL above decides whether
        that is meaningful.
        """
        page = self.page(ppn)
        cost = self._read_cost_us
        self.stats.page_reads += 1
        self.stats.busy_us += cost
        if self.op_recorder.active:
            self._record_op(self._plane_id_of_ppn(ppn), "page_read", cost)
        return page.data, page.oob, cost

    def program_page(self, ppn: int, data: Any, oob: OOBData) -> float:
        """Program page ``ppn`` with data + OOB; returns cost_us.

        Enforces NAND constraints: the page must be FREE and must be the
        block's next sequential page.  The OOB write is free (overlapped
        with the data program, per the paper's assumption).  The OOB
        checksum binding the payload to its logical address is stamped
        here, so every programmed page is verifiable at recovery.
        """
        geo = self.geometry
        geo.check_ppn(ppn)
        pbn, offset = divmod(ppn, geo.pages_per_block)
        injector = self.crash_injector
        if injector is not None:
            try:
                injector.tick(CrashPoint.BEFORE_DATA_WRITE)
            except CrashError:
                if injector.torn:
                    # Power failed mid-program: the page holds garbage.
                    self.block(pbn).program_torn(offset)
                    self.stats.page_writes += 1
                raise
        if oob.checksum is None:
            oob.checksum = crc32_of_payload(oob.lbn, data)
        # ppn was range-checked above; skip block()'s redundant check.
        self.planes[pbn // geo.blocks_per_plane].blocks[pbn].program(
            offset, data, oob
        )
        cost = self._write_cost_us
        self.stats.page_writes += 1
        self.stats.busy_us += cost
        if self.op_recorder.active:
            self._record_op(pbn // self.geometry.blocks_per_plane, "page_write", cost)
        if injector is not None:
            injector.tick(CrashPoint.AFTER_DATA_WRITE)
        return cost

    def erase_block(self, pbn: int) -> float:
        """Erase block ``pbn`` and return it to its plane's free list."""
        block = self.block(pbn)
        block.erase()
        self.plane_of_block(pbn).release(block)
        cost = self._erase_cost_us
        self.stats.block_erases += 1
        self.stats.busy_us += cost
        if self.op_recorder.active:
            self._record_op(pbn // self.geometry.blocks_per_plane, "erase", cost)
        return cost

    def scan_oob(self, ppn: int) -> Tuple[Optional[OOBData], "PageState", float]:
        """Read only the OOB area of ``ppn`` (used by native recovery)."""
        page = self.page(ppn)
        cost = self._oob_read_cost_us
        self.stats.oob_scans += 1
        self.stats.busy_us += cost
        if self.op_recorder.active:
            self._record_op(self._plane_id_of_ppn(ppn), "oob_scan", cost)
        return page.oob, page.state, cost

    # ---- wear accounting ----------------------------------------------------

    def total_erases(self) -> int:
        """Sum of erase counts over every block."""
        return sum(
            block.erase_count
            for plane in self.planes
            for block in plane.blocks.values()
        )

    def wear_differential(self) -> int:
        """Max minus min per-block erase count (Table 5's "Wear Diff.")."""
        counts = [
            block.erase_count
            for plane in self.planes
            for block in plane.blocks.values()
        ]
        return max(counts) - min(counts) if counts else 0

    def free_blocks_total(self) -> int:
        """Free erased blocks summed over all planes."""
        return sum(plane.free_count for plane in self.planes)

    def __repr__(self) -> str:
        return (
            f"FlashChip(planes={self.geometry.planes}, "
            f"blocks={self.geometry.total_blocks}, "
            f"free={self.free_blocks_total()})"
        )
