"""Replay-level statistics: hits, misses, latency distribution.

These are the manager-facing numbers behind Figures 3/4/6 (IOPS and
response times) and the miss-rate column of Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


class LatencyStats:
    """Streaming latency accumulator (mean, max, percentiles)."""

    def __init__(self, keep_samples: bool = False):
        self.count = 0
        self.total_us = 0.0
        self.max_us = 0.0
        self._keep = keep_samples
        self._samples: List[float] = []

    def record(self, latency_us: float) -> None:
        """Record one request's service time."""
        if latency_us < 0:
            raise ValueError("latency cannot be negative")
        self.count += 1
        self.total_us += latency_us
        if latency_us > self.max_us:
            self.max_us = latency_us
        if self._keep:
            self._samples.append(latency_us)

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Return the ``pct`` percentile; requires keep_samples=True."""
        if not self._keep:
            raise ValueError("percentiles require keep_samples=True")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(len(ordered) * pct / 100.0))
        return ordered[index]


@dataclass
class ReplayStats:
    """Outcome of replaying a trace through a cache manager."""

    ops: int = 0
    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    read_misses: int = 0
    elapsed_us: float = 0.0
    latency: LatencyStats = field(default_factory=LatencyStats)

    def iops(self) -> float:
        """Requests per second of simulated time."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.ops / (self.elapsed_us / 1e6)

    def miss_rate(self) -> float:
        """Read miss rate in percent (Table 5 convention)."""
        lookups = self.read_hits + self.read_misses
        if lookups == 0:
            return 0.0
        return 100.0 * self.read_misses / lookups
