"""Replay-level statistics: hits, misses, latency distribution.

These are the manager-facing numbers behind Figures 3/4/6 (IOPS and
response times) and the miss-rate column of Table 5.  With the
event-driven replay engine, per-request latency splits into *service
time* (the device actively working) and *queueing delay* (waiting for a
busy plane or the disk spindle), and per-resource busy time supports
device-utilization reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Tuple


class LatencyStats:
    """Streaming latency accumulator (mean, max, percentiles)."""

    def __init__(self, keep_samples: bool = False):
        self.count = 0
        self.total_us = 0.0
        self.max_us = 0.0
        self._keep = keep_samples
        self._samples: List[float] = []

    def record(self, latency_us: float) -> None:
        """Record one request's service time."""
        if latency_us < 0:
            raise ValueError("latency cannot be negative")
        self.count += 1
        self.total_us += latency_us
        if latency_us > self.max_us:
            self.max_us = latency_us
        if self._keep:
            self._samples.append(latency_us)

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    @property
    def samples(self) -> Tuple[float, ...]:
        """The recorded samples (empty unless ``keep_samples=True``)."""
        return tuple(self._samples)

    def percentile(self, pct: float) -> float:
        """Return the ``pct`` percentile (nearest-rank definition).

        The nearest-rank percentile is the smallest sample such that at
        least ``pct`` percent of the data is less than or equal to it:
        rank ``ceil(n * pct / 100)``, 1-indexed.  Requires
        ``keep_samples=True``.
        """
        if not self._keep:
            raise ValueError("percentiles require keep_samples=True")
        # Validate BEFORE the empty-samples short circuit: an out-of-range
        # pct is a caller bug and must never silently read as 0.0 just
        # because nothing was recorded yet.
        if not 0.0 <= pct <= 100.0:
            raise ValueError("pct must be in [0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = ceil(len(ordered) * pct / 100.0)
        rank = min(len(ordered), max(1, rank))
        return ordered[rank - 1]

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable summary (machine-comparable across PRs)."""
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "max_us": self.max_us,
            "total_us": self.total_us,
        }


@dataclass
class ReplayStats:
    """Outcome of replaying a trace through a cache manager.

    ``latency`` is the end-to-end per-request distribution; under the
    event-driven engine it decomposes as ``service`` (device time) plus
    ``queue_wait`` (time spent queued behind busy resources — always
    zero for serial replay).  ``device_busy_us`` maps each contended
    resource (``"plane:<n>"``, ``"disk"``) to its cumulative busy time
    during the measured interval.
    """

    ops: int = 0
    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    read_misses: int = 0
    elapsed_us: float = 0.0
    queue_depth: int = 1
    latency: LatencyStats = field(default_factory=LatencyStats)
    service: LatencyStats = field(default_factory=LatencyStats)
    queue_wait: LatencyStats = field(default_factory=LatencyStats)
    device_busy_us: Dict[str, float] = field(default_factory=dict)

    def iops(self) -> float:
        """Requests per second of simulated time."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.ops / (self.elapsed_us / 1e6)

    def miss_rate(self) -> float:
        """Read miss rate in percent (Table 5 convention)."""
        lookups = self.read_hits + self.read_misses
        if lookups == 0:
            return 0.0
        return 100.0 * self.read_misses / lookups

    def add_busy(self, resource: str, duration_us: float) -> None:
        """Charge ``duration_us`` of busy time to ``resource``."""
        self.device_busy_us[resource] = (
            self.device_busy_us.get(resource, 0.0) + duration_us
        )

    def utilization(self) -> Dict[str, float]:
        """Fraction of the measured interval each resource was busy."""
        if self.elapsed_us <= 0:
            return {}
        return {
            resource: busy / self.elapsed_us
            for resource, busy in sorted(self.device_busy_us.items())
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form, key order and nesting fixed.

        This is the schema BENCH_*.json embeds; the golden-file test in
        ``tests/test_bench_schema.py`` pins it so benchmark output stays
        machine-comparable across PRs.  Extend it by *adding* keys, never
        by renaming or restructuring existing ones.
        """
        return {
            "ops": self.ops,
            "reads": self.reads,
            "writes": self.writes,
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "elapsed_us": self.elapsed_us,
            "queue_depth": self.queue_depth,
            "iops": self.iops(),
            "miss_rate_pct": self.miss_rate(),
            "latency": self.latency.to_dict(),
            "service": self.service.to_dict(),
            "queue_wait": self.queue_wait.to_dict(),
            "device_busy_us": dict(sorted(self.device_busy_us.items())),
        }
