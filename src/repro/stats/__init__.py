"""Measurement plumbing: counters, latency records, report tables."""

from repro.stats.counters import LatencyStats, ReplayStats
from repro.stats.report import format_table, format_ratio

__all__ = ["LatencyStats", "ReplayStats", "format_table", "format_ratio"]
