"""Plain-text result tables for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_ratio(value: float, baseline: float) -> str:
    """Render ``value`` as a percentage of ``baseline`` ("142%")."""
    if baseline == 0:
        return "n/a"
    return f"{100.0 * value / baseline:.0f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table.

    Rows wider than ``headers`` are legal: the extra columns get
    headerless width slots (sized to their widest cell) instead of
    crashing the formatter.
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)


def format_histogram(
    bounds: Sequence[float],
    counts: Sequence[int],
    width: int = 40,
) -> str:
    """Render a fixed-bucket histogram as labeled ASCII bars.

    ``counts`` has one entry per bound plus a final overflow bucket
    (``le`` semantics, as produced by
    :class:`repro.obs.metrics.Histogram`).  An empty histogram (all
    counts zero — a replay with no measured requests) renders as
    "(no samples)" rather than dividing by a zero maximum.
    """
    labels = [f"<= {bound:g}" for bound in bounds] + ["+Inf"]
    if len(labels) != len(counts):
        raise ValueError(
            f"expected {len(labels)} counts (bounds + overflow), "
            f"got {len(counts)}"
        )
    peak = max(counts, default=0)
    if peak <= 0:
        return "(no samples)"
    label_width = max(len(label) for label in labels)
    lines = []
    for label, count in zip(labels, counts):
        bar = "#" * round(width * count / peak)
        lines.append(f"{label.rjust(label_width)}  {str(count).rjust(8)}  {bar}")
    return "\n".join(lines)


def format_percentiles(
    latency, pcts: Sequence[float] = (50.0, 90.0, 99.0)
) -> List[Tuple[str, str]]:
    """("p50", "312.0us")-style rows for a
    :class:`~repro.stats.counters.LatencyStats`.

    Safe on degenerate inputs: with no retained samples every row reads
    "n/a", and a single-sample population answers every percentile with
    that sample (nearest-rank, never an index error).
    """
    if not latency.samples:
        return [(f"p{pct:g}", "n/a") for pct in pcts]
    return [(f"p{pct:g}", f"{latency.percentile(pct):.1f}us") for pct in pcts]
