"""Plain-text result tables for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_ratio(value: float, baseline: float) -> str:
    """Render ``value`` as a percentage of ``baseline`` ("142%")."""
    if baseline == 0:
        return "n/a"
    return f"{100.0 * value / baseline:.0f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table.

    Rows wider than ``headers`` are legal: the extra columns get
    headerless width slots (sized to their widest cell) instead of
    crashing the formatter.
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)
