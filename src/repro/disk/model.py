"""Disk model: the slow, high-capacity tier the cache fronts.

Table 1 of the paper puts disk access latency at 500-5000 us.  The model
here charges a full seek + rotational delay for random accesses and a
much smaller transfer-only cost when a request continues a sequential
run, which is what makes cache-miss-heavy and write-back-flush workloads
expensive in the same way they are in the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError, InvalidAddressError
from repro.sim.completion import DISK_RESOURCE, OpRecorder


@dataclass(frozen=True)
class DiskTimingModel:
    """Latency parameters in microseconds.

    Defaults give ~2 ms random access (≈500 IOPS, the figure the paper
    uses for its cache-warming example) and ~100 MB/s sequential
    streaming.
    """

    seek_us: float = 1800.0        # average seek + settle
    rotation_us: float = 150.0     # average rotational delay remainder
    transfer_us: float = 40.0      # 4 KB at ~100 MB/s

    def __post_init__(self):
        for name in ("seek_us", "rotation_us", "transfer_us"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")

    def random_cost(self) -> float:
        return self.seek_us + self.rotation_us + self.transfer_us

    def sequential_cost(self) -> float:
        return self.transfer_us


@dataclass
class DiskStats:
    """Cumulative disk activity."""

    reads: int = 0
    writes: int = 0
    sequential_hits: int = 0
    busy_us: float = 0.0


class Disk:
    """A block-addressable disk storing one payload object per block.

    Capacity is given in 4 KB blocks.  Contents are stored sparsely:
    unwritten blocks read back as ``None`` (zeroes).
    """

    def __init__(
        self,
        capacity_blocks: int,
        timing: Optional[DiskTimingModel] = None,
    ):
        if capacity_blocks <= 0:
            raise ConfigError("capacity_blocks must be positive")
        self.capacity_blocks = capacity_blocks
        self.timing = timing or DiskTimingModel()
        self.stats = DiskStats()
        self.op_recorder = OpRecorder()
        # One spindle: the disk serves a single request at a time, so
        # concurrent cache misses queue behind each other here.
        self.busy_until_us = 0.0
        self._data: Dict[int, Any] = {}
        self._head_at: Optional[int] = None  # block after the last access

    def _check(self, lbn: int) -> None:
        if not 0 <= lbn < self.capacity_blocks:
            raise InvalidAddressError(
                f"disk block {lbn} out of range [0, {self.capacity_blocks})"
            )

    def _access_cost(self, lbn: int) -> float:
        if self._head_at is not None and lbn == self._head_at:
            self.stats.sequential_hits += 1
            cost = self.timing.sequential_cost()
        else:
            cost = self.timing.random_cost()
        self._head_at = lbn + 1
        return cost

    def read(self, lbn: int) -> Tuple[Any, float]:
        """Read block ``lbn``; returns (data, cost_us)."""
        self._check(lbn)
        cost = self._access_cost(lbn)
        self.stats.reads += 1
        self.stats.busy_us += cost
        self.op_recorder.record(DISK_RESOURCE, "read", cost)
        return self._data.get(lbn), cost

    def write(self, lbn: int, data: Any) -> float:
        """Write block ``lbn``; returns cost_us."""
        self._check(lbn)
        cost = self._access_cost(lbn)
        self.stats.writes += 1
        self.stats.busy_us += cost
        self.op_recorder.record(DISK_RESOURCE, "write", cost)
        self._data[lbn] = data
        return cost

    def reserve(self, start_us: float, duration_us: float):
        """Claim the spindle for ``duration_us``, no earlier than
        ``start_us``; returns ``(actual_start_us, finish_us)``."""
        start = start_us if start_us >= self.busy_until_us else self.busy_until_us
        finish = start + duration_us
        self.busy_until_us = finish
        return start, finish

    def reset_busy(self) -> None:
        """Forget availability history (new measurement epoch)."""
        self.busy_until_us = 0.0

    def peek(self, lbn: int) -> Any:
        """Read contents without timing cost (test/verification helper)."""
        self._check(lbn)
        return self._data.get(lbn)

    def occupied_blocks(self) -> int:
        """Number of blocks ever written."""
        return len(self._data)

    def __repr__(self) -> str:
        return f"Disk(capacity={self.capacity_blocks} blocks, used={len(self._data)})"
