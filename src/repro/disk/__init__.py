"""Rotating-disk substrate (the storage tier behind the cache)."""

from repro.disk.model import Disk, DiskTimingModel, DiskStats

__all__ = ["Disk", "DiskTimingModel", "DiskStats"]
